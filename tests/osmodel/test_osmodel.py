"""Tests for the Section 3.2 OS attack-vehicle model."""

import pytest

from repro.osmodel.attacker import MaliciousProcess
from repro.osmodel.memory import (
    PAGE_BYTES,
    PageAllocator,
    PhysicalMemory,
    SwapPolicy,
)
from repro.util.units import GIB, MIB


class TestPhysicalMemory:
    def test_paper_example_kernel_share(self):
        """4 GB with 100-200 MB kernel -> < 5% (paper Section 3.2)."""
        memory = PhysicalMemory(4 * GIB, kernel_bytes=150 * MIB)
        assert memory.kernel_fraction < 0.05

    def test_page_accounting(self):
        memory = PhysicalMemory(1 * MIB, kernel_bytes=0)
        assert memory.total_pages == MIB // PAGE_BYTES
        assert memory.allocatable_pages == memory.total_pages

    def test_kernel_larger_than_ram_rejected(self):
        with pytest.raises(ValueError):
            PhysicalMemory(1 * MIB, kernel_bytes=2 * MIB)


class TestSwapPolicy:
    def test_zero_swappiness_keeps_everything_resident(self):
        assert SwapPolicy(0).resident_fraction() == 1.0

    def test_higher_swappiness_swaps_more(self):
        assert SwapPolicy(100).resident_fraction() < SwapPolicy(0).resident_fraction()

    def test_bounds(self):
        with pytest.raises(ValueError):
            SwapPolicy(101)


class TestPageAllocator:
    def test_allocation_capped_at_allocatable(self):
        memory = PhysicalMemory(1 * MIB, kernel_bytes=256 * 1024)
        allocator = PageAllocator(memory)
        granted = allocator.allocate(2 * MIB)
        assert granted == memory.allocatable_pages
        assert allocator.utilization() == pytest.approx(1.0)

    def test_small_allocation_fully_resident(self):
        memory = PhysicalMemory(1 * MIB, kernel_bytes=0)
        allocator = PageAllocator(memory)
        assert allocator.allocate(8 * PAGE_BYTES) == 8


class TestMaliciousProcess:
    def test_paper_coverage_above_95_percent(self):
        process = MaliciousProcess(PhysicalMemory(4 * GIB, kernel_bytes=150 * MIB))
        process.allocate_all_memory()
        assert process.coverage() > 0.95

    def test_mount_attack_carries_coverage(self):
        process = MaliciousProcess(PhysicalMemory(4 * GIB, kernel_bytes=150 * MIB))
        process.allocate_all_memory()
        attack = process.mount_attack()
        assert attack.coverage == pytest.approx(process.coverage())
        assert attack.random_data

    def test_attack_before_allocation_rejected(self):
        process = MaliciousProcess(PhysicalMemory(1 * GIB))
        with pytest.raises(RuntimeError, match="allocate_all_memory"):
            process.mount_attack()
