"""Tests for the salvaging schemes (ECP, PAYG, FREE-p)."""

import numpy as np
import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.endurance.emap import EnduranceMap
from repro.salvage import ECP, FreeP, PayAsYouGo
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.base import ExtendBudget, FailDevice
from repro.sparing.none import NoSparing


@pytest.fixture
def emap():
    return EnduranceMap(np.array([100.0, 200.0, 300.0, 400.0]), regions=4)


class TestECP:
    def test_all_lines_in_service(self, emap):
        scheme = ECP(pointers=2)
        scheme.initialize(emap, rng=1)
        assert scheme.slots == 4

    def test_corrections_extend_budget(self, emap):
        scheme = ECP(pointers=2, bonus_per_pointer=0.05)
        scheme.initialize(emap, rng=1)
        outcome = scheme.replace(0, 0)
        assert isinstance(outcome, ExtendBudget)
        assert outcome.wear == pytest.approx(5.0)  # 5% of endurance 100
        assert scheme.corrections_used(0) == 1

    def test_budget_exhaustion_fails(self, emap):
        scheme = ECP(pointers=2)
        scheme.initialize(emap, rng=1)
        scheme.replace(0, 0)
        scheme.replace(0, 0)
        outcome = scheme.replace(0, 0)
        assert isinstance(outcome, FailDevice)
        assert "ECP-2" in outcome.reason

    def test_budgets_are_per_line(self, emap):
        scheme = ECP(pointers=1)
        scheme.initialize(emap, rng=1)
        assert isinstance(scheme.replace(0, 0), ExtendBudget)
        assert isinstance(scheme.replace(1, 1), ExtendBudget)
        assert isinstance(scheme.replace(0, 0), FailDevice)

    def test_capacity_overhead_paper_value(self):
        assert ECP(pointers=6).capacity_overhead == pytest.approx(0.119, abs=0.002)

    def test_zero_pointers_is_no_protection(self, emap):
        scheme = ECP(pointers=0)
        scheme.initialize(emap, rng=1)
        assert isinstance(scheme.replace(0, 0), FailDevice)

    def test_validation(self):
        with pytest.raises(ValueError):
            ECP(pointers=-1)
        with pytest.raises(ValueError):
            ECP(bonus_per_pointer=2.0)


class TestPAYG:
    def test_pool_sized_per_line(self, emap):
        scheme = PayAsYouGo(entries_per_line=2.0)
        scheme.initialize(emap, rng=1)
        assert scheme.pool_remaining == 8

    def test_pool_shared_across_lines(self, emap):
        scheme = PayAsYouGo(entries_per_line=0.5)  # pool of 2 for 4 lines
        scheme.initialize(emap, rng=1)
        assert isinstance(scheme.replace(0, 0), ExtendBudget)
        assert isinstance(scheme.replace(0, 0), ExtendBudget)  # same line again
        assert isinstance(scheme.replace(1, 1), FailDevice)

    def test_validation(self):
        with pytest.raises(ValueError):
            PayAsYouGo(entries_per_line=0.0)


class TestFreeP:
    def test_is_endurance_oblivious_ps(self, emap):
        scheme = FreeP(reserve_fraction=0.25)
        scheme.initialize(emap, rng=1)
        assert scheme.selection == "random"
        assert scheme.allocation == "random"
        assert scheme.pool_remaining == 1

    def test_describe(self):
        assert "FREE-p" in FreeP().describe()


class TestSection222Argument:
    """The paper's claim: salvaging cannot resist UAA; Max-WE can."""

    @pytest.fixture(scope="class")
    def lifetimes(self):
        config = ExperimentConfig(regions=512, lines_per_region=4)
        emap = config.make_emap()
        attack = UniformAddressAttack()
        schemes = {
            "none": NoSparing(),
            "ecp": ECP(pointers=6),
            "payg": PayAsYouGo(entries_per_line=1.0),
            "free-p": FreeP(0.1),
        }
        return {
            name: simulate_lifetime(emap, attack, scheme, rng=1).normalized_lifetime
            for name, scheme in schemes.items()
        }

    def test_ecp_buys_only_marginal_life(self, lifetimes):
        assert lifetimes["ecp"] < 1.2 * lifetimes["none"]

    def test_payg_beats_ecp_but_still_fails_early(self, lifetimes):
        assert lifetimes["ecp"] < lifetimes["payg"] < 0.15

    def test_freep_matches_ps_average_regime(self, lifetimes):
        assert 0.15 < lifetimes["free-p"] < 0.3

    def test_maxwe_dominates_all_salvaging(self, lifetimes):
        config = ExperimentConfig(regions=512, lines_per_region=4)
        from repro.core.maxwe import MaxWE

        maxwe = simulate_lifetime(
            config.make_emap(), UniformAddressAttack(), MaxWE(0.1), rng=1
        ).normalized_lifetime
        assert maxwe > 1.5 * max(lifetimes.values())
