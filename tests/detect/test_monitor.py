"""Tests for the attack detector."""

import itertools

import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import HotColdWorkload, ZipfWorkload
from repro.detect.monitor import AttackClassifier, Verdict, WriteRateMonitor


class TestWriteRateMonitor:
    def test_requires_observations(self):
        with pytest.raises(RuntimeError):
            WriteRateMonitor().stats()

    def test_sequential_sweep_statistics(self):
        monitor = WriteRateMonitor(window=64)
        for address in range(200):
            monitor.observe(address % 128)
        stats = monitor.stats()
        assert stats.sequential_fraction > 0.95
        assert stats.unique_fraction == 1.0
        assert stats.repeat_fraction == 0.0

    def test_repeat_burst_statistics(self):
        monitor = WriteRateMonitor(window=64)
        for _ in range(200):
            monitor.observe(7)
        stats = monitor.stats()
        assert stats.repeat_fraction > 0.95
        assert stats.max_share == 1.0
        assert stats.unique_fraction == pytest.approx(1 / 64)

    def test_window_slides(self):
        monitor = WriteRateMonitor(window=16)
        for _ in range(16):
            monitor.observe(1)
        for address in range(16):
            monitor.observe(address)
        # The burst has fully left the window.
        assert monitor.stats().repeat_fraction <= 1 / 15

    def test_filled_flag(self):
        monitor = WriteRateMonitor(window=16)
        assert not monitor.filled
        for address in range(16):
            monitor.observe(address)
        assert monitor.filled

    def test_validation(self):
        with pytest.raises(ValueError):
            WriteRateMonitor(window=4)
        monitor = WriteRateMonitor()
        with pytest.raises(ValueError):
            monitor.observe(-1)


def drive(classifier, attack, user_lines, writes, rng=None):
    stream = attack.stream(user_lines, rng)
    for request in itertools.islice(stream, writes):
        classifier.observe(request.address)
    return classifier


class TestAttackClassifier:
    def make(self, window=512):
        return AttackClassifier(WriteRateMonitor(window=window))

    def test_detects_uaa_as_uniform_sweep(self):
        classifier = drive(self.make(), UniformAddressAttack(random_data=False), 4096, 4096)
        assert classifier.alarmed
        assert classifier.last_verdict is Verdict.UNIFORM_SWEEP

    def test_detects_repeated_address_as_burst(self):
        classifier = drive(self.make(), RepeatedAddressAttack(target=9), 4096, 4096)
        assert classifier.alarmed
        assert classifier.last_verdict is Verdict.BURST

    def test_detects_bpa_as_burst(self):
        classifier = drive(
            self.make(), BirthdayParadoxAttack(burst_length=2048), 1 << 16, 8192, rng=1
        )
        assert classifier.alarmed
        assert classifier.last_verdict is Verdict.BURST

    def test_zipf_stays_benign(self):
        classifier = drive(self.make(), ZipfWorkload(exponent=1.1), 4096, 8192, rng=2)
        assert not classifier.alarmed
        assert classifier.last_verdict is Verdict.BENIGN

    def test_hot_cold_stays_benign(self):
        classifier = drive(self.make(), HotColdWorkload(), 4096, 8192, rng=3)
        assert not classifier.alarmed

    def test_detection_latency_is_hysteresis_windows(self):
        classifier = self.make(window=512)
        drive(classifier, UniformAddressAttack(random_data=False), 8192, 4096)
        assert classifier.alarmed_at == 3 * 512  # alarm_windows x window

    def test_transient_burst_does_not_latch(self):
        classifier = AttackClassifier(
            WriteRateMonitor(window=64), alarm_windows=3
        )
        # One window's worth of memset-like repeats...
        for _ in range(64):
            classifier.observe(5)
        # ...followed by benign random traffic.
        import numpy as np

        rng = np.random.default_rng(4)
        for address in rng.integers(0, 4096, size=512):
            classifier.observe(int(address))
        assert not classifier.alarmed

    def test_alarm_latches_once(self):
        classifier = drive(self.make(), UniformAddressAttack(random_data=False), 8192, 8192)
        first = classifier.alarmed_at
        drive(classifier, UniformAddressAttack(random_data=False), 8192, 2048)
        assert classifier.alarmed_at == first

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            AttackClassifier(sweep_sequential_threshold=1.5)
        with pytest.raises(ValueError):
            AttackClassifier(alarm_windows=0)
