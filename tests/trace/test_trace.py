"""Tests for the write-trace infrastructure."""

import numpy as np
import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import ZipfWorkload
from repro.trace.format import WriteTrace
from repro.trace.record import record_trace
from repro.trace.replay import TraceAttack
from repro.trace.stats import analyze_trace, empirical_profile


class TestWriteTrace:
    def test_basic_construction(self):
        trace = WriteTrace(np.array([0, 1, 2, 1]), user_lines=4)
        assert len(trace) == 4
        assert not trace.has_data

    def test_histogram(self):
        trace = WriteTrace(np.array([0, 1, 1, 3]), user_lines=4)
        np.testing.assert_array_equal(trace.histogram(), [1, 2, 0, 1])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="addresses must lie"):
            WriteTrace(np.array([0, 5]), user_lines=4)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            WriteTrace(np.array([], dtype=np.int64), user_lines=4)

    def test_data_shape_checked(self):
        with pytest.raises(ValueError, match="data shape"):
            WriteTrace(np.array([0, 1]), user_lines=4, data=np.array([1], dtype=np.uint64))

    def test_slice(self):
        trace = WriteTrace(np.arange(10) % 4, user_lines=4, source="test")
        sub = trace.slice(2, 6)
        assert len(sub) == 4
        assert "[2:6]" in sub.source

    def test_invalid_slice(self):
        trace = WriteTrace(np.array([0, 1]), user_lines=4)
        with pytest.raises(ValueError):
            trace.slice(1, 5)

    def test_addresses_frozen(self):
        trace = WriteTrace(np.array([0, 1]), user_lines=4)
        with pytest.raises(ValueError):
            trace.addresses[0] = 3


class TestSerialization:
    def test_round_trip(self, tmp_path):
        trace = WriteTrace(
            np.array([0, 3, 2]),
            user_lines=4,
            data=np.array([7, 8, 9], dtype=np.uint64),
            source="round-trip",
        )
        path = trace.save(tmp_path / "trace.npz")
        loaded = WriteTrace.load(path)
        np.testing.assert_array_equal(loaded.addresses, trace.addresses)
        np.testing.assert_array_equal(loaded.data, trace.data)
        assert loaded.user_lines == 4
        assert loaded.source == "round-trip"

    def test_round_trip_without_data(self, tmp_path):
        trace = WriteTrace(np.array([1, 2]), user_lines=4)
        loaded = WriteTrace.load(trace.save(tmp_path / "t.npz"))
        assert loaded.data is None

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(99),
            addresses=np.array([0]),
            user_lines=np.int64(1),
            source=np.bytes_(b"x"),
        )
        with pytest.raises(ValueError, match="version 99"):
            WriteTrace.load(path)


class TestRecord:
    def test_records_uaa_sweep(self):
        trace = record_trace(UniformAddressAttack(random_data=False), 8, 16)
        np.testing.assert_array_equal(trace.addresses, list(range(8)) * 2)
        assert "UAA" in trace.source

    def test_keep_data(self):
        trace = record_trace(UniformAddressAttack(), 8, 8, rng=1, keep_data=True)
        assert trace.has_data
        assert len(set(trace.data.tolist())) > 1

    def test_deterministic(self):
        a = record_trace(BirthdayParadoxAttack(burst_length=4), 64, 64, rng=2)
        b = record_trace(BirthdayParadoxAttack(burst_length=4), 64, 64, rng=2)
        np.testing.assert_array_equal(a.addresses, b.addresses)


class TestStats:
    def test_uaa_classified_uniform(self):
        trace = record_trace(UniformAddressAttack(random_data=False), 128, 1280)
        assert analyze_trace(trace).kind == "uniform"

    def test_repeated_classified_concentrated(self):
        trace = record_trace(RepeatedAddressAttack(target=5), 128, 1000)
        stats = analyze_trace(trace)
        assert stats.kind == "concentrated"
        assert stats.burstiness > 0.99
        assert stats.max_share == 1.0

    def test_bpa_classified_concentrated(self):
        trace = record_trace(BirthdayParadoxAttack(burst_length=128), 256, 4096, rng=1)
        assert analyze_trace(trace).kind == "concentrated"

    def test_zipf_classified_skewed(self):
        trace = record_trace(ZipfWorkload(exponent=1.2, shuffle=False), 256, 8192, rng=1)
        stats = analyze_trace(trace)
        assert stats.kind == "skewed"

    def test_touched_lines(self):
        trace = WriteTrace(np.array([0, 0, 3]), user_lines=8)
        assert analyze_trace(trace).touched_lines == 2

    def test_empirical_profile_kinds(self):
        uaa = record_trace(UniformAddressAttack(random_data=False), 64, 640)
        assert empirical_profile(uaa).kind == "uniform"
        zipf = record_trace(ZipfWorkload(exponent=1.5, shuffle=False), 64, 4096, rng=1)
        assert empirical_profile(zipf).kind == "skewed"


class TestReplay:
    def test_stream_matches_trace(self):
        trace = WriteTrace(np.array([3, 1, 2]), user_lines=4)
        attack = TraceAttack(trace)
        import itertools

        replayed = [r.address for r in itertools.islice(attack.stream(4), 7)]
        assert replayed == [3, 1, 2, 3, 1, 2, 3]  # loops

    def test_no_loop_stops(self):
        trace = WriteTrace(np.array([0, 1]), user_lines=4)
        replayed = [r.address for r in TraceAttack(trace, loop=False).stream(4)]
        assert replayed == [0, 1]

    def test_payloads_replayed(self):
        trace = WriteTrace(
            np.array([0]), user_lines=2, data=np.array([42], dtype=np.uint64)
        )
        request = next(iter(TraceAttack(trace).stream(2)))
        assert request.data == 42

    def test_space_mismatch_rejected(self):
        trace = WriteTrace(np.array([0]), user_lines=4)
        attack = TraceAttack(trace)
        with pytest.raises(ValueError, match="recorded over 4"):
            attack.profile(8)
        with pytest.raises(ValueError):
            next(iter(attack.stream(8)))

    def test_replayed_uaa_reproduces_simulated_lifetime(self):
        """A recorded-then-replayed UAA gives the same fluid lifetime as
        the generator it came from."""
        from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
        from repro.sim.lifetime import simulate_lifetime
        from repro.sparing.none import NoSparing

        model = LinearEnduranceModel.from_q(20.0, e_low=100.0)
        emap = linear_endurance_map(128, 64, model, rng=1)
        direct = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=1)
        trace = record_trace(UniformAddressAttack(random_data=False), 128, 1280)
        replayed = simulate_lifetime(emap, TraceAttack(trace), NoSparing(), rng=1)
        assert replayed.normalized_lifetime == pytest.approx(
            direct.normalized_lifetime, rel=1e-6
        )
