"""Tests for the Flip-N-Write codec and its worst case."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.patterns import PATTERN_5555, PATTERN_ZERO
from repro.writereduce.flipnwrite import FlipNWrite, hamming_distance


class TestHamming:
    def test_known(self):
        assert hamming_distance(0b1010, 0b0110, bits=4) == 2

    def test_full_width(self):
        assert hamming_distance(0, 2**64 - 1) == 64

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_self_distance_zero(self, value):
        assert hamming_distance(value, value) == 0


class TestCodec:
    def test_logical_value_roundtrip(self):
        word = FlipNWrite()
        word.write(0xDEADBEEF)
        assert word.logical_value == 0xDEADBEEF
        word.write(0x12345678)
        assert word.logical_value == 0x12345678

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any_sequence(self, values):
        word = FlipNWrite()
        for value in values:
            word.write(value)
            assert word.logical_value == value

    @given(st.lists(st.integers(min_value=0, max_value=2**64 - 1), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_worst_case_bound_holds(self, values):
        """Per write, at most half the word plus the tag bit flips."""
        word = FlipNWrite()
        for value in values:
            flips = word.write(value)
            assert flips <= word.worst_case_flips()

    def test_saves_on_near_complement(self):
        """Writing the complement flips only the tag bit."""
        word = FlipNWrite(word_bits=8)
        word.write(0b10101010)
        flips = word.write(0b01010101)
        assert flips == 1  # store same cells, toggle the tag

    def test_counters(self):
        word = FlipNWrite()
        word.write(1)
        word.write(2)
        assert word.total_writes == 2
        assert word.total_cell_flips > 0
        assert word.flips_per_write() == word.total_cell_flips / 2

    def test_flips_per_write_requires_writes(self):
        with pytest.raises(ZeroDivisionError):
            FlipNWrite().flips_per_write()


class TestAdversary:
    def test_alternating_patterns_pin_worst_case(self):
        """Section 3.3.2: 0x0000/0x5555 defeats the codec -- every write
        flips exactly half the data bits."""
        word = FlipNWrite()
        word.write(PATTERN_ZERO)
        flips = [word.write(PATTERN_5555 if i % 2 == 0 else PATTERN_ZERO) for i in range(20)]
        assert all(f >= 32 for f in flips)

    def test_adversary_beats_benign_average(self):
        rng = np.random.default_rng(1)
        benign = FlipNWrite()
        for _ in range(500):
            benign.write(int(rng.integers(0, 2**64, dtype=np.uint64)))

        adversarial = FlipNWrite()
        adversarial.write(PATTERN_ZERO)
        for i in range(500):
            adversarial.write(PATTERN_5555 if i % 2 == 0 else PATTERN_ZERO)

        assert adversarial.flips_per_write() > benign.flips_per_write()
