"""Tests for the frequent-pattern compressor."""

import numpy as np
import pytest

from repro.writereduce.compression import PREFIX_BITS, WORD_BITS, FrequentPatternCompressor


@pytest.fixture
def compressor():
    return FrequentPatternCompressor()


class TestPatterns:
    @pytest.mark.parametrize(
        "value,pattern,bits",
        [
            (0, "zero", PREFIX_BITS),
            (2**64 - 1, "ones", PREFIX_BITS),
            (200, "small-8", PREFIX_BITS + 8),
            (40_000, "small-16", PREFIX_BITS + 16),
            (2**31, "small-32", PREFIX_BITS + 32),
            (0x4242424242424242, "repeated-byte", PREFIX_BITS + 8),
            (0xABCDABCDABCDABCD, "repeated-halfword", PREFIX_BITS + 16),
        ],
    )
    def test_matching(self, compressor, value, pattern, bits):
        encoding = compressor.encode(value)
        assert encoding.pattern == pattern
        assert encoding.stored_bits == bits
        assert encoding.compressed

    def test_unmatched_costs_prefix_overhead(self, compressor):
        encoding = compressor.encode(0x0123456789ABCDEF)
        assert not encoding.compressed
        assert encoding.stored_bits == PREFIX_BITS + WORD_BITS

    def test_out_of_range_rejected(self, compressor):
        with pytest.raises(ValueError):
            compressor.encode(2**64)
        with pytest.raises(ValueError):
            compressor.encode(-1)


class TestRatios:
    def test_benign_data_compresses(self, compressor):
        benign = [0, 1, 255, 0xFFFFFFFFFFFFFFFF, 0x1111111111111111] * 100
        assert compressor.compression_ratio(benign) < 0.5

    def test_random_data_expands(self, compressor):
        """Section 3.3.2: incompressible payloads defeat the technique."""
        rng = np.random.default_rng(2)
        words = [int(v) for v in rng.integers(2**48, 2**64, size=500, dtype=np.uint64)]
        assert compressor.compression_ratio(words) > 1.0

    def test_empty_rejected(self, compressor):
        with pytest.raises(ValueError):
            compressor.compression_ratio([])
