"""Tests for the DRAM-side LRU write buffer."""

import pytest

from repro.writereduce.dram_buffer import DRAMBuffer


class TestLRUSemantics:
    def test_hits_absorbed(self):
        buffer = DRAMBuffer(4)
        buffer.write(1)
        assert buffer.write(1) is False
        assert buffer.hits == 1
        assert buffer.nvm_writes == 0

    def test_eviction_emits_dirty_line(self):
        buffer = DRAMBuffer(2)
        buffer.write(1)
        buffer.write(2)
        emitted = buffer.write(3)  # evicts line 1 (LRU), dirty
        assert emitted is True
        assert buffer.nvm_writes == 1

    def test_lru_order_updated_on_hit(self):
        buffer = DRAMBuffer(2)
        buffer.write(1)
        buffer.write(2)
        buffer.write(1)  # 1 becomes MRU
        buffer.write(3)  # evicts 2, not 1
        assert buffer.write(1) is False  # still resident

    def test_flush_writes_back_everything(self):
        buffer = DRAMBuffer(4)
        for address in range(3):
            buffer.write(address)
        assert buffer.flush() == 3
        assert buffer.nvm_writes == 3

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            DRAMBuffer(2).write(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            DRAMBuffer(0)

    def test_rate_requires_traffic(self):
        with pytest.raises(ZeroDivisionError):
            DRAMBuffer(2).nvm_write_rate()


class TestWorkloadContrast:
    """Section 3.3.2: the buffer helps hot traffic, not uniform traffic."""

    def test_hot_traffic_mostly_absorbed(self):
        buffer = DRAMBuffer(8)
        for _ in range(100):
            for address in range(4):  # working set fits
                buffer.write(address)
        assert buffer.nvm_write_rate() < 0.05

    def test_uniform_sweep_passes_through(self):
        buffer = DRAMBuffer(8)
        for _ in range(10):
            for address in range(1024):  # reuse distance >> capacity
                buffer.write(address)
        assert buffer.nvm_write_rate() > 0.95
