"""Tests for event logging and counters."""

import pytest

from repro.util.events import CounterSet, EventLog


class TestEventLog:
    def test_record_and_count(self):
        log = EventLog()
        log.record("line-worn-out", 1, line=5)
        log.record("line-worn-out", 2, line=6)
        log.record("remap", 2)
        assert log.count("line-worn-out") == 2
        assert log.count("remap") == 1
        assert log.count("missing") == 0

    def test_event_detail_preserved(self):
        log = EventLog()
        event = log.record("replacement", 3, slot=1, line=9)
        assert event.detail == {"slot": 1, "line": 9}
        assert event.round_index == 3

    def test_filtering(self):
        log = EventLog()
        log.record("a", 0)
        log.record("b", 1)
        assert [event.kind for event in log.events("a")] == ["a"]
        assert len(log.events()) == 2

    def test_bounded_retention_keeps_counts(self):
        log = EventLog(max_events=3)
        for index in range(10):
            log.record("tick", index)
        assert len(log) == 3
        assert log.count("tick") == 10
        assert log.events()[0].round_index == 7  # oldest retained

    def test_unbounded(self):
        log = EventLog(max_events=None)
        for index in range(100):
            log.record("tick", index)
        assert len(log) == 100

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            EventLog(max_events=0)

    def test_iteration(self):
        log = EventLog()
        log.record("x", 0)
        assert [event.kind for event in log] == ["x"]

    def test_counts_snapshot(self):
        log = EventLog()
        log.record("x", 0)
        counts = log.counts
        log.record("x", 1)
        assert counts == {"x": 1}  # snapshot, not a live view

    def test_eviction_keeps_newest_n_in_order(self):
        log = EventLog(max_events=4)
        for index in range(25):
            log.record("tick", index)
        assert [event.round_index for event in log.events()] == [21, 22, 23, 24]
        assert [event.round_index for event in log] == [21, 22, 23, 24]
        assert len(log) == 4

    def test_eviction_counts_survive_per_kind(self):
        log = EventLog(max_events=2)
        for index in range(6):
            log.record("worn" if index % 2 else "remap", index)
        # Only the 2 newest events are retained...
        assert [event.kind for event in log.events()] == ["remap", "worn"]
        # ...but every recording is still counted, per kind.
        assert log.counts == {"worn": 3, "remap": 3}
        assert log.count("worn") == 3

    def test_eviction_filtered_events_respect_retention(self):
        log = EventLog(max_events=3)
        for index in range(9):
            log.record("a" if index % 3 == 0 else "b", index)
        # Retained window is rounds 6..8 = [a, b, b]; the filter sees
        # only what survived eviction.
        assert [event.round_index for event in log.events("a")] == [6]
        assert [event.round_index for event in log.events("b")] == [7, 8]

    def test_exactly_at_bound_no_eviction(self):
        log = EventLog(max_events=5)
        for index in range(5):
            log.record("tick", index)
        assert [event.round_index for event in log.events()] == [0, 1, 2, 3, 4]


class TestCounterSet:
    def test_add_and_get(self):
        counters = CounterSet()
        counters.add("writes")
        counters.add("writes", 4)
        assert counters.get("writes") == 5
        assert counters.get("reads") == 0

    def test_negative_rejected(self):
        counters = CounterSet()
        with pytest.raises(ValueError):
            counters.add("writes", -1)

    def test_as_dict(self):
        counters = CounterSet()
        counters.add("a", 2)
        assert counters.as_dict() == {"a": 2}
