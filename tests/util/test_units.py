"""Tests for bit/byte arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.units import (
    GIB,
    KIB,
    MIB,
    bits_required,
    bits_to_bytes,
    bits_to_mib,
    bytes_to_human,
    is_power_of_two,
    log2_int,
)


class TestPowersOfTwo:
    def test_constants(self):
        assert KIB == 2**10
        assert MIB == 2**20
        assert GIB == 2**30

    @pytest.mark.parametrize("value", [1, 2, 4, 1024, 2**40])
    def test_is_power_of_two_true(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1000])
    def test_is_power_of_two_false(self, value):
        assert not is_power_of_two(value)

    @pytest.mark.parametrize("value,expected", [(1, 0), (2, 1), (2048, 11), (2**24, 24)])
    def test_log2_int(self, value, expected):
        assert log2_int(value) == expected

    def test_log2_int_rejects_non_power(self):
        with pytest.raises(ValueError, match="power of two"):
            log2_int(3)


class TestBitsRequired:
    @pytest.mark.parametrize(
        "count,expected", [(1, 0), (2, 1), (3, 2), (2048, 11), (2**22, 22)]
    )
    def test_known_values(self, count, expected):
        assert bits_required(count) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            bits_required(0)

    @given(st.integers(min_value=1, max_value=2**40))
    def test_width_actually_addresses_count(self, count):
        bits = bits_required(count)
        assert 2**bits >= count
        if bits > 0:
            assert 2 ** (bits - 1) < count


class TestConversions:
    def test_bits_to_bytes(self):
        assert bits_to_bytes(16) == 2.0

    def test_bits_to_mib(self):
        assert bits_to_mib(8 * MIB) == 1.0

    @pytest.mark.parametrize(
        "value,expected",
        [(512, "512B"), (2048, "2.00KB"), (int(1.1 * MIB), "1.10MB"), (3 * GIB, "3.00GB")],
    )
    def test_bytes_to_human(self, value, expected):
        assert bytes_to_human(value) == expected
