"""Tests for argument validators."""

import pytest

from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_positive,
    require_positive_int,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        require_positive(0.1, "x")
        require_positive(5, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(value, "x")


class TestRequirePositiveInt:
    def test_accepts_ints(self):
        require_positive_int(3, "n")

    def test_rejects_bool(self):
        with pytest.raises(TypeError, match="must be an int"):
            require_positive_int(True, "n")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            require_positive_int(3.0, "n")  # type: ignore[arg-type]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            require_positive_int(0, "n")


class TestRequireFraction:
    def test_inclusive_bounds(self):
        require_fraction(0.0, "f")
        require_fraction(1.0, "f")

    def test_exclusive_bounds(self):
        with pytest.raises(ValueError):
            require_fraction(0.0, "f", inclusive=False)
        with pytest.raises(ValueError):
            require_fraction(1.0, "f", inclusive=False)
        require_fraction(0.5, "f", inclusive=False)

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_out_of_range(self, value):
        with pytest.raises(ValueError, match=r"f must be in \[0, 1\]"):
            require_fraction(value, "f")


class TestRequireInRange:
    def test_accepts_inside(self):
        require_in_range(5, "r", 0, 10)
        require_in_range(0, "r", 0, 10)
        require_in_range(10, "r", 0, 10)

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="r must be in"):
            require_in_range(11, "r", 0, 10)
