"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, ensure_rng, fork_seeds, sample_seed


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="rng must be"):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestDeriveRng:
    def test_same_seed_same_label_identical(self):
        a = derive_rng(42, "component").integers(0, 1 << 30, size=8)
        b = derive_rng(42, "component").integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_independent(self):
        a = derive_rng(42, "alpha").integers(0, 1 << 30, size=8)
        b = derive_rng(42, "beta").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_derives_from_generator_parent(self):
        parent = np.random.default_rng(3)
        child = derive_rng(parent, "child")
        assert isinstance(child, np.random.Generator)
        assert child is not parent

    def test_none_parent_allowed(self):
        assert isinstance(derive_rng(None, "x"), np.random.Generator)


class TestForkSeeds:
    def test_count_and_determinism(self):
        a = fork_seeds(9, 5, "sweep")
        b = fork_seeds(9, 5, "sweep")
        assert len(a) == 5
        assert a == b

    def test_labels_separate_streams(self):
        assert fork_seeds(9, 3, "x") != fork_seeds(9, 3, "y")

    def test_zero_count(self):
        assert fork_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            fork_seeds(1, -1)


class TestDistinctMod:
    """The seed-aliasing guard: seeds stay pairwise distinct *after* the
    consumer's fold, so no two Monte-Carlo replicas can silently share an
    endurance-map placement."""

    def test_folded_seeds_pairwise_distinct_at_emap_modulus(self):
        from repro.sim.montecarlo import EMAP_SEED_MOD

        seeds = fork_seeds(2019, 512, "monte-carlo", distinct_mod=EMAP_SEED_MOD)
        assert len({seed % EMAP_SEED_MOD for seed in seeds}) == 512

    @staticmethod
    def colliding_master(modulus, count, label):
        """Deterministically find a master seed whose *raw* draws collide
        under ``modulus`` -- the input that exercises the redraw path."""
        for master in range(500):
            raw = fork_seeds(master, count, label)
            if len({seed % modulus for seed in raw}) < count:
                return master, raw
        raise AssertionError("no colliding master seed found in range")

    def test_collision_redraws_until_distinct(self):
        master, raw = self.colliding_master(4, 4, "alias")
        guarded = fork_seeds(master, 4, "alias", distinct_mod=4)
        assert guarded != raw  # at least one seed was redrawn
        assert len({seed % 4 for seed in guarded}) == 4

    def test_collision_redraw_is_deterministic(self):
        master, _ = self.colliding_master(4, 4, "alias")
        assert fork_seeds(master, 4, "alias", distinct_mod=4) == fork_seeds(
            master, 4, "alias", distinct_mod=4
        )

    def test_first_occurrence_of_each_residue_is_kept(self):
        """Only later duplicates are redrawn; seeds whose folded value is
        new at their position pass through untouched."""
        master, raw = self.colliding_master(4, 4, "alias")
        guarded = fork_seeds(master, 4, "alias", distinct_mod=4)
        seen = set()
        for original, kept in zip(raw, guarded):
            if original % 4 not in seen:
                assert kept == original
            seen.add(original % 4)

    def test_count_exceeding_modulus_rejected(self):
        with pytest.raises(ValueError, match="pairwise distinct"):
            fork_seeds(1, 5, "alias", distinct_mod=4)

    def test_nonpositive_modulus_rejected(self):
        with pytest.raises(ValueError, match="distinct_mod"):
            fork_seeds(1, 2, "alias", distinct_mod=0)

    def test_no_modulus_means_raw_draws(self):
        assert fork_seeds(9, 5, "sweep", distinct_mod=None) == fork_seeds(
            9, 5, "sweep"
        )


def test_sample_seed_in_range():
    seed = sample_seed(11)
    assert 0 <= seed < 2**63
