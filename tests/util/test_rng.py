"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import derive_rng, ensure_rng, fork_seeds, sample_seed


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1 << 30, size=8)
        b = ensure_rng(42).integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 1 << 30, size=8)
        b = ensure_rng(2).integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(5)), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ensure_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError, match="rng must be"):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestDeriveRng:
    def test_same_seed_same_label_identical(self):
        a = derive_rng(42, "component").integers(0, 1 << 30, size=8)
        b = derive_rng(42, "component").integers(0, 1 << 30, size=8)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_independent(self):
        a = derive_rng(42, "alpha").integers(0, 1 << 30, size=8)
        b = derive_rng(42, "beta").integers(0, 1 << 30, size=8)
        assert not np.array_equal(a, b)

    def test_derives_from_generator_parent(self):
        parent = np.random.default_rng(3)
        child = derive_rng(parent, "child")
        assert isinstance(child, np.random.Generator)
        assert child is not parent

    def test_none_parent_allowed(self):
        assert isinstance(derive_rng(None, "x"), np.random.Generator)


class TestForkSeeds:
    def test_count_and_determinism(self):
        a = fork_seeds(9, 5, "sweep")
        b = fork_seeds(9, 5, "sweep")
        assert len(a) == 5
        assert a == b

    def test_labels_separate_streams(self):
        assert fork_seeds(9, 3, "x") != fork_seeds(9, 3, "y")

    def test_zero_count(self):
        assert fork_seeds(1, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            fork_seeds(1, -1)


def test_sample_seed_in_range():
    seed = sample_seed(11)
    assert 0 <= seed < 2**63
