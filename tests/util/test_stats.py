"""Tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import geometric_mean, normalized, relative_error, summarize


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_single_value(self):
        assert geometric_mean([7.5]) == pytest.approx(7.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            geometric_mean([])

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            geometric_mean([1.0, 0.0])

    @given(
        st.lists(
            st.floats(min_value=1e-3, max_value=1e6),
            min_size=1,
            max_size=16,
        )
    )
    def test_bounded_by_min_and_max(self, values):
        gmean = geometric_mean(values)
        assert min(values) * (1 - 1e-9) <= gmean <= max(values) * (1 + 1e-9)

    @given(
        st.lists(st.floats(min_value=1e-3, max_value=1e3), min_size=1, max_size=8),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_scale_equivariance(self, values, scale):
        scaled = geometric_mean([v * scale for v in values])
        assert scaled == pytest.approx(geometric_mean(values) * scale, rel=1e-9)


class TestNormalized:
    def test_ratio(self):
        assert normalized(3.0, 4.0) == pytest.approx(0.75)

    def test_zero_reference(self):
        with pytest.raises(ZeroDivisionError):
            normalized(1.0, 0.0)


class TestSummarize:
    def test_fields(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary["n"] == 3
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["std"] == pytest.approx(math.sqrt(2 / 3))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestRelativeError:
    def test_value(self):
        assert relative_error(11.0, 10.0) == pytest.approx(0.1)

    def test_zero_expected(self):
        with pytest.raises(ZeroDivisionError):
            relative_error(1.0, 0.0)
