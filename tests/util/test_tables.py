"""Tests for text-table rendering."""

import pytest

from repro.util.tables import render_table


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        assert "bb" in lines[3]

    def test_title_prepended(self):
        text = render_table(["h"], [["x"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = render_table(["v"], [[0.123456]])
        assert "0.1235" in text

    def test_numbers_right_aligned(self):
        text = render_table(["value"], [[7]])
        row = text.splitlines()[-1]
        assert row.endswith("7")
        assert row.startswith(" ")

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError, match="2 cells"):
            render_table(["a"], [["x", "y"]])

    def test_column_width_fits_longest_cell(self):
        text = render_table(["h"], [["short"], ["a-much-longer-cell"]])
        header, rule, *rows = text.splitlines()
        assert len(rule) >= len("a-much-longer-cell")

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
