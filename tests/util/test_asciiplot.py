"""Tests for ASCII chart rendering."""

import pytest

from repro.util.asciiplot import bar_chart, line_plot


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = bar_chart({"a": 0.5, "b": 1.0}, width=10)
        line_a, line_b = chart.splitlines()
        assert line_b.count("#") == 10
        assert line_a.count("#") == 5

    def test_value_labels_formatted(self):
        chart = bar_chart({"x": 0.425}, fmt=".1%")
        assert "42.5%" in chart

    def test_title(self):
        chart = bar_chart({"x": 1.0}, title="Figure 6")
        assert chart.splitlines()[0] == "Figure 6"

    def test_zero_value_has_empty_bar(self):
        chart = bar_chart({"zero": 0.0, "one": 1.0})
        assert "#" not in chart.splitlines()[0]

    def test_explicit_ceiling(self):
        chart = bar_chart({"x": 0.5}, width=10, max_value=1.0)
        assert chart.count("#") == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"x": -1.0})
        with pytest.raises(ValueError):
            bar_chart({"x": 1.0}, width=0)


class TestLinePlot:
    def test_series_glyphs_present(self):
        plot = line_plot(
            [0, 1, 2],
            {"up": [0.0, 0.5, 1.0], "down": [1.0, 0.5, 0.0]},
        )
        assert "o" in plot
        assert "x" in plot
        assert "o=up" in plot
        assert "x=down" in plot

    def test_axis_labels(self):
        plot = line_plot([0.0, 0.5], {"s": [0.1, 0.9]}, y_fmt=".0%")
        assert "90%" in plot
        assert "10%" in plot

    def test_monotone_series_renders_monotone(self):
        plot = line_plot([0, 1, 2, 3], {"s": [0.0, 1.0, 2.0, 3.0]}, height=4, width=7)
        rows = [line for line in plot.splitlines() if "|" in line]
        columns = [row.index("o") for row in rows if "o" in row]
        # Rows render top-down, so a rising series appears right-to-left
        # as we scan downward.
        assert columns == sorted(columns, reverse=True)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            line_plot([0, 1], {"s": [1.0]})

    def test_degenerate_inputs_rejected(self):
        with pytest.raises(ValueError):
            line_plot([0], {"s": [1.0]})
        with pytest.raises(ValueError):
            line_plot([1, 1], {"s": [0.0, 1.0]})
        with pytest.raises(ValueError):
            line_plot([0, 1], {})

    def test_flat_series_allowed(self):
        plot = line_plot([0, 1], {"flat": [0.5, 0.5]})
        assert "o" in plot
