"""Tests for the JSONL metrics sink: schema, validator, determinism."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import (
    METRICS_SCHEMA_VERSION,
    build_manifest,
    canonical_line,
    config_hash,
    deterministic_body,
    metrics_lines,
    profile_report,
    read_metrics,
    validate_metrics_file,
    validate_metrics_lines,
    write_metrics,
)
from repro.sim.config import ExperimentConfig
from repro.sim.experiments import uaa_scheme_comparison

SMALL = ExperimentConfig(regions=64, lines_per_region=2, seed=7)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.inc("runner.tasks", 4)
    registry.gauge("runner.jobs", 2)
    registry.observe("sim.deaths_per_run", 42)
    with registry.span("runner/total"):
        pass
    return registry


class TestManifest:
    def test_wall_defaults_to_outermost_span(self):
        registry = _populated_registry()
        manifest = build_manifest(registry)
        assert manifest["wall_seconds"] == pytest.approx(
            registry.timing("runner/total").total
        )

    def test_cli_total_preferred_over_runner_total(self):
        registry = _populated_registry()
        registry.observe_seconds("cli/total", 123.0)
        assert build_manifest(registry)["wall_seconds"] == pytest.approx(123.0)

    def test_identity_fields_and_config_hash(self):
        config = {"regions": 64, "seed": 7}
        manifest = build_manifest(
            _populated_registry(), command="sweep-spare", config=config,
            engine="fluid-batched", jobs=2,
        )
        assert manifest["command"] == "sweep-spare"
        assert manifest["config_hash"] == config_hash(config)
        assert manifest["schema"] == METRICS_SCHEMA_VERSION

    def test_config_hash_is_key_order_independent(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        registry = _populated_registry()
        manifest = build_manifest(registry, command="test")
        path = write_metrics(tmp_path / "m.jsonl", registry, manifest)
        loaded_manifest, records = read_metrics(path)
        assert loaded_manifest["command"] == "test"
        kinds = {record["kind"] for record in records}
        assert kinds == {"counter", "gauge", "histogram", "span"}

    def test_written_file_validates(self, tmp_path):
        registry = _populated_registry()
        path = write_metrics(
            tmp_path / "m.jsonl", registry, build_manifest(registry)
        )
        assert validate_metrics_file(path) == []


class TestValidator:
    def _lines(self, registry=None):
        registry = registry or _populated_registry()
        return metrics_lines(registry, build_manifest(registry))

    def test_empty_file_rejected(self):
        assert validate_metrics_lines([]) == ["empty metrics file"]

    def test_missing_manifest_rejected(self):
        errors = validate_metrics_lines(self._lines()[1:])
        assert any("manifest" in error for error in errors)

    def test_wrong_schema_version_rejected(self):
        lines = self._lines()
        manifest = json.loads(lines[0])
        manifest["schema"] = 999
        errors = validate_metrics_lines([canonical_line(manifest)] + lines[1:])
        assert any("schema" in error for error in errors)

    def test_second_manifest_rejected(self):
        lines = self._lines()
        errors = validate_metrics_lines(lines + [lines[0]])
        assert any("only line 1" in error for error in errors)

    def test_unknown_kind_rejected(self):
        lines = self._lines() + [canonical_line({"kind": "mystery", "name": "x"})]
        assert any("unknown kind" in error for error in validate_metrics_lines(lines))

    def test_duplicate_record_rejected(self):
        lines = self._lines()
        errors = validate_metrics_lines(lines + [lines[1]])
        assert any("duplicate" in error for error in errors)

    def test_histogram_bucket_arithmetic_checked(self):
        bad = canonical_line(
            {
                "kind": "histogram",
                "name": "h",
                "boundaries": [1.0],
                "counts": [1, 2],
                "count": 5,
                "sum": 0.0,
            }
        )
        errors = validate_metrics_lines(self._lines() + [bad])
        assert any("sum to" in error for error in errors)

    def test_missing_field_rejected(self):
        bad = canonical_line({"kind": "counter", "name": "x"})
        errors = validate_metrics_lines(self._lines() + [bad])
        assert any("missing" in error for error in errors)


class TestProfileReport:
    def test_report_lists_phases_by_total(self):
        registry = _populated_registry()
        registry.observe_seconds("runner/scan", 0.25)
        registry.observe_seconds("runner/execute", 0.75)
        report = profile_report(build_manifest(registry, wall_seconds=1.0))
        lines = report.splitlines()
        execute_row = next(i for i, l in enumerate(lines) if "runner/execute" in l)
        scan_row = next(i for i, l in enumerate(lines) if "runner/scan" in l)
        assert execute_row < scan_row
        assert "75.0%" in lines[execute_row]

    def test_reference_spans_listed_last(self):
        registry = _populated_registry()
        registry.observe_seconds("runner/scan", 0.5)
        report = profile_report(build_manifest(registry))
        lines = [l for l in report.splitlines() if "/" in l]
        assert "runner/total" in lines[-1]


class TestEndToEndDeterminism:
    """The acceptance criterion: two identical runs, identical body."""

    def _run_once(self, tmp_path, name):
        metrics = MetricsRegistry()
        with metrics.span("cli/total"):
            uaa_scheme_comparison(SMALL, jobs=1, cache=None, metrics=metrics)
        manifest = build_manifest(
            metrics, command="compare-uaa", engine="fluid-batched", jobs=1
        )
        return write_metrics(tmp_path / name, metrics, manifest)

    def test_bodies_byte_identical_across_runs(self, tmp_path):
        first = self._run_once(tmp_path, "a.jsonl")
        second = self._run_once(tmp_path, "b.jsonl")
        assert deterministic_body(first) == deterministic_body(second)
        # ... while the manifests legitimately differ in wall time.
        assert validate_metrics_file(first) == []

    def test_phase_times_sum_close_to_total(self, tmp_path):
        manifest, _ = read_metrics(self._run_once(tmp_path, "c.jsonl"))
        timings = manifest["timings"]
        phases = sum(
            timings[name]["sum"]
            for name in ("runner/scan", "runner/execute", "runner/finalize")
        )
        total = timings["runner/total"]["sum"]
        assert phases == pytest.approx(total, rel=0.05)
