"""Tests for the metrics registry: counters, gauges, histograms, spans."""

import math

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Histogram,
    MetricsRegistry,
    maybe_span,
)


class TestHistogram:
    def test_counts_has_overflow_slot(self):
        histogram = Histogram((1.0, 10.0))
        assert len(histogram.counts) == 3

    def test_observe_buckets_by_upper_bound_inclusive(self):
        histogram = Histogram((1.0, 10.0))
        histogram.observe(1.0)
        histogram.observe(1.5)
        histogram.observe(100.0)
        assert histogram.counts == [1, 1, 1]
        assert histogram.count == 3
        assert histogram.total == pytest.approx(102.5)
        assert histogram.min == 1.0 and histogram.max == 100.0

    def test_boundaries_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_snapshot_is_finite_when_empty(self):
        snapshot = Histogram((1.0,)).snapshot()
        assert snapshot["min"] == 0.0 and snapshot["max"] == 0.0
        assert all(math.isfinite(snapshot[k]) for k in ("sum", "min", "max"))

    def test_merge_adds_buckets_and_combines_extrema(self):
        a, b = Histogram((1.0, 10.0)), Histogram((1.0, 10.0))
        a.observe(0.5)
        b.observe(5.0)
        b.observe(50.0)
        a.merge(b.snapshot())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5 and a.max == 50.0

    def test_merge_rejects_mismatched_boundaries(self):
        a, b = Histogram((1.0,)), Histogram((2.0,))
        with pytest.raises(ValueError, match="boundaries"):
            a.merge(b.snapshot())

    def test_merge_of_empty_snapshot_keeps_extrema(self):
        a, b = Histogram((1.0,)), Histogram((1.0,))
        a.observe(0.5)
        a.merge(b.snapshot())
        assert a.min == 0.5 and a.max == 0.5


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.inc("sim.deaths")
        registry.inc("sim.deaths", 4)
        assert registry.counter("sim.deaths") == 5
        assert registry.counter("never.touched") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().inc("x", -1)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("runner.jobs", 2)
        registry.gauge("runner.jobs", 8)
        assert registry.gauge_value("runner.jobs") == 8
        assert registry.gauge_value("never.set") is None

    def test_span_records_a_timing(self):
        registry = MetricsRegistry()
        with registry.span("sim/kernel"):
            pass
        timing = registry.timing("sim/kernel")
        assert timing is not None and timing.count == 1
        assert timing.boundaries == DEFAULT_TIME_BUCKETS

    def test_observe_uses_count_buckets(self):
        registry = MetricsRegistry()
        registry.observe("sim.deaths_per_run", 42)
        histogram = registry.histogram("sim.deaths_per_run")
        assert histogram is not None
        assert histogram.boundaries == DEFAULT_COUNT_BUCKETS

    def test_snapshot_key_order_independent_of_recording_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x")
        a.inc("y")
        b.inc("y")
        b.inc("x")
        assert list(a.snapshot()["counters"]) == list(b.snapshot()["counters"])

    def test_merge_snapshot_is_commutative(self):
        def worker(seed):
            registry = MetricsRegistry()
            registry.inc("sim.deaths", seed)
            registry.observe("sim.deaths_per_run", seed)
            # Binary-exact durations so the merged sum is order-exact too.
            registry.observe_seconds("runner/worker_run", seed * 0.25)
            return registry.snapshot()

        snapshots = [worker(s) for s in (3, 7, 11)]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for snapshot in snapshots:
            forward.merge_snapshot(snapshot)
        for snapshot in reversed(snapshots):
            backward.merge_snapshot(snapshot)
        assert forward.snapshot() == backward.snapshot()

    def test_maybe_span_without_registry_is_noop(self):
        with maybe_span(None, "anything"):
            pass

    def test_maybe_span_with_registry_records(self):
        registry = MetricsRegistry()
        with maybe_span(registry, "cache/get"):
            pass
        assert registry.timing("cache/get").count == 1
