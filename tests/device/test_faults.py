"""Tests for fault models."""

import numpy as np
import pytest

from repro.device.faults import ECPBudget, FaultModel


class TestBaseline:
    def test_identity(self):
        endurance = np.array([1.0, 2.0])
        np.testing.assert_array_equal(
            FaultModel().effective_endurance(endurance), endurance
        )

    def test_describe(self):
        assert "wear-out" in FaultModel().describe()


class TestECP:
    def test_bonus_scales_with_pointers(self):
        endurance = np.array([100.0])
        ecp2 = ECPBudget(pointers=2).effective_endurance(endurance)[0]
        ecp6 = ECPBudget(pointers=6).effective_endurance(endurance)[0]
        assert ecp2 == pytest.approx(102.0)
        assert ecp6 == pytest.approx(106.0)

    def test_paper_capacity_overhead(self):
        """ECP-6 costs 11.9% capacity (Schechter et al., quoted in Sec 2.2.2)."""
        assert ECPBudget(pointers=6).capacity_overhead == pytest.approx(0.119, abs=0.002)

    def test_zero_pointers_is_baseline(self):
        endurance = np.array([10.0])
        np.testing.assert_array_equal(
            ECPBudget(pointers=0).effective_endurance(endurance), endurance
        )

    def test_negative_pointers_rejected(self):
        with pytest.raises(ValueError):
            ECPBudget(pointers=-1)

    def test_invalid_bonus_rejected(self):
        with pytest.raises(ValueError):
            ECPBudget(bonus_per_pointer=1.5)

    def test_describe_mentions_ecp(self):
        assert "ECP-6" in ECPBudget().describe()
