"""Tests for the NVM bank wear state."""

import numpy as np
import pytest

from repro.device.bank import NVMBank
from repro.device.errors import AddressError, LineWornOutError
from repro.device.faults import ECPBudget
from repro.device.geometry import DeviceGeometry
from repro.endurance.emap import EnduranceMap


@pytest.fixture
def bank():
    return NVMBank(EnduranceMap(np.array([3.0, 5.0, 10.0, 10.0]), regions=2))


class TestScalarWrites:
    def test_write_accumulates(self, bank):
        assert bank.write(0) is False
        assert bank.wear[0] == 1.0

    def test_death_on_reaching_endurance(self, bank):
        bank.write(0, 2)
        assert bank.write(0) is True
        assert not bank.is_alive(0)

    def test_write_to_dead_line_raises(self, bank):
        bank.write(0, 3)
        with pytest.raises(LineWornOutError) as excinfo:
            bank.write(0)
        assert excinfo.value.line == 0

    def test_invalid_count(self, bank):
        with pytest.raises(ValueError):
            bank.write(0, 0)

    def test_invalid_address(self, bank):
        with pytest.raises(AddressError):
            bank.write(4)


class TestVectorWrites:
    def test_apply_wear_reports_newly_dead(self, bank):
        newly_dead = bank.apply_wear(np.array([0, 1]), np.array([3.0, 1.0]))
        np.testing.assert_array_equal(newly_dead, [0])
        assert bank.dead_count == 1

    def test_duplicates_accumulate(self, bank):
        newly_dead = bank.apply_wear(np.array([0, 0, 0]), 1.0)
        np.testing.assert_array_equal(newly_dead, [0])

    def test_empty_input(self, bank):
        assert bank.apply_wear(np.array([], dtype=int), 1.0).size == 0

    def test_rejects_dead_targets(self, bank):
        bank.force_kill(1)
        with pytest.raises(LineWornOutError):
            bank.apply_wear(np.array([1]), 1.0)

    def test_rejects_negative_amounts(self, bank):
        with pytest.raises(ValueError):
            bank.apply_wear(np.array([0]), -1.0)

    def test_rejects_out_of_range(self, bank):
        with pytest.raises(AddressError):
            bank.apply_wear(np.array([9]), 1.0)


class TestAccounting:
    def test_totals(self, bank):
        assert bank.total_endurance == 28.0
        assert bank.lines == 4
        assert bank.alive_count == 4

    def test_remaining(self, bank):
        bank.write(2, 4)
        assert bank.remaining(2) == pytest.approx(6.0)
        remaining = bank.remaining()
        assert remaining[2] == pytest.approx(6.0)

    def test_utilization(self, bank):
        bank.write(2, 7)
        assert bank.utilization() == pytest.approx(7.0 / 28.0)

    def test_dead_lines_listing(self, bank):
        bank.force_kill(3)
        np.testing.assert_array_equal(bank.dead_lines(), [3])

    def test_reset(self, bank):
        bank.write(0, 3)
        bank.reset()
        assert bank.alive_count == 4
        assert bank.wear.sum() == 0.0


class TestFaultModels:
    def test_ecp_extends_effective_endurance(self):
        emap = EnduranceMap(np.array([100.0, 100.0]), regions=1)
        plain = NVMBank(emap)
        salvaged = NVMBank(emap, fault_model=ECPBudget(pointers=6))
        assert salvaged.total_endurance > plain.total_endurance
        assert salvaged.total_endurance == pytest.approx(200.0 * 1.06)

    def test_geometry_mismatch_rejected(self):
        emap = EnduranceMap(np.ones(8), regions=2)
        with pytest.raises(ValueError, match="does not match"):
            NVMBank(emap, geometry=DeviceGeometry(total_lines=16, regions=2))
