"""Tests for device geometry arithmetic."""

import pytest

from repro.device.errors import AddressError, ConfigurationError
from repro.device.geometry import DeviceGeometry


class TestConstruction:
    def test_paper_bank(self):
        geometry = DeviceGeometry.paper_bank()
        assert geometry.capacity_bytes == 2**30
        assert geometry.regions == 2048
        assert geometry.line_bytes == 64
        assert geometry.total_lines == 2**24
        assert geometry.lines_per_region == 2**13

    def test_scaled_bank(self):
        geometry = DeviceGeometry.scaled_bank(lines_per_region=8)
        assert geometry.regions == 2048
        assert geometry.total_lines == 8 * 2048

    def test_indivisible_rejected(self):
        with pytest.raises(ConfigurationError, match="divide"):
            DeviceGeometry(total_lines=10, regions=3)

    @pytest.mark.parametrize("field,value", [("total_lines", 0), ("regions", 0), ("line_bytes", 0)])
    def test_non_positive_rejected(self, field, value):
        kwargs = {"total_lines": 8, "regions": 2, "line_bytes": 64}
        kwargs[field] = value
        with pytest.raises(ConfigurationError):
            DeviceGeometry(**kwargs)


class TestAddressMath:
    @pytest.fixture
    def geometry(self):
        return DeviceGeometry(total_lines=16, regions=4)

    def test_region_of(self, geometry):
        assert geometry.region_of(0) == 0
        assert geometry.region_of(7) == 1
        assert geometry.region_of(15) == 3

    def test_line_offset_round_trip(self, geometry):
        for line in range(16):
            region = geometry.region_of(line)
            offset = geometry.line_offset(line)
            assert geometry.line_of(region, offset) == line

    def test_region_slice(self, geometry):
        assert geometry.region_slice(2) == slice(8, 12)

    def test_out_of_range_line(self, geometry):
        with pytest.raises(AddressError):
            geometry.region_of(16)

    def test_out_of_range_region(self, geometry):
        with pytest.raises(AddressError):
            geometry.region_slice(4)

    def test_out_of_range_offset(self, geometry):
        with pytest.raises(AddressError):
            geometry.line_of(0, 4)


class TestBitWidths:
    def test_paper_bank_widths(self):
        geometry = DeviceGeometry.paper_bank()
        assert geometry.line_address_bits == 24
        assert geometry.region_address_bits == 11
        assert geometry.intra_region_bits == 13

    def test_widths_compose(self):
        geometry = DeviceGeometry(total_lines=2**10, regions=2**4)
        assert (
            geometry.region_address_bits + geometry.intra_region_bits
            == geometry.line_address_bits
        )

    def test_power_of_two_detection(self):
        assert DeviceGeometry(16, 4).is_power_of_two_sized
        assert not DeviceGeometry(12, 4).is_power_of_two_sized
