"""Tests for wear inspection and the endurance-map file format."""

import numpy as np
import pytest

from repro.device.bank import NVMBank
from repro.device.inspect import BankInspector, wear_heatmap
from repro.endurance.emap import EnduranceMap
from repro.endurance.io import load_endurance_map, save_endurance_map


@pytest.fixture
def bank():
    emap = EnduranceMap(
        np.array([10.0, 10.0, 20.0, 20.0, 40.0, 40.0]), regions=3
    )
    return NVMBank(emap)


class TestBankInspector:
    def test_fresh_bank_all_zero_utilization(self, bank):
        inspector = BankInspector(bank)
        counts, edges = inspector.wear_histogram(bins=10)
        assert counts[0] == 6
        assert counts[1:].sum() == 0

    def test_histogram_reflects_wear(self, bank):
        bank.write(0, 5)  # 50% of line 0
        counts, _ = BankInspector(bank).wear_histogram(bins=10)
        assert counts[5] == 1

    def test_region_summaries(self, bank):
        bank.write(2, 10)  # half of region 1's 40-budget
        summaries = BankInspector(bank).region_summaries()
        assert summaries[1].utilization == pytest.approx(0.25)
        assert summaries[0].utilization == 0.0
        assert summaries[1].dead_lines == 0

    def test_dead_line_counting(self, bank):
        bank.write(0, 10)
        assert BankInspector(bank).region_summaries()[0].dead_lines == 1

    def test_stranded_endurance(self, bank):
        assert BankInspector(bank).stranded_endurance() == pytest.approx(140.0)
        bank.write(4, 40)
        assert BankInspector(bank).stranded_endurance() == pytest.approx(100.0)

    def test_region_utilization_array(self, bank):
        bank.write(0, 10)
        bank.write(1, 10)
        utilization = BankInspector(bank).region_utilization()
        assert utilization[0] == pytest.approx(1.0)
        np.testing.assert_allclose(utilization[1:], 0.0)


class TestWearHeatmap:
    def test_fresh_bank_renders_blank(self, bank):
        heatmap = wear_heatmap(bank, columns=3)
        row = heatmap.splitlines()[0]
        assert row == "   "

    def test_worn_region_renders_bright(self, bank):
        bank.write(0, 10)
        bank.write(1, 10)
        heatmap = wear_heatmap(bank, columns=3)
        assert heatmap.splitlines()[0][0] == "@"

    def test_rows_wrap_at_columns(self, bank):
        heatmap = wear_heatmap(bank, columns=2, title="wear")
        lines = heatmap.splitlines()
        assert lines[0] == "wear"
        assert len(lines[1]) == 2
        assert len(lines[2]) == 1

    def test_legend_present(self, bank):
        assert "region budget" in wear_heatmap(bank)


class TestEnduranceMapIO:
    def test_round_trip(self, tmp_path):
        emap = EnduranceMap(np.array([1.0, 2.0, 3.0, 4.0]), regions=2)
        path = save_endurance_map(emap, tmp_path / "chip.npz")
        loaded = load_endurance_map(path)
        np.testing.assert_array_equal(loaded.line_endurance, emap.line_endurance)
        assert loaded.regions == 2

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(42),
            line_endurance=np.array([1.0]),
            regions=np.int64(1),
        )
        with pytest.raises(ValueError, match="version 42"):
            load_endurance_map(path)

    def test_loaded_map_simulates_identically(self, tmp_path):
        from repro.attacks.uaa import UniformAddressAttack
        from repro.core.maxwe import MaxWE
        from repro.sim.config import ExperimentConfig
        from repro.sim.lifetime import simulate_lifetime

        config = ExperimentConfig(regions=128, lines_per_region=2)
        emap = config.make_emap()
        path = save_endurance_map(emap, tmp_path / "chip.npz")
        loaded = load_endurance_map(path)
        a = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=1)
        b = simulate_lifetime(loaded, UniformAddressAttack(), MaxWE(0.1), rng=1)
        assert a.writes_served == b.writes_served
