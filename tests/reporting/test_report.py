"""Tests for the Markdown report generator."""

import pytest

from repro.reporting.report import ReportSection, generate_report
from repro.sim.config import ExperimentConfig


@pytest.fixture(scope="module")
def report_text():
    config = ExperimentConfig(regions=128, lines_per_region=2)
    return generate_report(config)


class TestSections:
    def test_header_carries_configuration(self, report_text):
        assert "# Max-WE reproduction report" in report_text
        assert "128 regions x 2 lines" in report_text

    def test_all_sections_present(self, report_text):
        for title in (
            "Analytic lifetimes",
            "UAA scheme comparison",
            "Spare-capacity sweep",
            "SWR-share sweep",
            "BPA scheme comparison",
            "Parameter sensitivity",
            "Mapping-table overhead",
        ):
            assert f"## {title}" in report_text

    def test_sensitivity_elasticities_reported(self, report_text):
        assert "`spare_fraction`" in report_text
        assert "elasticity" in report_text.lower()

    def test_analytic_spot_values(self, report_text):
        assert "38.1%" in report_text  # Eq. 6 at p=0.1, q=50
        assert "3.9%" in report_text  # Eq. 5

    def test_charts_rendered(self, report_text):
        assert "```" in report_text
        assert "|#" in report_text  # a bar
        assert "o=measured" in report_text  # figure 6 legend

    def test_overhead_numbers(self, report_text):
        assert "0.16 MB" in report_text
        assert "1.10 MB" in report_text

    def test_paper_references_included(self, report_text):
        assert "paper: 9.5X" in report_text


class TestOutput:
    def test_write_to_file(self, tmp_path):
        config = ExperimentConfig(regions=64, lines_per_region=2)
        path = tmp_path / "report.md"
        document = generate_report(config, path)
        assert path.read_text() == document

    def test_section_render(self):
        section = ReportSection(title="T", body="B")
        assert section.render() == "## T\n\nB\n"
