"""Tests for endurance-map generators."""

import numpy as np
import pytest

from repro.endurance.generators import (
    lognormal_endurance_map,
    uniform_endurance_map,
    zhang_li_endurance_map,
)


class TestZhangLiMap:
    def test_shape(self):
        emap = zhang_li_endurance_map(1024, 128, rng=1)
        assert emap.lines == 1024
        assert emap.regions == 128

    def test_region_constant_by_default(self):
        emap = zhang_li_endurance_map(512, 64, rng=1)
        for region in (0, 13, 63):
            values = emap.region_lines(region)
            assert np.all(values == values[0])

    def test_intra_region_jitter(self):
        emap = zhang_li_endurance_map(512, 64, intra_region_sigma=0.2, rng=1)
        jittered = any(
            np.unique(emap.region_lines(region)).size > 1 for region in range(64)
        )
        assert jittered

    def test_deterministic_mode_fixed_multiset(self):
        a = zhang_li_endurance_map(256, 64, deterministic=True, rng=1)
        b = zhang_li_endurance_map(256, 64, deterministic=True, rng=2)
        # Different placement, identical endurance multiset (quantile grid).
        np.testing.assert_allclose(
            np.sort(a.line_endurance), np.sort(b.line_endurance)
        )

    def test_seed_reproducible(self):
        a = zhang_li_endurance_map(256, 64, rng=7)
        b = zhang_li_endurance_map(256, 64, rng=7)
        np.testing.assert_array_equal(a.line_endurance, b.line_endurance)

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError, match="intra_region_sigma"):
            zhang_li_endurance_map(64, 8, intra_region_sigma=-0.1)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            zhang_li_endurance_map(65, 8)


class TestLognormalMap:
    def test_shape_and_positivity(self):
        emap = lognormal_endurance_map(256, 32, rng=1)
        assert emap.lines == 256
        assert np.all(emap.line_endurance > 0)

    def test_median_scale(self):
        emap = lognormal_endurance_map(4096, 4096, median=1e6, sigma=0.5, rng=1)
        assert np.median(emap.line_endurance) == pytest.approx(1e6, rel=0.1)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            lognormal_endurance_map(64, 8, sigma=0.0)


class TestUniformMap:
    def test_constant(self):
        emap = uniform_endurance_map(64, 8, endurance=123.0)
        assert np.all(emap.line_endurance == 123.0)
        assert emap.q_ratio == 1.0

    def test_invalid_endurance(self):
        with pytest.raises(ValueError):
            uniform_endurance_map(64, 8, endurance=0.0)
