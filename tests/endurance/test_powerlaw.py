"""Tests for the Eq. 1 power-law endurance model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.endurance.powerlaw import (
    NOMINAL_CURRENT_MA,
    NOMINAL_ENDURANCE,
    PowerLawEnduranceModel,
)


class TestEquationOne:
    def test_nominal_current_gives_nominal_endurance(self):
        model = PowerLawEnduranceModel()
        assert model.endurance(NOMINAL_CURRENT_MA) == pytest.approx(NOMINAL_ENDURANCE)

    def test_higher_current_lower_endurance(self):
        model = PowerLawEnduranceModel()
        assert model.endurance(0.4) < model.endurance(0.3) < model.endurance(0.2)

    def test_current_exponent_is_minus_twelve(self):
        model = PowerLawEnduranceModel()
        assert model.current_exponent == -12.0
        # Doubling the current divides endurance by 2^12.
        ratio = model.endurance(0.3) / model.endurance(0.6)
        assert ratio == pytest.approx(2**12, rel=1e-9)

    def test_array_input(self):
        model = PowerLawEnduranceModel()
        result = model.endurance(np.array([0.2, 0.3, 0.4]))
        assert isinstance(result, np.ndarray)
        assert np.all(np.diff(result) < 0)

    def test_scalar_returns_float(self):
        assert isinstance(PowerLawEnduranceModel().endurance(0.3), float)

    def test_non_positive_current_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            PowerLawEnduranceModel().endurance(0.0)

    def test_non_positive_endurance_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            PowerLawEnduranceModel().current_for_endurance(-1.0)


class TestInversion:
    @given(st.floats(min_value=0.05, max_value=2.0))
    def test_round_trip_current(self, current):
        model = PowerLawEnduranceModel()
        recovered = model.current_for_endurance(model.endurance(current))
        assert recovered == pytest.approx(current, rel=1e-9)

    @given(st.floats(min_value=1e2, max_value=1e14))
    def test_round_trip_endurance(self, endurance):
        model = PowerLawEnduranceModel()
        recovered = model.endurance(model.current_for_endurance(endurance))
        assert recovered == pytest.approx(endurance, rel=1e-9)


class TestValidation:
    def test_positive_exponent_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            PowerLawEnduranceModel(exponent=6.0)

    def test_non_positive_scale_rejected(self):
        with pytest.raises(ValueError):
            PowerLawEnduranceModel(scale=0.0)

    def test_non_positive_rt_rejected(self):
        with pytest.raises(ValueError):
            PowerLawEnduranceModel(resistance_times_pulse=-1.0)
