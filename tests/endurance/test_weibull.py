"""Tests for the Weibull endurance family and distribution robustness."""

import numpy as np
import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.generators import weibull_endurance_map
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.sparing.ps import PS


class TestWeibullMap:
    def test_shape_and_positivity(self):
        emap = weibull_endurance_map(256, 64, rng=1)
        assert emap.lines == 256
        assert np.all(emap.line_endurance > 0)

    def test_scale_parameter(self):
        emap = weibull_endurance_map(8192, 8192, scale=1e6, shape=3.0, rng=1)
        # Weibull(k=3) mean = scale * Gamma(1 + 1/3) ~ 0.8930 * scale.
        assert emap.line_endurance.mean() == pytest.approx(0.893e6, rel=0.05)

    def test_low_shape_heavier_weak_tail(self):
        infant = weibull_endurance_map(4096, 4096, shape=0.7, rng=2)
        mature = weibull_endurance_map(4096, 4096, shape=3.0, rng=2)
        assert (
            infant.min_endurance / infant.line_endurance.mean()
            < mature.min_endurance / mature.line_endurance.mean()
        )

    def test_floor_guards_zero_lifetimes(self):
        emap = weibull_endurance_map(8192, 8192, shape=0.3, rng=3)
        assert emap.min_endurance > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            weibull_endurance_map(64, 8, shape=0.0)
        with pytest.raises(ValueError):
            weibull_endurance_map(65, 8)


class TestDistributionRobustness:
    """The paper's orderings must not depend on the distribution family."""

    @pytest.mark.parametrize("shape", [1.0, 2.0, 4.0])
    def test_maxwe_ordering_across_weibull_shapes(self, shape):
        emap = weibull_endurance_map(2048, 512, shape=shape, rng=5)
        attack = UniformAddressAttack()
        nothing = simulate_lifetime(emap, attack, NoSparing(), rng=5)
        worst = simulate_lifetime(emap, attack, PS.worst_case(0.1), rng=5)
        maxwe = simulate_lifetime(emap, attack, MaxWE(0.1), rng=5)
        assert (
            maxwe.normalized_lifetime
            > worst.normalized_lifetime
            > nothing.normalized_lifetime
        )

    def test_uaa_damage_grows_with_variation(self):
        """Lower Weibull shape = more variation = worse UAA lifetime."""
        lifetimes = []
        for shape in (0.8, 2.0, 6.0):
            emap = weibull_endurance_map(2048, 512, shape=shape, rng=7)
            result = simulate_lifetime(
                emap, UniformAddressAttack(), NoSparing(), rng=7
            )
            lifetimes.append(result.normalized_lifetime)
        assert lifetimes == sorted(lifetimes)
