"""Tests for endurance-variation metrics."""

import numpy as np
import pytest

from repro.endurance.emap import EnduranceMap
from repro.endurance.metrics import (
    coefficient_of_variation,
    endurance_percentile,
    region_endurance,
    sort_regions_by_endurance,
    variation_ratio,
)


@pytest.fixture
def emap():
    return EnduranceMap(np.array([10.0, 10.0, 40.0, 40.0, 20.0, 20.0]), regions=3)


class TestVariationRatio:
    def test_array_input(self):
        assert variation_ratio(np.array([2.0, 8.0])) == pytest.approx(4.0)

    def test_emap_input(self, emap):
        assert variation_ratio(emap) == pytest.approx(4.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            variation_ratio(np.array([1.0, -1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            variation_ratio(np.array([]))


class TestCoefficientOfVariation:
    def test_constant_is_zero(self):
        assert coefficient_of_variation(np.full(10, 5.0)) == pytest.approx(0.0)

    def test_known_value(self):
        values = np.array([1.0, 3.0])
        assert coefficient_of_variation(values) == pytest.approx(0.5)


class TestRegionHelpers:
    def test_region_endurance_delegates(self, emap):
        np.testing.assert_array_equal(region_endurance(emap), [10.0, 40.0, 20.0])

    def test_sort_regions(self, emap):
        np.testing.assert_array_equal(sort_regions_by_endurance(emap), [0, 2, 1])


class TestPercentile:
    def test_median(self):
        assert endurance_percentile(np.array([1.0, 2.0, 3.0]), 50.0) == 2.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError):
            endurance_percentile(np.array([1.0]), 101.0)
