"""Tests for the Section 3.1 linear endurance model (Eq. 3-5)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map


class TestModel:
    def test_from_q(self):
        model = LinearEnduranceModel.from_q(50.0, e_low=100.0)
        assert model.e_high == pytest.approx(5000.0)
        assert model.q == pytest.approx(50.0)

    def test_invalid_q(self):
        with pytest.raises(ValueError, match=">= 1"):
            LinearEnduranceModel.from_q(0.5)

    def test_high_below_low_rejected(self):
        with pytest.raises(ValueError, match="e_high"):
            LinearEnduranceModel(e_low=10.0, e_high=5.0)

    def test_line_endurances_span(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=10.0)
        values = model.line_endurances(10)
        assert values[0] == 10.0
        assert values[-1] == 1.0
        assert np.all(np.diff(values) < 0)

    def test_single_line_midpoint(self):
        model = LinearEnduranceModel(e_low=2.0, e_high=4.0)
        assert model.line_endurances(1)[0] == pytest.approx(3.0)


class TestEquations:
    def test_eq3_ideal_lifetime(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=50.0)
        # N (EH-EL)/2 + N EL = 100*24.5 + 100 = 2550
        assert model.ideal_lifetime(100) == pytest.approx(2550.0)

    def test_eq4_uaa_lifetime(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=50.0)
        assert model.uaa_lifetime(100) == pytest.approx(100.0)

    def test_eq5_paper_spot_value(self):
        """EH = 50 EL gives the paper's 3.9% headline."""
        model = LinearEnduranceModel.from_q(50.0)
        assert model.uaa_fraction() == pytest.approx(0.0392, abs=2e-4)

    def test_eq5_quoted_example(self):
        """'If EH is 50 times more than EL, L_UAA will be only 3.9%'."""
        assert LinearEnduranceModel.from_q(50.0).uaa_fraction() == pytest.approx(
            2.0 / 51.0
        )

    @given(st.floats(min_value=1.0, max_value=1000.0), st.integers(min_value=1, max_value=10000))
    def test_eq5_consistent_with_eq3_eq4(self, q, lines):
        model = LinearEnduranceModel.from_q(q)
        ratio = model.uaa_lifetime(lines) / model.ideal_lifetime(lines)
        assert ratio == pytest.approx(model.uaa_fraction(), rel=1e-9)

    def test_no_variation_is_ideal(self):
        model = LinearEnduranceModel.from_q(1.0)
        assert model.uaa_fraction() == pytest.approx(1.0)


class TestLinearMap:
    def test_map_multiset_matches_model(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=5.0)
        emap = linear_endurance_map(20, 10, model, layout="descending")
        np.testing.assert_allclose(
            np.unique(emap.line_endurance), np.unique(model.line_endurances(10))
        )

    def test_region_constant_endurance(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=5.0)
        emap = linear_endurance_map(40, 10, model, layout="shuffled", rng=4)
        for region in range(10):
            values = emap.region_lines(region)
            assert np.all(values == values[0])

    def test_layouts(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=9.0)
        ascending = linear_endurance_map(9, 9, model, layout="ascending")
        descending = linear_endurance_map(9, 9, model, layout="descending")
        assert ascending.line_endurance[0] == pytest.approx(1.0)
        assert descending.line_endurance[0] == pytest.approx(9.0)

    def test_shuffle_deterministic(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=9.0)
        a = linear_endurance_map(18, 9, model, rng=3)
        b = linear_endurance_map(18, 9, model, rng=3)
        np.testing.assert_array_equal(a.line_endurance, b.line_endurance)

    def test_unknown_layout_rejected(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=9.0)
        with pytest.raises(ValueError, match="layout"):
            linear_endurance_map(9, 9, model, layout="diagonal")

    def test_indivisible_rejected(self):
        model = LinearEnduranceModel(e_low=1.0, e_high=9.0)
        with pytest.raises(ValueError, match="divide"):
            linear_endurance_map(10, 3, model)
