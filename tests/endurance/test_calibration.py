"""Tests for endurance-model calibration utilities."""

import numpy as np
import pytest

from repro.endurance.calibration import (
    calibrate_truncation,
    effective_q,
    fit_linear_model,
)
from repro.endurance.distribution import CurrentDistribution, ZhangLiModel
from repro.endurance.emap import EnduranceMap
from repro.endurance.generators import zhang_li_endurance_map
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map


class TestFitLinearModel:
    def test_recovers_a_truly_linear_map(self):
        model = LinearEnduranceModel.from_q(50.0, e_low=100.0)
        emap = linear_endurance_map(1024, 512, model, rng=1)
        fit = fit_linear_model(emap)
        assert fit.r_squared > 0.999
        assert fit.model.e_low == pytest.approx(100.0, rel=0.04)
        assert fit.model.e_high == pytest.approx(5000.0, rel=0.04)
        assert fit.q == pytest.approx(50.0, rel=0.05)

    def test_flags_nonlinear_maps(self):
        emap = zhang_li_endurance_map(2048, 512, deterministic=True, rng=1)
        fit = fit_linear_model(emap)
        assert fit.r_squared < 0.95  # power-law curvature shows up

    def test_single_line_degenerate(self):
        emap = EnduranceMap(np.array([42.0]), regions=1)
        fit = fit_linear_model(emap)
        assert fit.model.e_low == fit.model.e_high == 42.0
        assert fit.r_squared == 1.0

    def test_fit_is_a_valid_model(self):
        emap = zhang_li_endurance_map(512, 128, rng=3)
        fit = fit_linear_model(emap)
        assert fit.model.e_low > 0
        assert fit.model.e_high >= fit.model.e_low


class TestEffectiveQ:
    def test_linear_map_matches_literal_q(self):
        model = LinearEnduranceModel.from_q(50.0, e_low=100.0)
        emap = linear_endurance_map(2048, 1024, model, rng=1)
        assert effective_q(emap) == pytest.approx(50.0, rel=0.01)

    def test_reproduces_uaa_exposure_by_construction(self):
        from repro.analysis.lifetime import uaa_fraction

        emap = zhang_li_endurance_map(2048, 512, deterministic=True, rng=2)
        q = effective_q(emap)
        exposure = emap.min_endurance / emap.line_endurance.mean()
        assert uaa_fraction(q) == pytest.approx(exposure, rel=1e-9)

    def test_convex_maps_have_smaller_effective_q(self):
        emap = zhang_li_endurance_map(2048, 512, deterministic=True, rng=2)
        assert effective_q(emap) < emap.q_ratio


class TestCalibrateTruncation:
    def test_reproduces_the_library_default(self):
        """The paper's 4.1% UAA figure calibrates to ~2 sigma screening."""
        width = calibrate_truncation(0.041)
        assert width == pytest.approx(2.0, abs=0.15)

    def test_round_trip(self):
        width = calibrate_truncation(0.06)
        model = ZhangLiModel(currents=CurrentDistribution(truncate_sigma=width))
        endurances = model.deterministic_domain_endurances(2048)
        assert endurances.min() / endurances.mean() == pytest.approx(0.06, rel=0.02)

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError, match="achievable range"):
            calibrate_truncation(0.5)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            calibrate_truncation(0.04, low=3.0, high=2.0)
