"""Tests for the EnduranceMap container."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.endurance.emap import EnduranceMap


def make_map():
    # 3 regions x 2 lines; region endurances 10/30/20.
    return EnduranceMap(np.array([10.0, 10.0, 30.0, 30.0, 20.0, 20.0]), regions=3)


class TestConstruction:
    def test_shape_properties(self):
        emap = make_map()
        assert emap.lines == 6
        assert emap.regions == 3
        assert emap.lines_per_region == 2

    def test_totals(self):
        emap = make_map()
        assert emap.total_endurance == pytest.approx(120.0)
        assert emap.min_endurance == 10.0
        assert emap.max_endurance == 30.0
        assert emap.q_ratio == pytest.approx(3.0)

    def test_array_frozen(self):
        emap = make_map()
        with pytest.raises(ValueError):
            emap.line_endurance[0] = 99.0

    def test_indivisible_regions_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            EnduranceMap(np.ones(5), regions=2)

    def test_non_positive_endurance_rejected(self):
        with pytest.raises(ValueError, match="strictly positive"):
            EnduranceMap(np.array([1.0, 0.0]), regions=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EnduranceMap(np.array([]), regions=1)

    def test_2d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            EnduranceMap(np.ones((2, 2)), regions=2)


class TestRegionViews:
    def test_region_slice(self):
        emap = make_map()
        assert emap.region_slice(1) == slice(2, 4)

    def test_region_slice_out_of_range(self):
        with pytest.raises(IndexError):
            make_map().region_slice(3)

    def test_region_of_line(self):
        emap = make_map()
        assert emap.region_of_line(0) == 0
        assert emap.region_of_line(5) == 2

    def test_region_lines_values(self):
        np.testing.assert_array_equal(make_map().region_lines(2), [20.0, 20.0])

    @pytest.mark.parametrize(
        "metric,expected", [("min", [10, 30, 20]), ("mean", [10, 30, 20]), ("max", [10, 30, 20])]
    )
    def test_region_endurance_constant_regions(self, metric, expected):
        np.testing.assert_array_equal(make_map().region_endurance(metric), expected)

    def test_region_endurance_metrics_differ_with_variation(self):
        emap = EnduranceMap(np.array([1.0, 5.0, 2.0, 2.0]), regions=2)
        assert emap.region_endurance("min")[0] == 1.0
        assert emap.region_endurance("max")[0] == 5.0
        assert emap.region_endurance("mean")[0] == 3.0

    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="metric"):
            make_map().region_endurance("median")


class TestRanking:
    def test_rank_regions_ascending(self):
        np.testing.assert_array_equal(make_map().rank_regions(), [0, 2, 1])

    def test_rank_ties_broken_by_id(self):
        emap = EnduranceMap(np.array([5.0, 5.0, 5.0, 5.0]), regions=2)
        np.testing.assert_array_equal(emap.rank_regions(), [0, 1])

    def test_weakest_lines(self):
        np.testing.assert_array_equal(make_map().weakest_lines(3), [0, 1, 4])

    def test_weakest_lines_bounds(self):
        assert make_map().weakest_lines(0).size == 0
        with pytest.raises(ValueError):
            make_map().weakest_lines(7)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=4, max_size=32).filter(
            lambda values: len(values) % 2 == 0
        )
    )
    def test_weakest_lines_property(self, values):
        emap = EnduranceMap(np.array(values), regions=2)
        count = len(values) // 2
        weakest = emap.weakest_lines(count)
        threshold = np.sort(emap.line_endurance)[count - 1]
        assert np.all(emap.line_endurance[weakest] <= threshold)


def test_with_regions_reviews_structure():
    emap = make_map().with_regions(6)
    assert emap.lines_per_region == 1
    assert emap.regions == 6
