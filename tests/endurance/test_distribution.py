"""Tests for the Eq. 2 domain current distribution and Zhang-Li model."""

import numpy as np
import pytest

from repro.endurance.distribution import CurrentDistribution, ZhangLiModel


class TestCurrentDistribution:
    def test_default_paper_parameters(self):
        dist = CurrentDistribution()
        assert dist.mu_ma == pytest.approx(0.3)
        assert dist.sigma_ma == pytest.approx(0.033)

    def test_samples_respect_truncation(self):
        dist = CurrentDistribution(truncate_sigma=1.5)
        samples = dist.sample(5000, rng=1)
        assert samples.min() >= dist.lower_ma - 1e-12
        assert samples.max() <= dist.upper_ma + 1e-12

    def test_untruncated_bounds_infinite(self):
        dist = CurrentDistribution(truncate_sigma=None)
        assert dist.lower_ma == -np.inf
        assert dist.upper_ma == np.inf

    def test_sampling_deterministic_with_seed(self):
        dist = CurrentDistribution()
        np.testing.assert_array_equal(dist.sample(64, rng=5), dist.sample(64, rng=5))

    def test_sample_mean_near_mu(self):
        dist = CurrentDistribution()
        samples = dist.sample(20000, rng=2)
        assert samples.mean() == pytest.approx(0.3, abs=0.002)

    def test_quantile_grid_monotone_and_bounded(self):
        dist = CurrentDistribution(truncate_sigma=2.0)
        grid = dist.quantile_grid(512)
        assert np.all(np.diff(grid) > 0)
        assert grid[0] > dist.lower_ma
        assert grid[-1] < dist.upper_ma

    def test_quantile_grid_median(self):
        grid = CurrentDistribution().quantile_grid(1001)
        assert grid[500] == pytest.approx(0.3, abs=1e-4)

    def test_truncation_below_zero_rejected(self):
        with pytest.raises(ValueError, match="non-positive currents"):
            CurrentDistribution(mu_ma=0.05, sigma_ma=0.033, truncate_sigma=2.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            CurrentDistribution(sigma_ma=-0.01)


class TestZhangLiModel:
    def test_domain_endurances_positive(self):
        endurances = ZhangLiModel().domain_endurances(512, rng=1)
        assert endurances.shape == (512,)
        assert np.all(endurances > 0)

    def test_deterministic_grid_sorted_descending(self):
        # Currents ascend along the grid, so endurance descends (Eq. 1).
        endurances = ZhangLiModel().deterministic_domain_endurances(128)
        assert np.all(np.diff(endurances) < 0)

    def test_variation_ratio_matches_paper_regime(self):
        """With 1.5-sigma screening the 512-domain spread is the paper's ~56x."""
        model = ZhangLiModel(currents=CurrentDistribution(truncate_sigma=1.5))
        ratio = model.variation_ratio(512)
        assert 40 < ratio < 75

    def test_default_truncation_reproduces_uaa_headline(self):
        """Default screening puts EL/mean near the paper's 4.1% UAA figure."""
        endurances = ZhangLiModel().deterministic_domain_endurances(2048)
        fraction = endurances.min() / endurances.mean()
        assert 0.03 < fraction < 0.06

    def test_sampled_determinism(self):
        model = ZhangLiModel()
        np.testing.assert_array_equal(
            model.domain_endurances(64, rng=9), model.domain_endurances(64, rng=9)
        )
