"""Tests for the Uniform Address Attack."""

import itertools

import numpy as np
import pytest

from repro.attacks.uaa import UniformAddressAttack


class TestProfile:
    def test_full_coverage_uniform(self):
        assert UniformAddressAttack().profile(100).kind == "uniform"

    def test_partial_coverage_skewed(self):
        profile = UniformAddressAttack(coverage=0.5).profile(100)
        assert profile.kind == "skewed"
        rates = profile.logical_rates(100)
        assert np.count_nonzero(rates) == 50

    def test_zero_coverage_rejected(self):
        with pytest.raises(ValueError):
            UniformAddressAttack(coverage=0.0)

    def test_coverage_above_one_rejected(self):
        with pytest.raises(ValueError):
            UniformAddressAttack(coverage=1.1)


class TestStream:
    def test_sequential_sweep(self):
        attack = UniformAddressAttack(random_data=False)
        addresses = [r.address for r in itertools.islice(attack.stream(4), 10)]
        assert addresses == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_every_line_once_per_sweep(self):
        attack = UniformAddressAttack(random_data=False)
        sweep = [r.address for r in itertools.islice(attack.stream(16), 16)]
        assert sorted(sweep) == list(range(16))

    def test_partial_coverage_stays_in_prefix(self):
        attack = UniformAddressAttack(coverage=0.25, random_data=False)
        addresses = {r.address for r in itertools.islice(attack.stream(16), 32)}
        assert addresses == {0, 1, 2, 3}

    def test_random_data_payloads(self):
        attack = UniformAddressAttack(random_data=True)
        requests = list(itertools.islice(attack.stream(4, rng=1), 8))
        assert all(r.data is not None for r in requests)
        assert len({r.data for r in requests}) > 1

    def test_no_data_when_disabled(self):
        attack = UniformAddressAttack(random_data=False)
        request = next(iter(attack.stream(4)))
        assert request.data is None

    def test_writes_per_sweep(self):
        assert UniformAddressAttack().writes_per_sweep(128) == 128
        assert UniformAddressAttack(coverage=0.5).writes_per_sweep(128) == 64

    def test_describe_mentions_coverage(self):
        assert "95" in UniformAddressAttack(coverage=0.95).describe()
