"""Contract tests: every attack model honours the AttackModel interface.

Parametrized over the whole attack/workload zoo, these verify the
invariants the simulators rely on: streams yield in-range addresses
forever, profiles normalize, and seeded streams are reproducible.
"""

import itertools

import numpy as np
import pytest

from repro.attacks.base import AttackModel
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.mixed import MixedTraffic
from repro.attacks.patterns import FlipNWriteDefeatAttack, IncompressibleDataAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.suite import WORKLOAD_NAMES, workload
from repro.attacks.targeted import TargetedWeakLineAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import HotColdWorkload, ZipfWorkload

USER_LINES = 128
SAMPLE = 512


def all_models():
    models = {
        "uaa": UniformAddressAttack(),
        "uaa-partial": UniformAddressAttack(coverage=0.5),
        "bpa": BirthdayParadoxAttack(burst_length=16),
        "bpa-noisy": BirthdayParadoxAttack(burst_length=16, hot_fraction=0.7),
        "repeated": RepeatedAddressAttack(target=3),
        "targeted": TargetedWeakLineAttack(target_fraction=0.05),
        "flip-defeat": FlipNWriteDefeatAttack(target=1),
        "incompressible": IncompressibleDataAttack(),
        "zipf": ZipfWorkload(exponent=1.1),
        "hot-cold": HotColdWorkload(),
        "mixed": MixedTraffic(UniformAddressAttack(), ZipfWorkload(), 0.5),
    }
    models.update({f"suite:{name}": workload(name) for name in WORKLOAD_NAMES})
    return models


MODELS = all_models()


@pytest.fixture(params=sorted(MODELS), ids=sorted(MODELS))
def model(request) -> AttackModel:
    return MODELS[request.param]


class TestAttackContract:
    def test_stream_addresses_in_range(self, model):
        stream = model.stream(USER_LINES, rng=1)
        for request_item in itertools.islice(stream, SAMPLE):
            assert 0 <= request_item.address < USER_LINES

    def test_stream_is_endless(self, model):
        stream = model.stream(USER_LINES, rng=1)
        consumed = sum(1 for _ in itertools.islice(stream, SAMPLE * 4))
        assert consumed == SAMPLE * 4

    def test_stream_deterministic_with_seed(self, model):
        a = [r.address for r in itertools.islice(model.stream(USER_LINES, rng=9), SAMPLE)]
        b = [r.address for r in itertools.islice(model.stream(USER_LINES, rng=9), SAMPLE)]
        assert a == b

    def test_profile_kind_valid(self, model):
        profile = model.profile(USER_LINES)
        assert profile.kind in ("uniform", "concentrated", "skewed")

    def test_profile_rates_normalize(self, model):
        rates = model.profile(USER_LINES).logical_rates(USER_LINES)
        assert rates.shape == (USER_LINES,)
        assert np.all(rates >= 0)
        assert rates.sum() == pytest.approx(1.0)

    def test_describe_is_nonempty_string(self, model):
        text = model.describe()
        assert isinstance(text, str) and text

    def test_stream_matches_profile_marginal(self, model):
        """The long-run empirical distribution must agree with the
        profile's stationary rates (total variation below 0.5 on a
        modest sample; concentrated profiles use the uniform marginal)."""
        rates = model.profile(USER_LINES).logical_rates(USER_LINES)
        counts = np.zeros(USER_LINES)
        for request_item in itertools.islice(model.stream(USER_LINES, rng=4), 8192):
            counts[request_item.address] += 1
        empirical = counts / counts.sum()
        if model.profile(USER_LINES).kind == "concentrated":
            # One finite run pins the hot target(s); only support inclusion
            # is checkable.
            assert np.all(counts[rates == 0] == 0) or rates.min() > 0
        else:
            # Workloads may permute which lines are hot between the profile
            # (canonical ordering) and a seeded stream, so compare the
            # sorted distributions -- the permutation-invariant content.
            tv = 0.5 * np.abs(np.sort(empirical) - np.sort(rates)).sum()
            assert tv < 0.5
