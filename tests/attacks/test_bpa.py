"""Tests for the Birthday Paradox Attack."""

import itertools
from collections import Counter

import pytest

from repro.attacks.bpa import BirthdayParadoxAttack


class TestProfile:
    def test_concentrated_kind(self):
        profile = BirthdayParadoxAttack().profile(64)
        assert profile.kind == "concentrated"
        assert profile.hot_fraction == 1.0

    def test_hot_fraction_carried(self):
        profile = BirthdayParadoxAttack(hot_fraction=0.8).profile(64)
        assert profile.hot_fraction == pytest.approx(0.8)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BirthdayParadoxAttack(burst_length=0)
        with pytest.raises(ValueError):
            BirthdayParadoxAttack(hot_fraction=0.0)


class TestStream:
    def test_bursts_have_configured_length(self):
        attack = BirthdayParadoxAttack(burst_length=8)
        addresses = [r.address for r in itertools.islice(attack.stream(1024, rng=1), 64)]
        for start in range(0, 64, 8):
            burst = addresses[start : start + 8]
            assert len(set(burst)) == 1

    def test_targets_change_between_bursts(self):
        attack = BirthdayParadoxAttack(burst_length=4)
        addresses = [r.address for r in itertools.islice(attack.stream(2**20, rng=2), 64)]
        targets = {addresses[i] for i in range(0, 64, 4)}
        assert len(targets) > 8  # collisions vanish in a huge space

    def test_background_traffic_interleaved(self):
        attack = BirthdayParadoxAttack(burst_length=1000, hot_fraction=0.5)
        addresses = [r.address for r in itertools.islice(attack.stream(2**16, rng=3), 1000)]
        counts = Counter(addresses)
        hot_count = counts.most_common(1)[0][1]
        assert 350 < hot_count < 650  # ~half the writes hit the burst target

    def test_deterministic_with_seed(self):
        attack = BirthdayParadoxAttack(burst_length=4)
        a = [r.address for r in itertools.islice(attack.stream(256, rng=5), 32)]
        b = [r.address for r in itertools.islice(attack.stream(256, rng=5), 32)]
        assert a == b
