"""Tests for the AccessProfile contract."""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            AccessProfile(kind="bursty")

    def test_skewed_requires_weights(self):
        with pytest.raises(ValueError, match="weights"):
            AccessProfile(kind="skewed")

    def test_uniform_rejects_weights(self):
        with pytest.raises(ValueError, match="must not carry"):
            AccessProfile(kind="uniform", weights=np.ones(4))

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            AccessProfile(kind="skewed", weights=np.array([1.0, -1.0]))

    def test_zero_sum_rejected(self):
        with pytest.raises(ValueError):
            AccessProfile(kind="skewed", weights=np.zeros(4))

    def test_hot_fraction_bounds(self):
        with pytest.raises(ValueError):
            AccessProfile(kind="concentrated", hot_fraction=1.5)


class TestLogicalRates:
    def test_uniform_rates(self):
        rates = AccessProfile(kind="uniform").logical_rates(4)
        np.testing.assert_allclose(rates, 0.25)

    def test_concentrated_long_run_marginal_is_uniform(self):
        rates = AccessProfile(kind="concentrated").logical_rates(8)
        np.testing.assert_allclose(rates, 1.0 / 8)

    def test_skewed_normalized(self):
        profile = AccessProfile(kind="skewed", weights=np.array([3.0, 1.0]))
        np.testing.assert_allclose(profile.logical_rates(2), [0.75, 0.25])

    def test_skewed_size_mismatch_rejected(self):
        profile = AccessProfile(kind="skewed", weights=np.array([1.0, 1.0]))
        with pytest.raises(ValueError, match="weights"):
            profile.logical_rates(3)
