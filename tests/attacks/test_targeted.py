"""Tests for the endurance-aware targeted attack."""

import itertools

import numpy as np
import pytest

from repro.attacks.targeted import TargetedWeakLineAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.wearlevel import make_scheme


class TestConstruction:
    def test_explicit_ids(self):
        attack = TargetedWeakLineAttack(weak_line_ids=(3, 7))
        profile = attack.profile(16)
        rates = profile.logical_rates(16)
        assert rates[3] == rates[7] == 0.5
        assert rates.sum() == pytest.approx(1.0)

    def test_fraction_selects_prefix(self):
        attack = TargetedWeakLineAttack(target_fraction=0.25)
        rates = attack.profile(16).logical_rates(16)
        assert np.count_nonzero(rates) == 4

    def test_from_endurance_map_picks_weakest(self):
        from repro.endurance.emap import EnduranceMap

        emap = EnduranceMap(np.array([5.0, 1.0, 3.0, 9.0]), regions=4)
        attack = TargetedWeakLineAttack.from_endurance_map(emap, 0.5)
        assert set(attack.weak_line_ids) == {1, 2}

    def test_stream_round_robins_targets(self):
        attack = TargetedWeakLineAttack(weak_line_ids=(2, 5))
        addresses = {
            r.address for r in itertools.islice(attack.stream(8, rng=1), 16)
        }
        assert addresses == {2, 5}

    def test_out_of_space_rejected(self):
        attack = TargetedWeakLineAttack(weak_line_ids=(9,))
        with pytest.raises(ValueError, match="outside"):
            attack.profile(8)

    def test_validation(self):
        with pytest.raises(ValueError):
            TargetedWeakLineAttack(weak_line_ids=(-1,))
        with pytest.raises(ValueError):
            TargetedWeakLineAttack(target_fraction=0.0)


class TestKnowledgeRegimes:
    """The security story: leaked endurance maps are lethal only without
    randomized defence."""

    @pytest.fixture(scope="class")
    def setup(self):
        config = ExperimentConfig(regions=512, lines_per_region=4)
        return config, config.make_emap()

    def test_leak_devastates_unprotected_device(self, setup):
        config, emap = setup
        targeted = TargetedWeakLineAttack.from_endurance_map(emap, 0.01)
        with_leak = simulate_lifetime(emap, targeted, NoSparing(), rng=1)
        without_leak = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=1)
        # The leak costs an order of magnitude on top of UAA's damage.
        assert with_leak.normalized_lifetime < 0.1 * without_leak.normalized_lifetime

    def test_randomized_defence_neutralizes_the_leak(self, setup):
        config, emap = setup
        targeted = TargetedWeakLineAttack(target_fraction=0.01)
        defended = simulate_lifetime(
            emap,
            targeted,
            MaxWE(0.1, 0.9),
            wearleveler=make_scheme("wawl", lines_per_region=1),
            rng=1,
        )
        undefended = simulate_lifetime(emap, targeted, NoSparing(), rng=1)
        assert defended.normalized_lifetime > 100 * undefended.normalized_lifetime

    def test_describe(self):
        assert "weakest 1.0%" in TargetedWeakLineAttack(target_fraction=0.01).describe()
        assert "2 known weak lines" in TargetedWeakLineAttack(weak_line_ids=(1, 2)).describe()
