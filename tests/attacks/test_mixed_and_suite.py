"""Tests for traffic mixing and the named workload suite."""

import itertools

import numpy as np
import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.mixed import MixedTraffic
from repro.attacks.suite import WORKLOAD_NAMES, workload
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import ZipfWorkload


class TestMixedProfile:
    def test_degenerate_shares(self):
        mix0 = MixedTraffic(UniformAddressAttack(), ZipfWorkload(), attack_share=0.0)
        assert mix0.profile(16).kind == "skewed"  # pure background
        mix1 = MixedTraffic(UniformAddressAttack(), ZipfWorkload(), attack_share=1.0)
        assert mix1.profile(16).kind == "uniform"  # pure attack

    def test_uniform_plus_uniform_is_uniform(self):
        mix = MixedTraffic(
            UniformAddressAttack(), UniformAddressAttack(), attack_share=0.3
        )
        assert mix.profile(16).kind == "uniform"

    def test_concentrated_component_scales_hot_fraction(self):
        mix = MixedTraffic(
            BirthdayParadoxAttack(), UniformAddressAttack(), attack_share=0.25
        )
        profile = mix.profile(16)
        assert profile.kind == "concentrated"
        assert profile.hot_fraction == pytest.approx(0.25)

    def test_skewed_mixture_rates_are_convex(self):
        zipf = ZipfWorkload(exponent=1.0)
        mix = MixedTraffic(UniformAddressAttack(), zipf, attack_share=0.5)
        rates = mix.profile(8).logical_rates(8)
        expected = 0.5 * np.full(8, 1 / 8) + 0.5 * zipf.profile(8).logical_rates(8)
        np.testing.assert_allclose(rates, expected)

    def test_share_bounds(self):
        with pytest.raises(ValueError):
            MixedTraffic(UniformAddressAttack(), ZipfWorkload(), attack_share=1.5)


class TestMixedStream:
    def test_interleaving_ratio(self):
        # Attack = sweep over [0, N); background = constant address 0.
        from repro.attacks.repeated import RepeatedAddressAttack

        mix = MixedTraffic(
            UniformAddressAttack(random_data=False),
            RepeatedAddressAttack(target=0),
            attack_share=0.75,
        )
        addresses = [
            r.address for r in itertools.islice(mix.stream(1 << 20, rng=1), 4000)
        ]
        background_hits = sum(1 for a in addresses if a == 0)
        # ~25% background plus the sweep's rare own zeros.
        assert 800 < background_hits < 1200

    def test_deterministic(self):
        mix = MixedTraffic(UniformAddressAttack(random_data=False), ZipfWorkload(), 0.5)
        a = [r.address for r in itertools.islice(mix.stream(64, rng=7), 64)]
        b = [r.address for r in itertools.islice(mix.stream(64, rng=7), 64)]
        assert a == b

    def test_describe_mentions_both(self):
        mix = MixedTraffic(UniformAddressAttack(), ZipfWorkload(), 0.3)
        text = mix.describe()
        assert "30%" in text and "Zipf" in text


class TestWorkloadSuite:
    def test_all_names_instantiate(self):
        for name in WORKLOAD_NAMES:
            model = workload(name)
            profile = model.profile(256)
            assert profile.kind in ("uniform", "concentrated", "skewed")

    def test_suite_covers_the_locality_spectrum(self):
        kinds = {name: workload(name).profile(256).kind for name in WORKLOAD_NAMES}
        assert kinds["streaming"] == "uniform"
        assert kinds["journaling"] == "concentrated"
        assert kinds["web-cache"] == "skewed"

    def test_streams_produce_addresses(self):
        for name in WORKLOAD_NAMES:
            stream = workload(name).stream(256, rng=1)
            addresses = [r.address for r in itertools.islice(stream, 64)]
            assert all(0 <= a < 256 for a in addresses)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload("bitcoin-mining")

    def test_database_hot_set_hotter_than_scientific(self):
        """The database archetype concentrates far more mass in its top
        5% of lines than the mild-Zipf scientific archetype."""
        database = workload("database").profile(1000).logical_rates(1000)
        scientific = workload("scientific").profile(1000).logical_rates(1000)
        top = 50
        assert np.sort(database)[::-1][:top].sum() > 2 * np.sort(scientific)[::-1][:top].sum()
