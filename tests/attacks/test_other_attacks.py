"""Tests for repeated-address, pattern, and workload generators."""

import itertools
from collections import Counter

import pytest

from repro.attacks.patterns import (
    PATTERN_5555,
    PATTERN_ZERO,
    FlipNWriteDefeatAttack,
    IncompressibleDataAttack,
)
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.workloads import HotColdWorkload, ZipfWorkload


class TestRepeatedAddress:
    def test_stream_is_constant(self):
        attack = RepeatedAddressAttack(target=3)
        addresses = {r.address for r in itertools.islice(attack.stream(8), 32)}
        assert addresses == {3}

    def test_target_outside_space_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            next(iter(RepeatedAddressAttack(target=8).stream(8)))

    def test_profile_concentrated(self):
        assert RepeatedAddressAttack().profile(8).kind == "concentrated"

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            RepeatedAddressAttack(target=-1)


class TestFlipNWriteDefeat:
    def test_alternating_patterns(self):
        attack = FlipNWriteDefeatAttack()
        data = [r.data for r in itertools.islice(attack.stream(4), 6)]
        assert data == [
            PATTERN_ZERO,
            PATTERN_5555,
            PATTERN_ZERO,
            PATTERN_5555,
            PATTERN_ZERO,
            PATTERN_5555,
        ]

    def test_single_address(self):
        attack = FlipNWriteDefeatAttack(target=2)
        addresses = {r.address for r in itertools.islice(attack.stream(4), 16)}
        assert addresses == {2}

    def test_half_the_bits_differ(self):
        assert (PATTERN_ZERO ^ PATTERN_5555).bit_count() == 32


class TestIncompressible:
    def test_uniform_sweep_with_payloads(self):
        attack = IncompressibleDataAttack()
        requests = list(itertools.islice(attack.stream(4, rng=1), 8))
        assert [r.address for r in requests] == [0, 1, 2, 3, 0, 1, 2, 3]
        assert all(r.data is not None for r in requests)

    def test_profile_uniform(self):
        assert IncompressibleDataAttack().profile(8).kind == "uniform"


class TestZipf:
    def test_profile_weights_decay(self):
        profile = ZipfWorkload(exponent=1.0).profile(16)
        assert profile.kind == "skewed"
        rates = profile.logical_rates(16)
        assert rates[0] > rates[1] > rates[15]

    def test_stream_skew(self):
        workload = ZipfWorkload(exponent=1.2, shuffle=False)
        addresses = [r.address for r in itertools.islice(workload.stream(64, rng=1), 8192)]
        counts = Counter(addresses)
        assert counts[0] > counts[32] if 32 in counts else True
        assert counts.most_common(1)[0][1] > 8192 / 64 * 3

    def test_invalid_exponent(self):
        with pytest.raises(ValueError):
            ZipfWorkload(exponent=0.0)


class TestHotCold:
    def test_profile_mass_split(self):
        workload = HotColdWorkload(hot_fraction_of_lines=0.1, hot_fraction_of_writes=0.9)
        rates = workload.profile(100).logical_rates(100)
        assert rates[:10].sum() == pytest.approx(0.9)
        assert rates[10:].sum() == pytest.approx(0.1)

    def test_stream_respects_split(self):
        workload = HotColdWorkload()
        addresses = [r.address for r in itertools.islice(workload.stream(100, rng=2), 10000)]
        hot_hits = sum(1 for address in addresses if address < 10)
        assert 8700 < hot_hits < 9300

    def test_extreme_fractions_rejected(self):
        with pytest.raises(ValueError):
            HotColdWorkload(hot_fraction_of_lines=0.0)
        with pytest.raises(ValueError):
            HotColdWorkload(hot_fraction_of_writes=1.0)
