"""Tests for the crossover and design-point solvers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.crossovers import (
    break_even_q,
    maxwe_advantage_peak,
    q_where_variation_helps_maxwe,
    spare_fraction_for_target,
)
from repro.analysis.lifetime import (
    maxwe_normalized,
    pcd_ps_normalized,
    ps_worst_normalized,
    uaa_fraction,
)


class TestBreakEvenQ:
    def test_paper_operating_point(self):
        # p = 0.1: q* = 1 + 1/0.9 ~ 2.11.
        assert break_even_q(0.1) == pytest.approx(2.111, abs=0.001)

    @given(st.floats(min_value=0.01, max_value=0.9))
    @settings(max_examples=50)
    def test_break_even_is_exact(self, p):
        q_star = break_even_q(p)
        # At q*, PS-worst exactly matches no protection...
        assert ps_worst_normalized(p, q_star) == pytest.approx(
            uaa_fraction(q_star), rel=1e-9
        )
        # ...above it sparing wins, below it loses.
        assert ps_worst_normalized(p, q_star * 1.2) > uaa_fraction(q_star * 1.2)
        assert ps_worst_normalized(p, 1.0 + 0.5 * (q_star - 1.0)) < uaa_fraction(
            1.0 + 0.5 * (q_star - 1.0)
        )

    def test_bounds(self):
        with pytest.raises(ValueError):
            break_even_q(0.0)
        with pytest.raises(ValueError):
            break_even_q(1.0)


class TestSpareFractionForTarget:
    def test_paper_point_inverts(self):
        """Eq. 6 gives 38.1% at p = 0.1, q = 50; the inverse recovers p."""
        p = spare_fraction_for_target(0.381, 50.0)
        assert p == pytest.approx(0.1, abs=0.002)

    @given(
        st.floats(min_value=0.05, max_value=0.6),
        st.floats(min_value=5.0, max_value=200.0),
    )
    @settings(max_examples=50)
    def test_round_trip(self, target, q):
        try:
            p = spare_fraction_for_target(target, q)
        except ValueError:
            return  # unreachable target at this q: legitimate
        if p == 0.0:
            # Target already met without spares.
            assert maxwe_normalized(0.0, q) >= target
        else:
            assert maxwe_normalized(p, q) == pytest.approx(target, abs=1e-6)

    def test_already_met_target_needs_no_spares(self):
        assert spare_fraction_for_target(0.1, 5.0) == 0.0

    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError, match="unreachable"):
            spare_fraction_for_target(0.99, 5.0)

    def test_more_ambitious_targets_need_more_spares(self):
        cheap = spare_fraction_for_target(0.2, 50.0)
        expensive = spare_fraction_for_target(0.5, 50.0)
        assert expensive > cheap


class TestAdvantagePeak:
    def test_peak_is_interior_and_positive(self):
        p_peak, margin = maxwe_advantage_peak(50.0)
        assert 0.0 < p_peak < 0.5
        assert margin > 0.1

    def test_peak_beats_neighbours(self):
        p_peak, margin = maxwe_advantage_peak(50.0)
        for p in (p_peak * 0.5, min(p_peak * 1.5, 0.5)):
            neighbour = maxwe_normalized(p, 50.0) - pcd_ps_normalized(p, 50.0)
            assert margin >= neighbour - 1e-9

    def test_paper_operating_point_near_peak_regime(self):
        """The paper's 10% sits inside the high-margin band: the margin at
        p = 0.1 is more than half the peak margin."""
        p_peak, margin = maxwe_advantage_peak(50.0)
        at_paper = maxwe_normalized(0.1, 50.0) - pcd_ps_normalized(0.1, 50.0)
        assert at_paper > 0.5 * margin


class TestVariationThreshold:
    def test_threshold_value(self):
        assert q_where_variation_helps_maxwe() == 0.25

    @pytest.mark.parametrize("p,increasing", [(0.1, False), (0.3, True)])
    def test_numeric_derivative_sign(self, p, increasing):
        low = maxwe_normalized(p, 40.0)
        high = maxwe_normalized(p, 60.0)
        assert (high > low) == increasing
