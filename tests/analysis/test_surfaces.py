"""Tests for the Figure 5 lifetime surface."""

import numpy as np
import pytest

from repro.analysis.surfaces import lifetime_surface


class TestDefaultGrid:
    @pytest.fixture
    def surface(self):
        return lifetime_surface()

    def test_grid_covers_paper_ranges(self, surface):
        assert surface.p_values[0] == pytest.approx(0.1)
        assert surface.p_values[-1] == pytest.approx(0.3)
        assert surface.q_values[0] == 10.0
        assert surface.q_values[-1] == 100.0

    def test_maxwe_dominates_everywhere(self, surface):
        """The paper: 'Max-WE always outperforms both PCD/PS and PS-worst'."""
        assert surface.maxwe_dominates()

    def test_spot_values_at_p01_q50(self, surface):
        values = surface.at(0.1, 50.0)
        assert values["max-we"] == pytest.approx(0.381, abs=0.001)
        assert values["pcd-ps"] == pytest.approx(0.222, abs=0.001)
        assert values["ps-worst"] == pytest.approx(0.208, abs=0.001)

    def test_lifetime_rises_with_spares(self, surface):
        # For fixed q, more spares -> more lifetime, all three schemes.
        for grid in (surface.maxwe, surface.pcd_ps, surface.ps_worst):
            assert np.all(np.diff(grid, axis=0) > 0)

    def test_variation_trend_flips_at_p_quarter(self):
        """d(Eq.6 normalized)/dq has the sign of 4p - 1: below 25% spares
        more variation hurts, above it the weak-strong rescue gains more
        from the spread than the ideal baseline does."""
        small_p = lifetime_surface(p_values=[0.1], q_values=[10.0, 50.0, 100.0])
        large_p = lifetime_surface(p_values=[0.3], q_values=[10.0, 50.0, 100.0])
        assert np.all(np.diff(small_p.maxwe, axis=1) < 0)
        assert np.all(np.diff(large_p.maxwe, axis=1) > 0)

    def test_baselines_fall_with_variation(self, surface):
        # PS-worst (p <= 0.3 < 1/2 analogue) decreases in q on the grid.
        assert np.all(np.diff(surface.ps_worst, axis=1) < 0)

    def test_missing_grid_point_rejected(self, surface):
        with pytest.raises(KeyError):
            surface.at(0.11, 50.0)


class TestCustomGrid:
    def test_custom_axes(self):
        surface = lifetime_surface(p_values=[0.2], q_values=[25.0, 75.0])
        assert surface.maxwe.shape == (1, 2)

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            lifetime_surface(p_values=[], q_values=[10.0])
