"""Tests for the offline-optimal oracle bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.oracle import (
    fractional_oracle_lifetime,
    greedy_oracle_lifetime,
)
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime


def tiny_map(values):
    return EnduranceMap(np.asarray(values, dtype=float), regions=len(values))


class TestFractionalOracle:
    def test_no_spares_is_weakest_line(self):
        emap = tiny_map([1.0, 2.0, 4.0, 8.0])
        # w* = min endurance; normalized = N*e_min / sum.
        assert fractional_oracle_lifetime(emap, 0.0) == pytest.approx(
            4 * 1.0 / 15.0, abs=1e-6
        )

    def test_uniform_map_pools_everything(self):
        # 8 lines of 5.0, 2 spares: at w > 5 every line contributes its
        # full 5 (workers as base, spares as excess), so feasibility caps
        # at 6w = 40 -> w = 6.67 and the normalized lifetime is exactly 1.
        emap = tiny_map([5.0] * 8)
        assert fractional_oracle_lifetime(emap, 0.25) == pytest.approx(1.0, abs=1e-3)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            fractional_oracle_lifetime(tiny_map([1.0, 2.0]), 1.0)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=100.0), min_size=4, max_size=24),
        st.floats(min_value=0.0, max_value=0.5),
    )
    @settings(max_examples=40, deadline=None)
    def test_dominates_greedy(self, values, p):
        emap = tiny_map(values)
        frac = fractional_oracle_lifetime(emap, p)
        for selection in ("weakest", "strongest"):
            greedy = greedy_oracle_lifetime(emap, p, spare_selection=selection)
            assert frac >= greedy - 1e-6


class TestGreedyOracle:
    def test_hand_checked_example(self):
        # Lines 1,2,10,10; one spare. Weakest pool = {1}; workers 2,10,10.
        # w=3: deficit 1 covered by spare 1 -> feasible. w=3+eps: deficit
        # 1+eps > 1 -> infeasible. So w*=3, L = 3*3/23.
        emap = tiny_map([1.0, 2.0, 10.0, 10.0])
        assert greedy_oracle_lifetime(emap, 0.25) == pytest.approx(
            9.0 / 23.0, abs=1e-6
        )

    def test_strongest_pool_strands_weak_workers(self):
        # Pool = {10}; workers 1,2,10: w* limited by worker 1 + spare 10 ->
        # chains: deficit of worker 1 covered by 10: w <= 11, but worker 2
        # has deficit w-2 and no spare left -> w <= 2. L = 3*2/23.
        emap = tiny_map([1.0, 2.0, 10.0, 10.0])
        assert greedy_oracle_lifetime(
            emap, 0.25, spare_selection="strongest"
        ) == pytest.approx(6.0 / 23.0, abs=1e-6)

    def test_invalid_selection(self):
        with pytest.raises(ValueError, match="spare_selection"):
            greedy_oracle_lifetime(tiny_map([1.0, 2.0]), 0.5, spare_selection="random")

    @given(
        st.lists(st.floats(min_value=1.0, max_value=50.0), min_size=6, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_weak_pool_beats_strong_pool_integrally(self, values):
        """The integral inversion: weak-priority pooling dominates."""
        emap = tiny_map(values)
        weak = greedy_oracle_lifetime(emap, 0.2, spare_selection="weakest")
        strong = greedy_oracle_lifetime(emap, 0.2, spare_selection="strongest")
        assert weak >= strong - 1e-6


class TestMaxWEOptimality:
    def test_maxwe_achieves_the_integral_oracle(self):
        """Max-WE's simulated UAA lifetime equals the clairvoyant integral
        optimum for the weak-priority pool -- its allocation leaves nothing
        on the table within its constraint class."""
        config = ExperimentConfig()
        emap = config.make_emap()
        oracle = greedy_oracle_lifetime(emap, 0.1, spare_selection="weakest")
        simulated = simulate_lifetime(
            emap, UniformAddressAttack(), MaxWE(0.1, 0.9), rng=config.seed
        ).normalized_lifetime
        assert simulated == pytest.approx(oracle, rel=0.02)

    def test_linear_model_oracle_matches_eq6_regime(self):
        model = LinearEnduranceModel.from_q(50.0, e_low=10.0)
        emap = linear_endurance_map(2048, 512, model, rng=1)
        oracle = greedy_oracle_lifetime(emap, 0.1)
        from repro.analysis.lifetime import maxwe_normalized

        assert oracle == pytest.approx(maxwe_normalized(0.1, 50.0), rel=0.03)
