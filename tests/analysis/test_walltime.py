"""Tests for wall-clock lifetime conversion."""

import pytest

from repro.analysis.walltime import (
    DAY,
    HOUR,
    MINUTE,
    YEAR,
    WriteBandwidth,
    device_lifetime_seconds,
    format_duration,
)
from repro.device.geometry import DeviceGeometry


class TestWriteBandwidth:
    def test_line_writes_per_second(self):
        bandwidth = WriteBandwidth(bytes_per_second=6.4e9, line_bytes=64)
        assert bandwidth.line_writes_per_second == pytest.approx(1e8)

    def test_round_trip(self):
        bandwidth = WriteBandwidth.ddr4_channel()
        writes = 1e9
        assert bandwidth.writes_for_seconds(
            bandwidth.seconds_for_writes(writes)
        ) == pytest.approx(writes)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            WriteBandwidth(bytes_per_second=0.0)
        with pytest.raises(ValueError):
            WriteBandwidth.ddr4_channel().seconds_for_writes(-1.0)


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (5.0, "5.0 seconds"),
            (3 * MINUTE, "3.0 minutes"),
            (2 * HOUR, "2.0 hours"),
            (3 * DAY, "3.0 days"),
            (2 * YEAR, "2.0 years"),
        ],
    )
    def test_units(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_duration(-1.0)


class TestDeviceLifetime:
    def test_paper_urgency_claim(self):
        """A weak line's death arrives within a minute of saturated attack:
        the unprotected UAA lifetime of a 1 GB bank with ~1e5 mean writes
        and 4% normalized lifetime is under a minute at DDR4 speed."""
        geometry = DeviceGeometry.paper_bank()
        seconds = device_lifetime_seconds(
            geometry, normalized_lifetime=0.04, mean_endurance=1e5
        )
        assert seconds < MINUTE * 10

    def test_maxwe_buys_an_order_of_magnitude(self):
        geometry = DeviceGeometry.paper_bank()
        unprotected = device_lifetime_seconds(geometry, 0.039, 1e7)
        protected = device_lifetime_seconds(geometry, 0.381, 1e7)
        assert protected / unprotected == pytest.approx(0.381 / 0.039, rel=1e-9)

    def test_realistic_endurance_days_vs_months(self):
        """With nominal 1e8 endurance, a saturated DDR4 channel kills the
        unprotected 1 GB bank in a few days; Max-WE stretches that to
        over a month of continuous attack."""
        geometry = DeviceGeometry.paper_bank()
        unprotected = device_lifetime_seconds(geometry, 0.039, 1e8)
        protected = device_lifetime_seconds(geometry, 0.381, 1e8)
        assert unprotected < 5 * DAY
        assert protected > 30 * DAY

    def test_validation(self):
        geometry = DeviceGeometry.paper_bank()
        with pytest.raises(ValueError):
            device_lifetime_seconds(geometry, 1.5, 1e8)
        with pytest.raises(ValueError):
            device_lifetime_seconds(geometry, 0.5, 0.0)
