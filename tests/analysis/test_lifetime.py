"""Tests for the closed-form lifetime equations (Eq. 3-8)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.lifetime import (
    ideal_lifetime,
    maxwe_lifetime,
    maxwe_normalized,
    pcd_ps_lifetime,
    pcd_ps_normalized,
    ps_worst_lifetime,
    ps_worst_normalized,
    uaa_fraction,
    uaa_lifetime,
)
from repro.endurance.linear import LinearEnduranceModel


class TestPaperSpotValues:
    """Section 4.3: 'Assuming p = 0.1 and q = 50, Max-WE, PCD/PS and
    PS-worst can achieve 38.1%, 22.2% and 20.8% of the ideal lifetime.'"""

    def test_maxwe_381_percent(self):
        assert maxwe_normalized(0.1, 50.0) == pytest.approx(0.381, abs=0.001)

    def test_pcd_ps_222_percent(self):
        assert pcd_ps_normalized(0.1, 50.0) == pytest.approx(0.222, abs=0.001)

    def test_ps_worst_208_percent(self):
        assert ps_worst_normalized(0.1, 50.0) == pytest.approx(0.208, abs=0.001)

    def test_uaa_39_percent(self):
        assert uaa_fraction(50.0) == pytest.approx(0.039, abs=0.001)


class TestAbsoluteForms:
    @pytest.fixture
    def model(self):
        return LinearEnduranceModel.from_q(50.0, e_low=10.0)

    def test_eq3(self, model):
        assert ideal_lifetime(model, 100) == pytest.approx(
            100 * (500 - 10) / 2 + 100 * 10
        )

    def test_eq4(self, model):
        assert uaa_lifetime(model, 100) == pytest.approx(1000.0)

    def test_eq6(self, model):
        expected = 90 * (10 + 2 * 10 * 490 / 100)
        assert maxwe_lifetime(model, 100, 10) == pytest.approx(expected)

    def test_eq7(self, model):
        expected = 10 * 95 * 490 / 100 + 100 * 10
        assert pcd_ps_lifetime(model, 100, 10) == pytest.approx(expected)

    def test_eq8(self, model):
        expected = 90 * (10 + 10 * 490 / 100)
        assert ps_worst_lifetime(model, 100, 10) == pytest.approx(expected)

    def test_spare_bounds(self, model):
        with pytest.raises(ValueError):
            maxwe_lifetime(model, 100, 100)
        with pytest.raises(ValueError):
            pcd_ps_lifetime(model, 100, -1)


class TestNormalizedConsistency:
    """The (p, q) forms must equal the absolute forms divided by Eq. 3."""

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=1.0, max_value=200.0),
    )
    def test_maxwe(self, p, q):
        model = LinearEnduranceModel.from_q(q)
        lines, spares = 10_000, int(p * 10_000)
        p_exact = spares / lines
        expected = maxwe_lifetime(model, lines, spares) / ideal_lifetime(model, lines)
        assert maxwe_normalized(p_exact, q) == pytest.approx(expected, rel=1e-9)

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=1.0, max_value=200.0),
    )
    def test_pcd(self, p, q):
        model = LinearEnduranceModel.from_q(q)
        lines, spares = 10_000, int(p * 10_000)
        p_exact = spares / lines
        expected = pcd_ps_lifetime(model, lines, spares) / ideal_lifetime(model, lines)
        assert pcd_ps_normalized(p_exact, q) == pytest.approx(expected, rel=1e-9)

    @given(
        st.floats(min_value=0.01, max_value=0.5),
        st.floats(min_value=1.0, max_value=200.0),
    )
    def test_ps_worst(self, p, q):
        model = LinearEnduranceModel.from_q(q)
        lines, spares = 10_000, int(p * 10_000)
        p_exact = spares / lines
        expected = ps_worst_lifetime(model, lines, spares) / ideal_lifetime(model, lines)
        assert ps_worst_normalized(p_exact, q) == pytest.approx(expected, rel=1e-9)


class TestStructuralProperties:
    @given(
        st.floats(min_value=0.1, max_value=0.3),
        st.floats(min_value=10.0, max_value=100.0),
    )
    def test_maxwe_dominates_baselines_on_fig5_range(self, p, q):
        """Figure 5's claim holds on its own (p, q) range; outside it (tiny
        q, huge p) PCD can edge ahead, which is why the paper scopes the
        figure to 0.1 <= p <= 0.3 and 10 <= q <= 100."""
        assert maxwe_normalized(p, q) >= ps_worst_normalized(p, q) - 1e-12
        assert maxwe_normalized(p, q) >= pcd_ps_normalized(p, q) - 1e-12

    @given(st.floats(min_value=3.0, max_value=500.0))
    def test_all_schemes_beat_no_protection_with_real_variation(self, q):
        """Sparing breaks even at (q - 1)(1 - p) >= 1 (about q = 2.1 for
        p = 0.1); above that every scheme beats no protection."""
        base = uaa_fraction(q)
        for fn in (maxwe_normalized, pcd_ps_normalized, ps_worst_normalized):
            assert fn(0.1, q) >= base - 1e-12

    def test_sparing_wastes_capacity_without_variation(self):
        """At q = 1 every line is equal, UAA is already ideal, and holding
        back spares strictly loses lifetime -- sparing only pays when
        there is variation to exploit."""
        assert uaa_fraction(1.0) == pytest.approx(1.0)
        assert maxwe_normalized(0.1, 1.0) == pytest.approx(0.9)
        assert ps_worst_normalized(0.1, 1.0) == pytest.approx(0.9)

    def test_q_validation(self):
        with pytest.raises(ValueError):
            uaa_fraction(0.5)
        with pytest.raises(ValueError):
            maxwe_normalized(0.1, 0.5)
        with pytest.raises(ValueError):
            maxwe_normalized(1.0, 50.0)
