"""Tests for the fabric wire layer: framing, channel faults, one-shots."""

import socket
import threading

import pytest

from repro.fabric.wire import (
    MAX_FRAME_BYTES,
    Channel,
    ChannelClosed,
    FrameError,
    one_shot_request,
    recv_frame,
    send_frame,
)
from repro.sim.faults import FAULT_SPEC_ENV, install


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


def socket_pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = socket_pair()
        try:
            send_frame(a, {"type": "fetch", "worker": "w0", "blob": b"\x00" * 100})
            message = recv_frame(b)
            assert message == {
                "type": "fetch",
                "worker": "w0",
                "blob": b"\x00" * 100,
            }
        finally:
            a.close()
            b.close()

    def test_multiple_frames_stay_aligned(self):
        a, b = socket_pair()
        try:
            for seq in range(5):
                send_frame(a, {"seq": seq})
            for seq in range(5):
                assert recv_frame(b) == {"seq": seq}
        finally:
            a.close()
            b.close()

    def test_clean_eof_is_none(self):
        a, b = socket_pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = socket_pair()
        try:
            # A header promising bytes that never arrive.
            a.sendall((1000).to_bytes(4, "big") + b"partial")
            a.close()
            with pytest.raises(FrameError, match="mid-frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_inbound_frame_is_rejected_before_allocation(self):
        a, b = socket_pair()
        try:
            a.sendall((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            with pytest.raises(FrameError, match="wire limit"):
                recv_frame(b)
        finally:
            a.close()
            b.close()


def echo_server():
    """A tiny coordinator stand-in answering every frame with an ack."""
    listener = socket.create_server(("127.0.0.1", 0))

    def serve():
        conn, _ = listener.accept()
        with conn:
            while True:
                message = recv_frame(conn)
                if message is None:
                    return
                send_frame(conn, {"type": "ack", "echo": message})

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    return listener


class TestChannel:
    def test_request_reply(self):
        listener = echo_server()
        try:
            channel = Channel(listener.getsockname()[:2], name="worker-test")
            reply = channel.request({"type": "fetch", "worker": "t"})
            assert reply["type"] == "ack"
            assert reply["echo"]["worker"] == "t"
            channel.close()
        finally:
            listener.close()

    def test_closed_peer_raises_channel_closed(self):
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()[:2]

        def slam():
            conn, _ = listener.accept()
            conn.close()

        threading.Thread(target=slam, daemon=True).start()
        try:
            channel = Channel(address, name="worker-test")
            with pytest.raises(ChannelClosed):
                channel.request({"type": "fetch"})
        finally:
            listener.close()

    def test_dropped_requests_retransmit_until_delivered(self):
        """drop=0.5: some sends are swallowed, but the channel keeps
        retransmitting under fresh sequence numbers until one lands --
        every request eventually gets its reply (at-least-once)."""
        install("drop=0.5,seed=11")
        listener = echo_server()
        try:
            channel = Channel(listener.getsockname()[:2], name="worker-droppy")
            replies = [channel.request({"seq": seq}) for seq in range(10)]
            assert [reply["echo"]["seq"] for reply in replies] == list(range(10))
            channel.close()
        finally:
            listener.close()

    def test_duplicated_requests_stay_aligned(self):
        """duplicate=1.0: every frame is sent twice; the channel discards
        the extra reply so the request/reply stream never skews."""
        install("duplicate=1.0,seed=11")
        listener = echo_server()
        try:
            channel = Channel(listener.getsockname()[:2], name="worker-dup")
            for seq in range(5):
                assert channel.request({"seq": seq})["echo"]["seq"] == seq
            channel.close()
        finally:
            listener.close()


class TestOneShot:
    def test_round_trip(self):
        listener = echo_server()
        try:
            reply = one_shot_request(
                listener.getsockname()[:2], {"type": "heartbeat"}
            )
            assert reply is not None and reply["type"] == "ack"
        finally:
            listener.close()

    def test_dead_coordinator_returns_none(self):
        listener = socket.create_server(("127.0.0.1", 0))
        address = listener.getsockname()[:2]
        listener.close()
        assert one_shot_request(address, {"type": "heartbeat"}, timeout=0.5) is None
