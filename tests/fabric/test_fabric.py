"""End-to-end tests for the multi-host sweep fabric.

The backbone assertion, inherited from the process pool and restated
here for the fabric: any sweep -- clean or under heavy injected chaos
(crashes, hangs, dropped / duplicated / delayed messages, partitions,
slow workers, expired leases) -- converges bit-identical to a
fault-free serial run of the same tasks.
"""

import numpy as np
import pytest

from repro.fabric.backend import DEFAULT_LEASE_TTL, FabricBackend
from repro.fabric.coordinator import (
    Coordinator,
    CoordinatorLedger,
    RemoteTaskError,
)
from repro.fabric.wire import Channel
from repro.obs.metrics import MetricsRegistry
from repro.sim.cache import ResultCache
from repro.sim.config import ExperimentConfig
from repro.sim.executor import ExecutorBackend, SupervisedTask
from repro.sim.faults import FAULT_SPEC_ENV, install
from repro.sim.resilience import Checkpoint, ResiliencePolicy, is_retryable
from repro.sim.runner import (
    ProcessPoolBackend,
    SimRunner,
    SimTask,
    resolve_backend,
    task_identity,
)
from repro.util.events import EventLog

TINY = ExperimentConfig(regions=32, lines_per_region=2, seed=7)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


def make_tasks(count, config=TINY):
    fractions = np.linspace(0.01, 0.5, count)
    return [
        SimTask(
            attack="uaa",
            sparing="max-we",
            p=float(fraction),
            swr=0.9,
            config=config,
            label=f"task-{index}",
        )
        for index, fraction in enumerate(fractions)
    ]


def lifetimes(results):
    return [result.normalized_lifetime for result in results]


class TestBackendResolution:
    def test_default_and_pool_names(self):
        assert resolve_backend(None).name == "pool"
        assert resolve_backend("pool").name == "pool"

    def test_fabric_by_name_with_overrides(self):
        backend = resolve_backend("fabric", workers=3, lease_ttl=2.5)
        assert isinstance(backend, FabricBackend)
        assert backend.name == "fabric"
        assert backend.lease_ttl == 2.5

    def test_instance_passthrough(self):
        backend = FabricBackend(workers=2)
        assert resolve_backend(backend) is backend

    def test_instance_rejects_overrides(self):
        with pytest.raises(ValueError, match="workers/lease_ttl"):
            resolve_backend(FabricBackend(), workers=2)

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("carrier-pigeon")

    def test_fabric_validates_parameters(self):
        with pytest.raises(ValueError, match="workers"):
            FabricBackend(workers=0)
        with pytest.raises(ValueError, match="lease_ttl"):
            FabricBackend(lease_ttl=0.0)
        assert FabricBackend().lease_ttl == DEFAULT_LEASE_TTL

    def test_backends_implement_the_executor_protocol(self):
        assert isinstance(ProcessPoolBackend(), ExecutorBackend)
        assert isinstance(FabricBackend(), ExecutorBackend)


class TestCleanFabricRun:
    def test_matches_serial_bit_identically(self):
        tasks = make_tasks(8)
        serial = SimRunner().run(tasks)

        metrics = MetricsRegistry()
        results, stats = SimRunner(
            backend=FabricBackend(workers=2, lease_ttl=5.0), metrics=metrics
        ).run_detailed(tasks)
        assert lifetimes(results) == lifetimes(serial)
        assert not stats.failures
        assert stats.backend == "fabric"
        assert not stats.degraded
        assert metrics.counter("fabric.leases_granted") >= len(tasks)
        assert metrics.gauge_value("fabric.workers") == 2

    def test_pool_stats_name_unchanged(self):
        _, stats = SimRunner().run_detailed(make_tasks(2))
        assert stats.backend == "pool"
        assert not stats.degraded


class TestIdempotentCommits:
    """Satellite: duplicated result commits must land exactly once."""

    def _coordinator(self, tasks):
        pending = []
        for index, task in enumerate(tasks):
            key, label = task_identity(task)
            pending.append(
                SupervisedTask(index=index, task=task, key=key, label=label)
            )
        metrics = MetricsRegistry()
        coordinator = Coordinator(
            pending,
            lease_ttl=30.0,
            metrics=metrics,
            events=EventLog(),
        )
        return coordinator, metrics

    def test_second_commit_for_a_key_is_rejected_and_counted(self):
        from repro.sim.runner import _execute_supervised

        tasks = make_tasks(1)
        coordinator, metrics = self._coordinator(tasks)
        try:
            a = Channel(coordinator.address, name="worker-a")
            b = Channel(coordinator.address, name="worker-b")
            grant = a.request({"type": "fetch", "worker": "a"})
            assert grant["type"] == "task"
            report = _execute_supervised(
                grant["task"], grant["key"], grant["attempt"]
            )
            commit = {
                "type": "commit",
                "lease": grant["lease"],
                "key": grant["key"],
                "report": report,
            }
            first = a.request(dict(commit, worker="a"))
            second = b.request(dict(commit, worker="b"))
            assert first["accepted"] is True
            assert second["accepted"] is False
            assert metrics.counter("fabric.duplicate_commits") == 1
            # Exactly one completion reaches the supervisor.
            assert coordinator.outbox.get(timeout=1.0)[0] == "complete"
            assert coordinator.outbox.empty()
            a.close()
            b.close()
        finally:
            coordinator.request_shutdown()
            coordinator.close()

    def test_duplicated_commits_yield_one_cache_entry_and_one_ledger_row(
        self, tmp_path, monkeypatch
    ):
        """duplicate=1.0: every wire frame -- commits included -- is sent
        twice, and every worker journals to its own shard.  After the
        merge the primary ledger holds exactly one row per task, the
        cache exactly one entry, and the results are bit-identical to a
        clean serial run."""
        tasks = make_tasks(6)
        serial = SimRunner().run(tasks)

        monkeypatch.setenv(FAULT_SPEC_ENV, "duplicate=1.0,seed=5")
        metrics = MetricsRegistry()
        cache = ResultCache(tmp_path / "cache")
        journal_path = tmp_path / "run.jsonl"
        results, stats = SimRunner(
            backend=FabricBackend(workers=2, lease_ttl=5.0),
            cache=cache,
            checkpoint=Checkpoint(journal_path),
            metrics=metrics,
        ).run_detailed(tasks)

        assert lifetimes(results) == lifetimes(serial)
        assert not stats.failures
        assert metrics.counter("fabric.duplicate_commits") >= 1
        # header + exactly one record per task, despite every commit
        # arriving (at least) twice and shard ledgers merging on top.
        assert len(journal_path.read_text().splitlines()) == len(tasks) + 1
        assert not list(tmp_path.glob("run.jsonl.shard-*"))  # absorbed
        # Exactly one cache entry per task: warm rerun is all hits.
        warm_cache = ResultCache(tmp_path / "cache")
        warm = SimRunner(cache=warm_cache).run(tasks)
        assert lifetimes(warm) == lifetimes(serial)
        assert warm_cache.stats.hits == len(tasks)
        assert warm_cache.stats.misses == 0


class TestLeaseExpiry:
    def test_partitioned_workers_expire_leases_and_still_converge(
        self, monkeypatch
    ):
        """partition=1.0: every lease goes silent, expires, and requeues;
        the deferred commits arrive late and are either absorbed
        (duplicate) or binding (heal).  The sweep still converges
        bit-identical with zero failures."""
        tasks = make_tasks(4)
        serial = SimRunner().run(tasks)

        monkeypatch.setenv(
            FAULT_SPEC_ENV, "partition=1.0,partition-seconds=0.6,seed=3"
        )
        metrics = MetricsRegistry()
        results, stats = SimRunner(
            backend=FabricBackend(workers=2, lease_ttl=0.2),
            policy=ResiliencePolicy(
                timeout=30.0, retries=6, backoff=0.01, backoff_cap=0.05
            ),
            metrics=metrics,
        ).run_detailed(tasks)
        assert lifetimes(results) == lifetimes(serial)
        assert not stats.failures
        assert metrics.counter("fabric.leases_expired") >= 1
        assert metrics.counter("fabric.requeues") >= 1
        assert metrics.counter("fabric.late_commits") >= 1


class TestGracefulDegradation:
    def test_run_completes_on_survivors_without_respawn(self, monkeypatch):
        """respawn=False models remote hosts the coordinator cannot
        resurrect: crash faults permanently shrink the fleet, yet the
        sweep completes (down to the in-process serial fallback if every
        worker dies) and reports itself degraded, not failed."""
        tasks = make_tasks(10)
        serial = SimRunner().run(tasks)

        monkeypatch.setenv(FAULT_SPEC_ENV, "crash=0.4,seed=13")
        metrics = MetricsRegistry()
        results, stats = SimRunner(
            backend=FabricBackend(workers=2, lease_ttl=1.0, respawn=False),
            policy=ResiliencePolicy(
                timeout=30.0, retries=8, backoff=0.01, backoff_cap=0.05
            ),
            metrics=metrics,
        ).run_detailed(tasks)
        assert lifetimes(results) == lifetimes(serial)
        assert not stats.failures
        assert metrics.counter("fabric.workers_lost") >= 1
        assert metrics.counter("fabric.workers_respawned") == 0
        assert stats.degraded
        assert metrics.gauge_value("runner.degraded") == 1.0

    def test_respawned_workers_keep_the_run_undegraded(self, monkeypatch):
        tasks = make_tasks(10)
        serial = SimRunner().run(tasks)

        monkeypatch.setenv(FAULT_SPEC_ENV, "crash=0.3,seed=13")
        metrics = MetricsRegistry()
        results, stats = SimRunner(
            backend=FabricBackend(workers=2, lease_ttl=1.0),
            policy=ResiliencePolicy(
                timeout=30.0, retries=8, backoff=0.01, backoff_cap=0.05
            ),
            metrics=metrics,
        ).run_detailed(tasks)
        assert lifetimes(results) == lifetimes(serial)
        assert not stats.failures
        assert metrics.counter("fabric.workers_lost") >= 1
        assert metrics.counter("fabric.workers_respawned") >= 1
        assert not stats.degraded

    def test_unpicklable_tasks_fall_back_to_serial(self):
        from repro.attacks.uaa import UniformAddressAttack
        from repro.core.maxwe import MaxWE
        from repro.endurance.emap import EnduranceMap
        from repro.sim.runner import CallableTask

        # Lambdas cannot be pickled, so these tasks cannot cross the wire.
        tasks = [
            CallableTask(
                attack_factory=lambda: UniformAddressAttack(),
                sparing_factory=lambda: MaxWE(0.1, 0.9),
                emap_factory=lambda seed: EnduranceMap(
                    np.random.default_rng(seed).uniform(100.0, 500.0, 64),
                    regions=32,
                ),
                seed=7,
                label="local-only",
            )
        ]
        results, stats = SimRunner(
            backend=FabricBackend(workers=2)
        ).run_detailed(tasks)
        assert len(results) == 1
        assert not stats.failures
        assert stats.backend == "fabric"


class TestRemoteErrors:
    def test_remote_task_error_carries_retryability(self):
        retryable = RemoteTaskError("RuntimeError", "transient blip", True)
        terminal = RemoteTaskError("ValueError", "bad spec", False)
        assert is_retryable(retryable)
        assert not is_retryable(terminal)
        assert "RuntimeError" in str(retryable)


class TestChaosAcceptance:
    def test_sweep_under_full_chaos_matches_fault_free_serial(
        self, monkeypatch
    ):
        """The issue's acceptance bar: a 100-task distributed sweep under
        injected crashes, hangs, drops, duplicates, delays, partitions,
        and slow workers -- with at least one expired lease -- completes
        with zero lost tasks, bit-identical to the fault-free serial
        run, and the chaos is visible in the fabric counters."""
        tasks = make_tasks(100)
        serial = SimRunner().run(tasks)

        monkeypatch.setenv(
            FAULT_SPEC_ENV,
            "crash=0.08,hang=0.05,transient=0.05,drop=0.08,duplicate=0.1,"
            "delay=0.05,partition=0.06,slow-worker=0.08,seed=42,"
            "hang-seconds=5,partition-seconds=1.2,slow-seconds=0.2,"
            "delay-seconds=0.02",
        )
        metrics = MetricsRegistry()
        results, stats = SimRunner(
            backend=FabricBackend(workers=4, lease_ttl=0.5),
            policy=ResiliencePolicy(
                timeout=8.0, retries=6, backoff=0.01, backoff_cap=0.1
            ),
            metrics=metrics,
        ).run_detailed(tasks)

        assert lifetimes(results) == lifetimes(serial)  # bit-identical
        assert not stats.failures  # zero lost tasks
        assert stats.backend == "fabric"
        assert metrics.counter("fabric.leases_expired") >= 1
        assert metrics.counter("fabric.leases_granted") > len(tasks)
        assert metrics.counter("fabric.requeues") >= 1


class TestCoordinatorLedger:
    """Tentpole: the coordinator journals its control plane durably."""

    def test_replay_round_trips_grants_commits_releases(self, tmp_path):
        path = tmp_path / "coord.jsonl"
        ledger = CoordinatorLedger(path)
        ledger.append(
            {"event": "grant", "lease": 0, "key": "k-a", "worker": "w0",
             "attempt": 1, "stolen": False}
        )
        ledger.append(
            {"event": "grant", "lease": 1, "key": "k-b", "worker": "w1",
             "attempt": 2, "stolen": True}
        )
        ledger.append({"event": "commit", "key": "k-a"})
        ledger.append({"event": "release", "lease": 0})

        snapshot = CoordinatorLedger(path).replay()
        assert snapshot.done_keys == {"k-a"}
        assert set(snapshot.leases) == {1}
        assert snapshot.leases[1] == {
            "key": "k-b", "worker": "w1", "attempt": 2, "stolen": True
        }
        # Lease ids must never be reused across incarnations.
        assert snapshot.next_lease == 2

    def test_torn_tail_and_junk_lines_are_skipped(self, tmp_path):
        path = tmp_path / "coord.jsonl"
        ledger = CoordinatorLedger(path)
        ledger.append(
            {"event": "grant", "lease": 3, "key": "k", "worker": "w",
             "attempt": 1}
        )
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"event": "commit", "key": "k')  # kill -9 mid-append

        snapshot = CoordinatorLedger(path).replay()
        assert snapshot.leases[3]["key"] == "k"
        assert snapshot.done_keys == set()  # the torn commit never binds

    def test_foreign_header_degrades_to_empty(self, tmp_path):
        path = tmp_path / "coord.jsonl"
        path.write_text(
            '{"coordinator_schema": 999}\n{"event": "commit", "key": "k"}\n'
        )
        assert CoordinatorLedger(path).replay().done_keys == set()

    def test_resume_false_truncates(self, tmp_path):
        path = tmp_path / "coord.jsonl"
        CoordinatorLedger(path).append({"event": "commit", "key": "old"})
        fresh = CoordinatorLedger(path, resume=False)
        assert fresh.replay().done_keys == set()

    def test_write_error_disables_instead_of_failing(self, tmp_path):
        ledger = CoordinatorLedger(tmp_path)  # a directory: appends fail
        ledger.append({"event": "commit", "key": "k"})
        assert ledger.disabled
        ledger.append({"event": "commit", "key": "k2"})  # silently absorbed


class TestCoordinatorRestart:
    """Tentpole: a rebuilt coordinator honors ledgered leases and done
    keys, so workers that rode out the crash commit under their original
    lease ids and no task runs twice."""

    def _pending(self, tasks):
        pending = []
        for index, task in enumerate(tasks):
            key, label = task_identity(task)
            pending.append(
                SupervisedTask(index=index, task=task, key=key, label=label)
            )
        return pending

    def test_rebuild_restores_leases_and_accepts_the_old_commit(self, tmp_path):
        from repro.sim.runner import _execute_supervised

        tasks = make_tasks(2)
        ledger_path = tmp_path / "coord.jsonl"
        coordinator = Coordinator(
            self._pending(tasks),
            lease_ttl=30.0,
            metrics=MetricsRegistry(),
            events=EventLog(),
            ledger=CoordinatorLedger(ledger_path),
        )
        worker = Channel(coordinator.address, name="worker-a")
        grant = worker.request({"type": "fetch", "worker": "a"})
        assert grant["type"] == "task"
        coordinator.crash()
        worker.close()

        metrics = MetricsRegistry()
        rebuilt = Coordinator(
            self._pending(tasks),
            lease_ttl=30.0,
            metrics=metrics,
            events=EventLog(),
            ledger=CoordinatorLedger(ledger_path),
        )
        try:
            assert metrics.counter("fabric.leases_restored") == 1
            assert rebuilt.active_leases() == 1
            # The leased task is not handed out a second time...
            sibling = Channel(rebuilt.address, name="worker-b")
            other = sibling.request({"type": "fetch", "worker": "b"})
            assert other["type"] == "task"
            assert other["key"] != grant["key"]
            # ...and the pre-crash worker's commit, under the lease id it
            # was granted by the DEAD incarnation, is binding.
            report = _execute_supervised(
                grant["task"], grant["key"], grant["attempt"]
            )
            reply = sibling.request({
                "type": "commit", "worker": "a", "lease": grant["lease"],
                "key": grant["key"], "report": report,
            })
            assert reply["accepted"] is True
            assert rebuilt.outbox.get(timeout=1.0)[0] == "complete"
            # The commit is durable: a third incarnation would see it.
            replay = CoordinatorLedger(ledger_path).replay()
            assert grant["key"] in replay.done_keys
            sibling.close()
        finally:
            rebuilt.request_shutdown()
            rebuilt.close()

    def test_restored_lease_of_a_dead_worker_expires_and_requeues(
        self, tmp_path
    ):
        """A restored lease whose worker actually died must not wedge the
        task: it expires one TTL after the rebuild and requeues."""
        tasks = make_tasks(1)
        ledger_path = tmp_path / "coord.jsonl"
        coordinator = Coordinator(
            self._pending(tasks),
            lease_ttl=0.2,
            metrics=MetricsRegistry(),
            events=EventLog(),
            ledger=CoordinatorLedger(ledger_path),
        )
        worker = Channel(coordinator.address, name="worker-a")
        grant = worker.request({"type": "fetch", "worker": "a"})
        assert grant["type"] == "task"
        coordinator.crash()
        worker.close()  # the worker dies with the coordinator

        metrics = MetricsRegistry()
        rebuilt = Coordinator(
            self._pending(tasks),
            lease_ttl=0.2,
            metrics=metrics,
            events=EventLog(),
            ledger=CoordinatorLedger(ledger_path),
        )
        try:
            assert rebuilt.active_leases() == 1
            import time as _time

            _time.sleep(0.3)
            assert rebuilt.expire_leases() == 1
            assert rebuilt.active_leases() == 0
            # Innocently requeued: a fresh fetch gets the task again.
            sibling = Channel(rebuilt.address, name="worker-b")
            again = sibling.request({"type": "fetch", "worker": "b"})
            assert again["type"] == "task"
            assert again["key"] == grant["key"]
            sibling.close()
        finally:
            rebuilt.request_shutdown()
            rebuilt.close()

    def test_crash_mid_sweep_converges_bit_identically(self, monkeypatch):
        """The issue's acceptance bar for the durable coordinator: kill
        the coordinator mid-sweep (seeded), let workers ride it out via
        reconnect backoff, and the run converges bit-identical with at
        least one restart and zero orphaned leases."""
        tasks = make_tasks(8)
        serial = SimRunner().run(tasks)

        monkeypatch.setenv(FAULT_SPEC_ENV, "coordinator-crash=0.35,seed=101")
        metrics = MetricsRegistry()
        results, stats = SimRunner(
            backend=FabricBackend(workers=2, lease_ttl=5.0),
            policy=ResiliencePolicy(
                timeout=30.0, retries=6, backoff=0.01, backoff_cap=0.05
            ),
            metrics=metrics,
        ).run_detailed(tasks)
        assert lifetimes(results) == lifetimes(serial)
        assert not stats.failures
        assert not stats.degraded
        assert metrics.counter("fabric.coordinator_restarts") >= 1
        assert metrics.gauge_value("fabric.active_leases") == 0.0
