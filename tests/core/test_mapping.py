"""Tests for the RMT and LMT mapping tables."""

import pytest

from repro.core.mapping import LineMappingTable, RegionMappingTable
from repro.device.errors import ConfigurationError


class TestRMT:
    @pytest.fixture
    def rmt(self):
        return RegionMappingTable(
            pairs=[(1, 2), (5, 3)], lines_per_region=3, total_regions=7
        )

    def test_lookup(self, rmt):
        assert rmt.spare_region_of(1) == 2
        assert rmt.spare_region_of(5) == 3
        assert rmt.spare_region_of(0) is None

    def test_contains(self, rmt):
        assert 1 in rmt and 5 in rmt
        assert 2 not in rmt

    def test_wear_out_tags_start_false(self, rmt):
        assert not rmt.is_worn(1, 0)
        assert rmt.worn_count() == 0

    def test_mark_worn(self, rmt):
        rmt.mark_worn(1, 2)
        assert rmt.is_worn(1, 2)
        assert not rmt.is_worn(1, 1)
        assert rmt.worn_count(1) == 1
        assert rmt.worn_count() == 1

    def test_double_mark_rejected(self, rmt):
        rmt.mark_worn(1, 0)
        with pytest.raises(ConfigurationError, match="already"):
            rmt.mark_worn(1, 0)

    def test_unknown_region_rejected(self, rmt):
        with pytest.raises(KeyError):
            rmt.mark_worn(0, 0)

    def test_offset_out_of_range(self, rmt):
        with pytest.raises(ConfigurationError):
            rmt.is_worn(1, 3)

    def test_duplicate_pra_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            RegionMappingTable([(1, 2), (1, 3)], 2, 8)

    def test_out_of_range_pair_rejected(self):
        with pytest.raises(ConfigurationError):
            RegionMappingTable([(9, 2)], 2, 8)

    def test_storage_accounting(self, rmt):
        # 2 entries x ceil(log2 7) = 3 bits each.
        assert rmt.entry_bits == 3
        assert rmt.storage_bits() == 6
        assert rmt.wear_out_tag_bits() == 6  # 2 regions x 3 lines
        assert rmt.exact_storage_bits() == 2 * 2 * 3 + 6

    def test_len(self, rmt):
        assert len(rmt) == 2


class TestLMT:
    @pytest.fixture
    def lmt(self):
        return LineMappingTable(capacity=2, total_lines=32)

    def test_insert_and_lookup(self, lmt):
        lmt.insert(5, 30)
        assert lmt.lookup(5) == 30
        assert 5 in lmt
        assert lmt.lookup(6) is None

    def test_capacity_enforced(self, lmt):
        lmt.insert(1, 30)
        lmt.insert(2, 31)
        with pytest.raises(ConfigurationError, match="full"):
            lmt.insert(3, 29)

    def test_re_rescue_replaces_entry(self, lmt):
        """Section 4.2: an existing pla entry is replaced, not rejected."""
        lmt.insert(1, 30)
        lmt.insert(2, 31)
        lmt.insert(1, 29)  # still 2 distinct pla keys
        assert lmt.lookup(1) == 29
        assert len(lmt) == 2

    def test_remove(self, lmt):
        lmt.insert(1, 30)
        lmt.remove(1)
        assert lmt.lookup(1) is None
        with pytest.raises(KeyError):
            lmt.remove(1)

    def test_out_of_range_rejected(self, lmt):
        with pytest.raises(ConfigurationError):
            lmt.insert(40, 30)

    def test_storage_accounting(self, lmt):
        assert lmt.entry_bits == 5  # log2 32
        assert lmt.storage_bits() == 10  # capacity 2 x 5
        assert lmt.exact_storage_bits() == 20

    def test_zero_capacity_allowed(self):
        lmt = LineMappingTable(capacity=0, total_lines=8)
        with pytest.raises(ConfigurationError):
            lmt.insert(0, 1)
