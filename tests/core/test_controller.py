"""Tests for the exact Section 4.2 controller datapath."""

import numpy as np
import pytest

from repro.core.controller import MaxWEController
from repro.core.maxwe import MaxWE
from repro.device.bank import NVMBank
from repro.device.errors import DeviceWornOutError
from repro.endurance.emap import EnduranceMap


def make_controller(lines_per_region=2, **scheme_kwargs):
    region_endurance = {2: 10.0, 3: 20.0, 5: 30.0, 1: 40.0, 6: 50.0, 0: 60.0, 4: 70.0}
    endurance = np.empty(7 * lines_per_region)
    for region, value in region_endurance.items():
        endurance[region * lines_per_region : (region + 1) * lines_per_region] = value
    bank = NVMBank(EnduranceMap(endurance, regions=7))
    scheme = MaxWE(spare_fraction=3 / 7, swr_fraction=2 / 3, **scheme_kwargs)
    return MaxWEController(bank, scheme, rng=1)


class TestTranslation:
    def test_reads_pass_through_initially(self):
        controller = make_controller()
        for logical in range(controller.user_lines):
            physical = controller.read(logical)
            assert physical == controller.scheme.initial_backing[logical]

    def test_lmt_takes_precedence_over_identity(self):
        controller = make_controller()
        scheme = controller.scheme
        # Manufacture an LMT entry via a real wear-out on region 0.
        slot = scheme.initial_backing.tolist().index(0)
        for _ in range(60):
            controller.write(slot)
        assert scheme.lmt.lookup(0) is not None
        assert controller.read(slot) == scheme.lmt.lookup(0)

    def test_rmt_worn_tag_redirects_to_swr_line(self):
        controller = make_controller()
        scheme = controller.scheme
        # Region 1 (RWR, endurance 40) paired with SWR region 2.
        slot = scheme.initial_backing.tolist().index(2)  # first line of region 1
        for _ in range(40):
            controller.write(slot)
        assert scheme.rmt.is_worn(1, 0)
        assert controller.read(slot) == 4  # region 2, offset 0


class TestWritePath:
    def test_writes_served_counted(self):
        controller = make_controller()
        controller.write(0)
        controller.write(1)
        assert controller.writes_served == 2

    def test_wear_lands_on_translated_line(self):
        controller = make_controller()
        before = controller.bank.wear.copy()
        controller.write(0)
        after = controller.bank.wear
        assert after.sum() - before.sum() == 1.0
        assert after[controller.read(0)] - before[controller.read(0)] in (0.0, 1.0)

    def test_redirected_writes_keep_working(self):
        controller = make_controller()
        scheme = controller.scheme
        slot = scheme.initial_backing.tolist().index(2)
        for _ in range(45):  # beyond region 1's 40, into SWR region 2
            controller.write(slot)
        # Wear continued accumulating on the replacement line.
        assert controller.bank.wear[4] == pytest.approx(5.0)

    def test_device_failure_raises(self):
        controller = make_controller(lines_per_region=1)
        with pytest.raises(DeviceWornOutError):
            for _ in range(10_000):
                for logical in range(controller.user_lines):
                    controller.write(logical)
        assert controller.failed
        assert controller.failure_reason is not None

    def test_write_after_failure_rejected(self):
        controller = make_controller(lines_per_region=1)
        with pytest.raises(DeviceWornOutError):
            for _ in range(10_000):
                for logical in range(controller.user_lines):
                    controller.write(logical)
        with pytest.raises(DeviceWornOutError):
            controller.write(0)

    def test_normalized_lifetime_reasonable(self):
        controller = make_controller(lines_per_region=1)
        with pytest.raises(DeviceWornOutError):
            for _ in range(10_000):
                for logical in range(controller.user_lines):
                    controller.write(logical)
        # The toy device under uniform writes: nontrivial but sub-ideal.
        assert 0.2 < controller.normalized_lifetime() < 1.0


class TestTranslationCounters:
    def test_fresh_device_translates_directly(self):
        controller = make_controller()
        for logical in range(controller.user_lines):
            controller.read(logical)
        counts = controller.translation_counts
        assert counts["direct"] == controller.user_lines
        assert counts["rmt"] == 0
        assert counts["lmt"] == 0

    def test_table_paths_engage_after_wearouts(self):
        controller = make_controller()
        scheme = controller.scheme
        slot = scheme.initial_backing.tolist().index(2)  # RWR region 1
        for _ in range(45):
            controller.write(slot)
        counts = controller.translation_counts
        assert counts["rmt"] > 0  # the failed-over line now routes via RMT
        assert counts["direct"] > 0


class TestUniformSweepSemantics:
    def test_all_slots_absorb_equal_user_wear(self):
        controller = make_controller()
        for _ in range(8):
            for logical in range(controller.user_lines):
                controller.write(logical)
        # Before any wear-out, user wear is uniform across backing lines.
        backing = controller.scheme.initial_backing
        np.testing.assert_allclose(controller.bank.wear[backing], 8.0)
