"""Tests for the Max-WE replacement procedure (Section 4.2)."""

import numpy as np
import pytest

from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.sparing.base import FailDevice, ReplaceWith


def figure3_emap(lines_per_region=1):
    region_endurance = {2: 10.0, 3: 20.0, 5: 30.0, 1: 40.0, 6: 50.0, 0: 60.0, 4: 70.0}
    endurance = np.empty(7 * lines_per_region)
    for region, value in region_endurance.items():
        endurance[region * lines_per_region : (region + 1) * lines_per_region] = value
    return EnduranceMap(endurance, regions=7)


def make_scheme(lines_per_region=1, **kwargs):
    scheme = MaxWE(spare_fraction=3 / 7, swr_fraction=2 / 3, **kwargs)
    scheme.initialize(figure3_emap(lines_per_region), rng=1)
    return scheme


class TestInitialization:
    def test_backing_is_working_regions(self):
        scheme = make_scheme()
        # Working regions 0, 1, 4, 5 -> lines 0, 1, 4, 5.
        assert scheme.initial_backing.tolist() == [0, 1, 4, 5]
        assert scheme.slots == 4

    def test_pool_strongest_first(self):
        scheme = make_scheme(lines_per_region=2)
        # Additional region is 6 (2 lines of endurance 50 each).
        assert scheme.pool_remaining == 2

    def test_spare_lines_region_rounded(self):
        scheme = make_scheme(lines_per_region=2)
        assert scheme.spare_lines(14) == 6  # 3 regions x 2 lines

    def test_min_user_slots_never_shrinks(self):
        scheme = make_scheme()
        assert scheme.min_user_slots == scheme.slots

    def test_tables_exposed(self):
        scheme = make_scheme()
        assert len(scheme.rmt) == 2
        assert scheme.lmt.capacity == 1


class TestRWRReplacement:
    def test_rwr_death_fails_over_to_matched_swr_line(self):
        scheme = make_scheme(lines_per_region=2)
        # Slot order: region 0 lines (0, 1), region 1 lines (2, 3), ...
        # Region 1 is an RWR matched with SWR region 2.
        slot_of_line_2 = scheme.initial_backing.tolist().index(2)
        outcome = scheme.replace(slot_of_line_2, dead_line=2)
        assert isinstance(outcome, ReplaceWith)
        assert outcome.line == 2 * 2 + 0  # region 2, same offset
        assert scheme.rmt.is_worn(1, 0)

    def test_offset_preserved_in_pairing(self):
        scheme = make_scheme(lines_per_region=2)
        slot_of_line_3 = scheme.initial_backing.tolist().index(3)
        outcome = scheme.replace(slot_of_line_3, dead_line=3)
        assert isinstance(outcome, ReplaceWith)
        assert outcome.line == 2 * 2 + 1  # region 2, offset 1

    def test_swr_line_death_falls_back_to_pool_by_default(self):
        """Section 4.2: a dead SWR line is outside the RMT's pra set, so it
        is rescued from the additional spare regions."""
        scheme = make_scheme()
        slot = scheme.initial_backing.tolist().index(1)  # RWR region 1
        first = scheme.replace(slot, dead_line=1)
        assert isinstance(first, ReplaceWith)
        second = scheme.replace(slot, dead_line=first.line)
        assert isinstance(second, ReplaceWith)
        assert second.line == 6  # the additional region's line
        assert scheme.pool_remaining == 0

    def test_strict_mode_fails_on_swr_death(self):
        scheme = make_scheme(rwr_fallback_to_lmt=False)
        slot = scheme.initial_backing.tolist().index(1)
        first = scheme.replace(slot, dead_line=1)
        assert isinstance(first, ReplaceWith)
        outcome = scheme.replace(slot, dead_line=first.line)
        assert isinstance(outcome, FailDevice)
        assert "SWR replacement" in outcome.reason


class TestPoolReplacement:
    def test_non_rwr_death_takes_strongest_pool_line(self):
        scheme = make_scheme(lines_per_region=1)
        slot_of_line_0 = scheme.initial_backing.tolist().index(0)  # region 0
        outcome = scheme.replace(slot_of_line_0, dead_line=0)
        assert isinstance(outcome, ReplaceWith)
        assert outcome.line == 6  # region 6's line
        assert scheme.lmt.lookup(0) == 6

    def test_re_rescue_removes_old_entry(self):
        scheme = make_scheme(lines_per_region=2)  # pool of 2 lines
        slot = scheme.initial_backing.tolist().index(0)
        first = scheme.replace(slot, dead_line=0)
        assert isinstance(first, ReplaceWith)
        second = scheme.replace(slot, dead_line=first.line)
        assert isinstance(second, ReplaceWith)
        assert scheme.lmt.lookup(0) == second.line
        assert len(scheme.lmt) == 1  # old entry dropped

    def test_pool_exhaustion_fails_device(self):
        scheme = make_scheme(lines_per_region=1)  # pool of 1
        slots = scheme.initial_backing.tolist()
        first = scheme.replace(slots.index(0), dead_line=0)
        assert isinstance(first, ReplaceWith)
        outcome = scheme.replace(slots.index(4), dead_line=4)
        assert isinstance(outcome, FailDevice)
        assert "additional spare regions exhausted" in outcome.reason


class TestValidation:
    def test_unknown_slot_rejected(self):
        scheme = make_scheme()
        with pytest.raises(KeyError):
            scheme.replace(99, dead_line=0)

    def test_use_before_initialize(self):
        with pytest.raises(RuntimeError):
            MaxWE().plan

    def test_describe_mentions_policies(self):
        scheme = make_scheme()
        text = scheme.describe()
        assert "weak-priority" in text and "weak-strong" in text
