"""Tests for the Section 4.4 / 5.3.2 mapping-overhead formulas."""

import pytest

from repro.core.overhead import (
    hybrid_mapping_bits,
    line_level_mapping_bits,
    lmt_bits,
    mapping_overhead_report,
    paper_overhead_geometry,
    rmt_bits,
    wear_out_tag_bits,
)
from repro.device.geometry import DeviceGeometry


class TestFormulas:
    def test_line_level_is_s_log2_n(self):
        assert line_level_mapping_bits(2**22, 1000) == 1000 * 22

    def test_lmt_is_one_minus_q_s_log2_n(self):
        assert lmt_bits(2**22, 1000, swr_fraction=0.9) == 100 * 22

    def test_rmt_is_region_count_times_log2_r(self):
        # q*S*R/N regions, log2 R bits each.
        total, regions, spares = 2**22, 2048, 2**22 // 10
        swr_regions = round(0.9 * spares * regions / total)
        assert rmt_bits(total, regions, spares, 0.9) == swr_regions * 11

    def test_tags_one_bit_per_swr_line(self):
        assert wear_out_tag_bits(1000, 0.9) == 900

    def test_hybrid_composition(self):
        total, regions, spares = 2**20, 1024, 1000
        combined = hybrid_mapping_bits(total, regions, spares, 0.9)
        assert combined == (
            lmt_bits(total, spares, 0.9)
            + rmt_bits(total, regions, spares, 0.9)
            + wear_out_tag_bits(spares, 0.9)
        )

    def test_invalid_spares(self):
        with pytest.raises(ValueError):
            line_level_mapping_bits(100, 200)


class TestPaperNumbers:
    """Section 5.3.2: 0.16 MB vs 1.1 MB, 85% reduction, 0.016% of capacity."""

    @pytest.fixture
    def report(self):
        return mapping_overhead_report(paper_overhead_geometry(), 0.1, 0.9)

    def test_maxwe_about_016_mb(self, report):
        assert report.hybrid_mib == pytest.approx(0.16, abs=0.01)

    def test_line_level_about_11_mb(self, report):
        assert report.line_level_mib == pytest.approx(1.1, abs=0.01)

    def test_reduction_about_85_percent(self, report):
        assert report.reduction == pytest.approx(0.85, abs=0.015)

    def test_capacity_share_about_0016_percent(self, report):
        assert report.mapping_fraction_of_capacity == pytest.approx(
            0.00016, abs=0.00002
        )

    def test_paper_geometry_line_size(self):
        geometry = paper_overhead_geometry()
        assert geometry.line_bytes == 256
        assert geometry.total_lines == 2**22


class TestScalingBehaviour:
    def test_more_swrs_less_storage(self):
        geometry = DeviceGeometry(total_lines=2**20, regions=1024)
        low = mapping_overhead_report(geometry, 0.1, 0.5)
        high = mapping_overhead_report(geometry, 0.1, 0.9)
        assert high.hybrid_bits < low.hybrid_bits

    def test_reduction_grows_with_swr_share(self):
        geometry = DeviceGeometry(total_lines=2**20, regions=1024)
        assert (
            mapping_overhead_report(geometry, 0.1, 0.9).reduction
            > mapping_overhead_report(geometry, 0.1, 0.5).reduction
        )

    def test_zero_swrs_no_saving_beyond_formula(self):
        geometry = DeviceGeometry(total_lines=2**20, regions=1024)
        report = mapping_overhead_report(geometry, 0.1, 0.0)
        assert report.rmt_bits == 0
        assert report.tag_bits == 0
        assert report.lmt_bits == report.line_level_bits
