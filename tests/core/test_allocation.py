"""Tests for weak-priority selection and weak-strong matching."""

import numpy as np
import pytest

from repro.core.allocation import plan_allocation
from repro.device.errors import ConfigurationError
from repro.endurance.emap import EnduranceMap


def figure3_emap():
    """The paper's Figure 3 device: 7 regions, ascending order 2<3<5<1<6<0<4."""
    region_endurance = {2: 10.0, 3: 20.0, 5: 30.0, 1: 40.0, 6: 50.0, 0: 60.0, 4: 70.0}
    endurance = np.empty(7)
    for region, value in region_endurance.items():
        endurance[region] = value
    return EnduranceMap(endurance, regions=7)


class TestFigure3Example:
    """The worked example of Section 4.1, exactly."""

    @pytest.fixture
    def plan(self):
        # 3/7 of regions spare, 2/3 of spares as SWRs -> 2 SWRs, 1 additional.
        return plan_allocation(figure3_emap(), spare_fraction=3 / 7, swr_fraction=2 / 3)

    def test_swrs_are_weakest_two(self, plan):
        assert sorted(plan.swr_regions.tolist()) == [2, 3]

    def test_rwrs_are_next_weakest_two(self, plan):
        assert sorted(plan.rwr_regions.tolist()) == [1, 5]

    def test_additional_is_region_six(self, plan):
        assert plan.additional_regions.tolist() == [6]

    def test_weak_strong_matching(self, plan):
        """Weakest SWR (2) rescues strongest RWR (1); 3 rescues 5."""
        pairs = dict(zip(plan.rwr_regions.tolist(), plan.swr_regions.tolist()))
        assert pairs == {1: 2, 5: 3}

    def test_working_regions(self, plan):
        assert plan.working_regions.tolist() == [0, 1, 4, 5]

    def test_partner_lookup(self, plan):
        assert plan.partner_of_rwr(1) == 2
        assert plan.partner_of_rwr(5) == 3
        with pytest.raises(KeyError):
            plan.partner_of_rwr(0)

    def test_is_rwr(self, plan):
        assert plan.is_rwr(1) and plan.is_rwr(5)
        assert not plan.is_rwr(2) and not plan.is_rwr(0)

    def test_spare_region_count(self, plan):
        assert plan.spare_region_count == 3


class TestMatchingPolicies:
    def test_identity_matching_pairs_by_rank(self):
        plan = plan_allocation(
            figure3_emap(), 3 / 7, 2 / 3, matching="identity"
        )
        pairs = dict(zip(plan.rwr_regions.tolist(), plan.swr_regions.tolist()))
        # Weakest SWR (2) with weakest RWR (5); 3 with 1.
        assert pairs == {5: 2, 1: 3}

    def test_random_matching_is_a_valid_pairing(self):
        plan = plan_allocation(
            figure3_emap(), 3 / 7, 2 / 3, matching="random", rng=5
        )
        assert sorted(plan.rwr_regions.tolist()) == [1, 5]
        assert sorted(plan.swr_regions.tolist()) == [2, 3]

    def test_unknown_matching_rejected(self):
        with pytest.raises(ConfigurationError, match="matching"):
            plan_allocation(figure3_emap(), 3 / 7, 2 / 3, matching="zigzag")


class TestSelectionPolicies:
    def test_strong_priority_wastes_strong_regions(self):
        plan = plan_allocation(
            figure3_emap(), 3 / 7, 2 / 3, spare_selection="strong-priority"
        )
        assert sorted(plan.swr_regions.tolist()) == [0, 4]  # strongest two
        assert sorted(plan.rwr_regions.tolist()) == [2, 3]  # weakest two

    def test_random_selection_partitions_regions(self):
        plan = plan_allocation(
            figure3_emap(), 3 / 7, 2 / 3, spare_selection="random", rng=7
        )
        all_regions = np.concatenate(
            [plan.swr_regions, plan.additional_regions, plan.working_regions]
        )
        assert sorted(all_regions.tolist()) == list(range(7))

    def test_unknown_selection_rejected(self):
        with pytest.raises(ConfigurationError, match="spare_selection"):
            plan_allocation(figure3_emap(), 3 / 7, 2 / 3, spare_selection="weird")


class TestBudgeting:
    def test_zero_swr_fraction_all_dynamic(self):
        plan = plan_allocation(figure3_emap(), 3 / 7, swr_fraction=0.0)
        assert plan.swr_regions.size == 0
        assert plan.additional_regions.size == 3

    def test_full_swr_fraction_no_dynamic(self):
        plan = plan_allocation(figure3_emap(), 2 / 7, swr_fraction=1.0)
        assert plan.swr_regions.size == 2
        assert plan.additional_regions.size == 0

    def test_overcommit_rejected(self):
        # 3 SWRs need 3 RWRs: 6 of 7 regions, plus 1 additional = 7; but
        # 4 spare regions at swr=0.75 -> 3 SWRs + 1 additional + 3 RWRs = 7 OK;
        # push beyond with 5 spare regions.
        with pytest.raises(ConfigurationError, match="exceeding"):
            plan_allocation(figure3_emap(), 5 / 7, swr_fraction=0.8)

    def test_zero_spares(self):
        plan = plan_allocation(figure3_emap(), 0.0)
        assert plan.spare_region_count == 0
        assert plan.working_regions.size == 7
