"""HTTP API tests: wire contracts, streaming, error codes.

A real :class:`ServiceServer` runs on a private event loop thread with
an ephemeral port; a real :class:`ServiceClient` talks to it over
localhost TCP, so these exercise exactly what production clients see
(chunked NDJSON included).
"""

import asyncio
import json
import threading
import time

import pytest

from repro.service.client import ServiceClient, ServiceError
from repro.service.core import ServiceConfig, SimService
from repro.service.http import ServiceServer
from repro.service.queue import TenantQuota
from repro.sim.batch import run_batch
from repro.sim.config import ExperimentConfig

SMALL = {"regions": 64, "lines_per_region": 2}
SPECS = [{"label": "a", "attack": "uaa", "sparing": "max-we"}]


class ServerHarness:
    """A live service + HTTP server on an ephemeral port."""

    def __init__(self, tmp_path, **config_kwargs):
        self.service = SimService(
            ServiceConfig(state_dir=tmp_path / "state", **config_kwargs)
        )
        self.service.start()
        self.server = ServiceServer(self.service, "127.0.0.1", 0)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        deadline = time.monotonic() + 10.0
        while self.server.port == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert self.server.port != 0, "server never bound"
        self.client = ServiceClient("127.0.0.1", self.server.port)

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_until_complete(self.server.start())
        self.loop.run_forever()

    def close(self):
        asyncio.run_coroutine_threadsafe(self.server.close(), self.loop).result(10.0)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)
        self.service.stop()


@pytest.fixture
def harness(tmp_path):
    instance = ServerHarness(tmp_path, dispatchers=2)
    yield instance
    instance.close()


class TestEndToEnd:
    def test_submit_stream_fetch_matches_run_batch(self, harness):
        """The acceptance criterion: submit -> stream -> fetch over HTTP
        returns a body byte-identical to a direct run_batch."""
        document = harness.client.submit(SPECS, SMALL, tenant="alice")
        assert document["status"] in ("queued", "running", "done")
        events = list(harness.client.stream_events(document["job_id"]))
        kinds = [event["event"] for event in events]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        assert "result" in kinds
        body = harness.client.results(document["job_id"])
        direct = run_batch(SPECS, ExperimentConfig(**SMALL)).to_json()
        assert body == direct

    def test_stream_since_skips_seen_events(self, harness):
        document = harness.client.submit(SPECS, SMALL)
        first = list(harness.client.stream_events(document["job_id"]))
        resumed = list(
            harness.client.stream_events(document["job_id"], since=len(first) - 1)
        )
        assert resumed == first[-1:]

    def test_healthz_and_listing(self, harness):
        assert harness.client.healthz()
        harness.client.submit(SPECS, SMALL, tenant="alice")
        jobs = harness.client.list_jobs()
        assert len(jobs) == 1
        assert jobs[0]["tenant"] == "alice"

    def test_metrics_manifest_carries_service_counters(self, harness):
        document = harness.client.submit(SPECS, SMALL)
        harness.client.wait(document["job_id"])
        duplicate = harness.client.submit(SPECS, SMALL, tenant="other")
        harness.client.wait(duplicate["job_id"])
        manifest = harness.client.metrics()
        assert manifest["kind"] == "manifest"
        assert manifest["command"] == "service"
        assert manifest["counters"]["service.dedup_hits"] >= 1
        assert manifest["counters"]["service.submitted"] == 2


class TestErrorCodes:
    def test_validation_errors_are_400(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client.submit([{"label": "x", "attack": "nope"}], SMALL)
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, harness):
        with pytest.raises(ServiceError) as excinfo:
            harness.client.status("j-missing")
        assert excinfo.value.status == 404
        with pytest.raises(ServiceError) as excinfo:
            harness.client.results("j-missing")
        assert excinfo.value.status == 404

    def test_results_before_done_is_409(self, tmp_path):
        harness = ServerHarness(
            tmp_path,
            dispatchers=1,
            default_quota=TenantQuota(max_queued=8, max_concurrent=1),
        )
        try:
            # A heavier batch so the first fetch can race it while running.
            slow = [
                {"label": f"s{i}", "attack": "bpa", "p": 0.02 + i * 0.01}
                for i in range(4)
            ]
            document = harness.client.submit(slow, {"regions": 2048})
            try:
                harness.client.results(document["job_id"])
                raced_to_done = True
            except ServiceError as error:
                assert error.status == 409
                raced_to_done = False
            final = harness.client.wait(document["job_id"])
            assert final["status"] == "done"
            assert harness.client.results(document["job_id"])  # now 200
            assert raced_to_done in (True, False)
        finally:
            harness.close()

    def test_quota_exceeded_is_429(self, tmp_path):
        harness = ServerHarness(
            tmp_path,
            dispatchers=1,
            default_quota=TenantQuota(max_queued=1, max_concurrent=1),
        )
        try:
            # Hold the dispatcher with one batch, fill the queue with a
            # second, then overflow with a third: must be a fast 429.
            def payload(tag):
                return [{"label": tag, "attack": "bpa", "p": 0.05}]

            harness.client.submit(payload("hold"), {"regions": 4096})
            harness.client.submit(payload("queued"), {"regions": 4096})
            started = time.monotonic()
            with pytest.raises(ServiceError) as excinfo:
                harness.client.submit(payload("reject"), {"regions": 4096})
            assert excinfo.value.status == 429
            assert time.monotonic() - started < 5.0, "429 must not hang"
        finally:
            harness.close()

    def test_unknown_paths_and_methods(self, harness):
        import http.client

        connection = http.client.HTTPConnection(
            harness.client.host, harness.client.port, timeout=10.0
        )
        try:
            connection.request("GET", "/nope")
            assert connection.getresponse().status == 404
        finally:
            connection.close()
        connection = http.client.HTTPConnection(
            harness.client.host, harness.client.port, timeout=10.0
        )
        try:
            connection.request("DELETE", "/v1/jobs")
            assert connection.getresponse().status == 405
        finally:
            connection.close()

    def test_bad_json_body_is_400(self, harness):
        import http.client

        connection = http.client.HTTPConnection(
            harness.client.host, harness.client.port, timeout=10.0
        )
        try:
            connection.request(
                "POST", "/v1/jobs", body="{not json",
                headers={"Content-Type": "application/json"},
            )
            assert connection.getresponse().status == 400
        finally:
            connection.close()
