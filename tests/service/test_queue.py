"""Job queue tests: weighted round-robin fairness and quota enforcement."""

import pytest

from repro.service.jobs import Job
from repro.service.queue import JobQueue, QuotaExceeded, TenantQuota


def make_job(tenant: str, label: str = "x") -> Job:
    return Job(
        tenant=tenant,
        specs=[{"label": label}],
        config={},
        options={},
        batch_key=f"{tenant}:{label}",
    )


class TestQuotas:
    def test_max_queued_rejects_cleanly(self):
        queue = JobQueue(TenantQuota(max_queued=2))
        queue.submit(make_job("a", "1"))
        queue.submit(make_job("a", "2"))
        with pytest.raises(QuotaExceeded) as excinfo:
            queue.submit(make_job("a", "3"))
        assert excinfo.value.tenant == "a"
        assert excinfo.value.limit == 2
        # The rejection costs nothing: other tenants are unaffected.
        queue.submit(make_job("b", "1"))
        assert queue.depth("a") == 2
        assert queue.depth("b") == 1

    def test_max_concurrent_defers_dispatch(self):
        queue = JobQueue(TenantQuota(max_concurrent=1))
        first, second = make_job("a", "1"), make_job("a", "2")
        queue.submit(first)
        queue.submit(second)
        taken = queue.take(timeout=0.05)
        assert taken is first
        # The tenant is at max_concurrent: nothing to take until release.
        assert queue.take(timeout=0.05) is None
        queue.release(taken)
        assert queue.take(timeout=0.05) is second

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(weight=0)
        with pytest.raises(ValueError):
            TenantQuota(max_queued=0)
        with pytest.raises(ValueError):
            TenantQuota(max_concurrent=0)


class TestFairness:
    def test_round_robin_interleaves_tenants(self):
        queue = JobQueue(TenantQuota(max_queued=100, max_concurrent=100))
        for index in range(3):
            queue.submit(make_job("hog", str(index)))
        queue.submit(make_job("mouse", "0"))
        order = [queue.take(timeout=0.05).tenant for _ in range(4)]
        # The mouse is served before the hog's backlog drains.
        assert order.index("mouse") <= 1

    def test_weights_bias_the_ratio(self):
        queue = JobQueue(
            TenantQuota(max_queued=100, max_concurrent=100),
            {"heavy": TenantQuota(weight=2, max_queued=100, max_concurrent=100)},
        )
        for index in range(4):
            queue.submit(make_job("heavy", str(index)))
            queue.submit(make_job("light", str(index)))
        order = [queue.take(timeout=0.05).tenant for _ in range(6)]
        # Weight 2 vs 1: heavy gets two grants per light's one.
        assert order.count("heavy") == 2 * order.count("light")

    def test_single_tenant_is_fifo(self):
        queue = JobQueue()
        jobs = [make_job("a", str(index)) for index in range(3)]
        for job in jobs:
            queue.submit(job)
        assert [queue.take(timeout=0.05) for _ in range(3)] == jobs


class TestLifecycle:
    def test_take_times_out_empty(self):
        assert JobQueue().take(timeout=0.05) is None

    def test_close_wakes_blocked_take(self):
        import threading

        queue = JobQueue()
        results = []
        waiter = threading.Thread(
            target=lambda: results.append(queue.take(timeout=30.0))
        )
        waiter.start()
        queue.close()
        waiter.join(timeout=5.0)
        assert not waiter.is_alive()
        assert results == [None]

    def test_closed_queue_rejects_submissions(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.submit(make_job("a"))
