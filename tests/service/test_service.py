"""Service core tests: dedup, byte-identity, quotas, restart resume.

These drive :class:`SimService` directly (no HTTP) -- the concurrency
contracts live here, the wire contracts in ``test_http.py``.
"""

import json

import pytest

from repro.service.core import ServiceConfig, SimService, ValidationError
from repro.service.queue import QuotaExceeded, TenantQuota
from repro.sim.batch import run_batch
from repro.sim.config import ExperimentConfig

SMALL = {"regions": 64, "lines_per_region": 2}
SPECS = [
    {"label": "a", "attack": "uaa", "sparing": "max-we"},
    {"label": "b", "attack": "uaa", "sparing": "none"},
]
PAYLOAD = {"specs": SPECS, "config": SMALL}


@pytest.fixture
def service(tmp_path):
    instance = SimService(ServiceConfig(state_dir=tmp_path / "state", dispatchers=2))
    instance.start()
    yield instance
    instance.stop()


def direct_body() -> str:
    return run_batch(SPECS, ExperimentConfig(**SMALL)).to_json()


class TestConcurrentSubmission:
    def test_identical_specs_run_once_and_serve_twice(self, service):
        """Two tenants, one batch: ONE runner execution, TWO completed
        jobs, byte-identical bodies (the acceptance criterion)."""
        first = service.submit("alice", PAYLOAD)
        second = service.submit("bob", PAYLOAD)
        assert first.wait(120.0) and second.wait(120.0)
        assert first.status == "done" and second.status == "done"
        assert first.result_text == second.result_text == direct_body()
        counters = service.manifest()["counters"]
        # Each spec simulated exactly once, despite two submissions.
        assert counters["runner.simulated"] == len(SPECS)
        assert counters["service.dedup_hits"] == 1
        assert counters["service.completed"] == 2

    def test_warm_resubmission_is_o1_and_counted(self, service):
        original = service.submit("alice", PAYLOAD)
        assert original.wait(120.0)
        simulated = service.manifest()["counters"]["runner.simulated"]
        warm = service.submit("carol", PAYLOAD)
        # Completed synchronously at submit: no queue, no dispatch.
        assert warm.status == "done"
        assert warm.dedup_hit
        assert warm.result_text == original.result_text
        counters = service.manifest()["counters"]
        assert counters["runner.simulated"] == simulated
        assert counters["service.dedup_hits"] >= 1

    def test_quota_exceeded_is_clean_not_a_hang(self, tmp_path):
        service = SimService(
            ServiceConfig(
                state_dir=tmp_path / "state",
                dispatchers=1,
                default_quota=TenantQuota(max_queued=1),
            )
        )
        # Not started: nothing drains the queue, so the second distinct
        # submission must be rejected immediately.
        first = {"specs": [{"label": "one", "p": 0.05}], "config": SMALL}
        second = {"specs": [{"label": "two", "p": 0.06}], "config": SMALL}
        service.submit("alice", first)
        with pytest.raises(QuotaExceeded):
            service.submit("alice", second)
        counters = service.manifest()["counters"]
        assert counters["service.quota_rejections"] == 1
        # The rejected job left no residue.
        assert len(service.list_jobs()) == 1


class TestValidation:
    def test_bad_specs_rejected(self, service):
        with pytest.raises(ValidationError):
            service.submit("a", {"specs": []})
        with pytest.raises(ValidationError):
            service.submit("a", {"specs": [{"label": "x", "attack": "nope"}]})
        with pytest.raises(ValidationError):
            service.submit("a", {"specs": [{"label": "x", "bogus": 1}]})

    def test_bad_config_and_unknown_fields_rejected(self, service):
        with pytest.raises(ValidationError):
            service.submit("a", {"specs": SPECS, "config": {"regions": -1}})
        with pytest.raises(ValidationError):
            service.submit("a", {"specs": SPECS, "config": {"bogus": 1}})
        with pytest.raises(ValidationError):
            service.submit("a", {"specs": SPECS, "surprise": True})

    def test_nothing_persisted_for_rejected_submissions(self, service):
        with pytest.raises(ValidationError):
            service.submit("a", {"specs": []})
        assert list(service.records_dir.glob("*.json")) == []


class TestEvents:
    def test_event_stream_has_per_spec_results(self, service):
        job = service.submit("alice", PAYLOAD)
        assert job.wait(120.0)
        kinds = [event["event"] for event in job.events]
        assert kinds[0] == "queued"
        assert kinds[-1] == "done"
        results = [event for event in job.events if event["event"] == "result"]
        assert {event["label"] for event in results} == {"a", "b"}
        assert all("normalized_lifetime" in event for event in results)

    def test_wait_events_pages_by_cursor(self, service):
        job = service.submit("alice", PAYLOAD)
        assert job.wait(120.0)
        head, done_head = job.wait_events(0, timeout=0.1)
        tail, done_tail = job.wait_events(len(head) - 1, timeout=0.1)
        assert done_head and done_tail
        assert tail == head[-1:]


class TestDurability:
    def test_restart_resumes_interrupted_jobs(self, tmp_path):
        state = tmp_path / "state"
        # First incarnation: accept a job but never dispatch it (the
        # service is not started), then "crash".
        before = SimService(ServiceConfig(state_dir=state, dispatchers=1))
        before.records_dir.mkdir(parents=True, exist_ok=True)
        before.ledgers_dir.mkdir(parents=True, exist_ok=True)
        job = before.submit("alice", PAYLOAD)
        assert job.status == "queued"

        after = SimService(ServiceConfig(state_dir=state, dispatchers=1))
        after.start()
        try:
            resumed = after.get_job(job.job_id)
            assert resumed is not None
            assert resumed.wait(120.0)
            assert resumed.status == "done"
            assert resumed.result_text == direct_body()
            assert after.manifest()["counters"]["service.resumed"] == 1
        finally:
            after.stop()

    def test_restart_republishes_done_jobs_for_dedup(self, tmp_path):
        state = tmp_path / "state"
        with SimService(ServiceConfig(state_dir=state, dispatchers=1)) as before:
            job = before.submit("alice", PAYLOAD)
            assert job.wait(120.0)
            body = job.result_text

        with SimService(ServiceConfig(state_dir=state, dispatchers=1)) as after:
            # The reloaded record serves status and results...
            reloaded = after.get_job(job.job_id)
            assert reloaded.status == "done"
            assert reloaded.result_text == body
            # ...and re-primes the dedup store: same batch is O(1).
            warm = after.submit("bob", PAYLOAD)
            assert warm.status == "done" and warm.dedup_hit

    def test_torn_record_is_skipped_not_fatal(self, tmp_path):
        state = tmp_path / "state"
        records = state / "jobs"
        records.mkdir(parents=True)
        (records / "j-torn.json").write_text('{"job_id": "j-torn", "ten')
        with SimService(ServiceConfig(state_dir=state, dispatchers=1)) as service:
            assert service.get_job("j-torn") is None

    def test_concurrent_record_writers_do_not_collide(self, tmp_path):
        """The submitting thread and a dispatcher can persist the same
        job concurrently; the writers must serialize (same-pid temp
        names would otherwise collide and kill the dispatcher)."""
        import threading

        service = SimService(ServiceConfig(state_dir=tmp_path / "state"))
        job = service.submit("alice", PAYLOAD)
        errors = []

        def writer():
            try:
                for _ in range(50):
                    service._persist(job)
            except Exception as error:  # noqa: BLE001 - the assertion
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert errors == []
        record = json.loads(
            (service.records_dir / f"{job.job_id}.json").read_text()
        )
        assert record["job_id"] == job.job_id

    def test_records_round_trip(self, service):
        job = service.submit("alice", PAYLOAD)
        assert job.wait(120.0)
        record = json.loads(
            (service.records_dir / f"{job.job_id}.json").read_text()
        )
        assert record["status"] == "done"
        assert record["result"] == job.result_text
        assert record["batch_key"] == job.batch_key


class TestDrainAndShedding:
    """Tentpole: graceful drain (503 + Retry-After) and deadline-based
    load shedding of jobs nobody can still use."""

    def test_drain_rejects_new_work_and_persists_records(self, tmp_path):
        from repro.service.core import ServiceUnavailable

        service = SimService(
            ServiceConfig(state_dir=tmp_path / "state", dispatchers=2)
        )
        service.start()
        job = service.submit("alice", PAYLOAD)
        assert job.wait(120.0)

        assert service.drain(timeout=30.0) is True
        assert service.draining
        with pytest.raises(ServiceUnavailable) as excinfo:
            service.submit("bob", PAYLOAD)
        # The Retry-After hint the HTTP layer forwards verbatim.
        assert excinfo.value.retry_after > 0
        counters = service.manifest()["counters"]
        assert counters["service.drain_rejections"] == 1
        # Every record persisted for the next incarnation.
        assert (service.records_dir / f"{job.job_id}.json").exists()
        service.stop()

    def test_drained_state_resumes_in_next_incarnation(self, tmp_path):
        state = tmp_path / "state"
        with SimService(ServiceConfig(state_dir=state, dispatchers=1)) as before:
            job = before.submit("alice", PAYLOAD)
            assert job.wait(120.0)
            before.drain(timeout=30.0)
            body = job.result_text

        with SimService(ServiceConfig(state_dir=state, dispatchers=1)) as after:
            resumed = after.get_job(job.job_id)
            assert resumed is not None
            assert resumed.status == "done"
            assert resumed.result_text == body

    def test_queued_job_past_deadline_is_shed_not_executed(self, tmp_path):
        import time

        service = SimService(
            ServiceConfig(state_dir=tmp_path / "state", dispatchers=1)
        )
        # Submit while no dispatcher runs, so the deadline burns in queue.
        stale = service.submit(
            "alice", dict(PAYLOAD, deadline_seconds=0.05)
        )
        fresh = service.submit(
            "alice",
            {
                "specs": [{"label": "fresh", "attack": "uaa", "p": 0.07}],
                "config": SMALL,
            },
        )
        time.sleep(0.1)
        service.start()
        try:
            assert stale.wait(30.0) and fresh.wait(120.0)
            assert stale.status == "failed" and stale.shed
            assert "shed" in stale.error
            assert [e for e in stale.events if e["event"] == "shed"]
            # The spec behind it was NOT starved by the dead job...
            assert fresh.status == "done"
            counters = service.manifest()["counters"]
            assert counters["service.shed_jobs"] == 1
            # ...and the shed batch was never simulated.
            assert counters["runner.simulated"] == 1
        finally:
            service.stop()

    def test_deadline_validation(self, service):
        with pytest.raises(ValidationError):
            service.submit("a", dict(PAYLOAD, deadline_seconds=0))
        with pytest.raises(ValidationError):
            service.submit("a", dict(PAYLOAD, deadline_seconds="soon"))

    def test_jobs_without_deadline_never_shed(self, tmp_path):
        import time

        service = SimService(
            ServiceConfig(state_dir=tmp_path / "state", dispatchers=1)
        )
        job = service.submit("alice", PAYLOAD)
        time.sleep(0.05)
        service.start()
        try:
            assert job.wait(120.0)
            assert job.status == "done" and not job.shed
        finally:
            service.stop()
