"""Result store tests: batch keying and the in-flight claim protocol."""

import threading

from repro.service.store import ResultStore, batch_key


class TestBatchKey:
    def test_key_is_content_stable(self):
        specs = [{"label": "a", "attack": "uaa"}]
        config = {"regions": 64, "seed": 7}
        options = {"engine": "fluid-batched"}
        assert batch_key(config, options, specs) == batch_key(
            dict(config), dict(options), list(specs)
        )

    def test_key_changes_with_any_component(self):
        base = batch_key({"seed": 7}, {"engine": "e"}, [{"label": "a"}])
        assert base != batch_key({"seed": 8}, {"engine": "e"}, [{"label": "a"}])
        assert base != batch_key({"seed": 7}, {"engine": "f"}, [{"label": "a"}])
        assert base != batch_key({"seed": 7}, {"engine": "e"}, [{"label": "b"}])


class TestClaimProtocol:
    def test_first_claim_owns_second_waits(self):
        store = ResultStore()
        assert store.claim("k") == ResultStore.OWNER
        assert store.claim("k") == ResultStore.WAIT

    def test_publish_serves_waiters_and_later_claims(self):
        store = ResultStore()
        store.claim("k")
        served = []
        waiter = threading.Thread(target=lambda: served.append(store.wait("k", 10.0)))
        waiter.start()
        store.publish("k", "body")
        waiter.join(timeout=5.0)
        assert served == ["body"]
        assert store.claim("k") == ResultStore.PUBLISHED
        assert store.get("k") == "body"

    def test_release_promotes_a_waiter_to_owner(self):
        store = ResultStore()
        assert store.claim("k") == ResultStore.OWNER
        outcome = []

        def waiter():
            body = store.wait("k", 10.0)
            if body is None:
                outcome.append(store.claim("k"))

        thread = threading.Thread(target=waiter)
        thread.start()
        store.release("k")  # owner failed without publishing
        thread.join(timeout=5.0)
        assert outcome == [ResultStore.OWNER]

    def test_wait_timeout_returns_none_while_owner_runs(self):
        store = ResultStore()
        store.claim("k")
        assert store.wait("k", timeout=0.05) is None

    def test_len_counts_published_only(self):
        store = ResultStore()
        store.claim("a")
        assert len(store) == 0
        store.publish("a", "x")
        store.publish("b", "y")
        assert len(store) == 2
