"""Satellite: concurrent tenants vs. ``kill -9``.

N tenants submit distinct batches concurrently over HTTP; the service
process is hard-killed while dispatch is genuinely mid-flight; a
restart on the same state dir must resume EVERY tenant's job to a body
byte-identical to a direct :func:`run_batch`, with no duplicate runner
executions -- the killed incarnation's per-job ledgers are honored, and
each final event stream carries exactly one ``result`` per spec.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient
from repro.sim.batch import run_batch
from repro.sim.config import ExperimentConfig
from repro.sim.faults import FAULT_SPEC_ENV

TENANTS = 2
#: Big enough that a tenant's batch takes seconds -- the kill below must
#: land while members are still unsimulated, or there is nothing to
#: resume and the test proves nothing.
CONFIG = {"regions": 32768, "lines_per_region": 32}


def tenant_specs(tenant):
    """Distinct batch per tenant: shifted p keeps the batch keys apart."""
    return [
        {
            "label": f"t{tenant}-s{index}",
            "attack": "bpa",
            "sparing": "max-we",
            "p": 0.02 + tenant * 0.001 + index * 0.005,
        }
        for index in range(8)
    ]


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start(port, state_dir):
    env = dict(os.environ)
    env.pop(FAULT_SPEC_ENV, None)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.service",
            "--port", str(port), "--state-dir", str(state_dir),
            "--dispatchers", str(TENANTS),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        env=env,
    )


def _wait_healthy(client, process, deadline=30.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if process.poll() is not None:
            output = process.stdout.read().decode() if process.stdout else ""
            pytest.fail(f"service exited {process.returncode}:\n{output}")
        if client.healthz():
            return
        time.sleep(0.1)
    pytest.fail("service never became healthy")


def _poll_mid_flight(client, job_ids, deadline=60.0):
    """Block until dispatch is demonstrably mid-flight: some job has
    produced its first ``result`` event (status documents count events:
    queued + started + >=1 result makes three) while no job is finished.

    Status polls are milliseconds, so the kill that follows lands with
    most members still unsimulated -- streaming the events instead would
    burn hundreds of milliseconds per sample and let small batches
    finish under the sampler.
    """
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        documents = [client.status(job_id) for job_id in job_ids]
        if any(doc["status"] in ("done", "failed") for doc in documents):
            pytest.fail(
                "a batch finished before the kill; enlarge CONFIG so the "
                "interruption lands mid-dispatch"
            )
        if any(
            doc["status"] == "running" and doc["events"] >= 3
            for doc in documents
        ):
            return
        time.sleep(0.02)
    pytest.fail("no result ever arrived; nothing to interrupt")


class TestKillNineMidDispatch:
    def test_restart_resumes_every_tenant_without_duplicate_execution(
        self, tmp_path
    ):
        port = _free_port()
        state = tmp_path / "state"
        process = _start(port, state)
        client = ServiceClient(port=port, timeout=60.0)
        try:
            _wait_healthy(client, process)
            jobs = {}
            for tenant in range(TENANTS):
                document = client.submit(
                    tenant_specs(tenant), CONFIG, tenant=f"tenant-{tenant}"
                )
                jobs[tenant] = document["job_id"]

            _poll_mid_flight(client, list(jobs.values()))
            os.kill(process.pid, signal.SIGKILL)
            process.wait(timeout=10.0)
            assert process.returncode == -signal.SIGKILL
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10.0)

        # Same state dir, fresh incarnation: every job must converge.
        process = _start(port, state)
        try:
            _wait_healthy(client, process)
            for tenant, job_id in jobs.items():
                document = client.wait(job_id, timeout=120.0)
                assert document["status"] == "done", document
                body = client.results(job_id)
                expected = run_batch(
                    tenant_specs(tenant), ExperimentConfig(**CONFIG)
                ).to_json()
                assert body == expected  # byte-identical

                # No duplicate runner executions: the resumed dispatch
                # emits exactly one ``result`` per spec (checkpoint and
                # cache hits included), so a member executed twice
                # would surface as a duplicated label here.
                events = list(client.stream_events(job_id))
                labels = [
                    event["label"]
                    for event in events
                    if event.get("event") == "result"
                ]
                assert sorted(labels) == sorted(
                    spec["label"] for spec in tenant_specs(tenant)
                )

            manifest = client.metrics()
            counters = manifest["counters"]
            assert counters["service.resumed"] >= 1
            # The killed incarnation's ledgers were honored: at least
            # one member resumed instead of re-simulating.
            assert counters.get("runner.checkpoint_hits", 0) >= 1
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=30.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=10.0)
