"""Public-API smoke tests: the package surface stays importable and sane."""

import importlib
import pkgutil

import pytest

import repro


def all_submodules():
    names = []
    for module_info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module_info.name)
    return sorted(names)


class TestImports:
    @pytest.mark.parametrize("name", all_submodules())
    def test_every_submodule_imports(self, name):
        importlib.import_module(name)

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ exports missing attribute {name}"

    @pytest.mark.parametrize(
        "package",
        [
            "repro.attacks",
            "repro.analysis",
            "repro.core",
            "repro.device",
            "repro.endurance",
            "repro.salvage",
            "repro.sim",
            "repro.sparing",
            "repro.trace",
            "repro.detect",
            "repro.wearlevel",
            "repro.writereduce",
            "repro.util",
        ],
    )
    def test_package_all_resolves(self, package):
        module = importlib.import_module(package)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{package}.__all__ missing {name}"

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestDocstrings:
    @pytest.mark.parametrize("name", all_submodules())
    def test_every_module_documented(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} has no module docstring"

    def test_public_exports_documented(self):
        undocumented = [
            name
            for name in repro.__all__
            if name != "__version__" and not (getattr(repro, name).__doc__ or "").strip()
        ]
        assert not undocumented, f"undocumented exports: {undocumented}"
