"""Fault-injection tests: behaviour under out-of-band line deaths.

`NVMBank.force_kill` models infant-mortality or radiation-style failures
that bypass the wear accounting.  These tests verify every layer reacts
sanely: the bank refuses writes to killed lines, the controller surfaces
the failure, and salvage bonuses interact with forced kills correctly.
"""

import numpy as np
import pytest

from repro.core.controller import MaxWEController
from repro.core.maxwe import MaxWE
from repro.device.bank import NVMBank
from repro.device.errors import LineWornOutError
from repro.endurance.emap import EnduranceMap


def make_bank(lines=14, lines_per_region=2):
    endurance = np.linspace(50.0, 180.0, lines)
    return NVMBank(EnduranceMap(endurance, regions=lines // lines_per_region))


class TestBankFaultInjection:
    def test_killed_line_rejects_writes(self):
        bank = make_bank()
        bank.force_kill(3)
        with pytest.raises(LineWornOutError):
            bank.write(3)

    def test_killed_line_counts_as_dead(self):
        bank = make_bank()
        bank.force_kill(0)
        assert bank.dead_count == 1
        assert 0 in bank.dead_lines()

    def test_salvage_revives_a_killed_line(self):
        bank = make_bank()
        bank.force_kill(1)
        bank.salvage(1, extra_budget=10.0)
        assert bank.is_alive(1)
        assert bank.remaining(1) == pytest.approx(10.0)

    def test_force_kill_after_salvage_sticks(self):
        bank = make_bank()
        bank.salvage(2, extra_budget=100.0)
        bank.force_kill(2)
        assert not bank.is_alive(2)

    def test_reset_clears_injected_faults(self):
        bank = make_bank()
        bank.force_kill(5)
        bank.reset()
        assert bank.is_alive(5)

    def test_vectorized_wear_rejects_killed_targets(self):
        bank = make_bank()
        bank.force_kill(4)
        with pytest.raises(LineWornOutError):
            bank.apply_wear(np.array([4]), 1.0)


class TestControllerUnderInjectedFaults:
    def test_write_to_slot_with_killed_backing_fails_loudly(self):
        bank = make_bank()
        controller = MaxWEController(bank, MaxWE(2 / 7, 0.5), rng=1)
        victim_line = int(controller.scheme.initial_backing[0])
        bank.force_kill(victim_line)
        # The controller's write path hits the dead line; the bank's
        # guard converts silent corruption into an explicit error.
        with pytest.raises(LineWornOutError):
            controller.write(0)

    def test_other_slots_unaffected_by_injection(self):
        bank = make_bank()
        controller = MaxWEController(bank, MaxWE(2 / 7, 0.5), rng=1)
        victim_line = int(controller.scheme.initial_backing[0])
        bank.force_kill(victim_line)
        for logical in range(1, controller.user_lines):
            controller.write(logical)  # must not raise
        assert controller.writes_served == controller.user_lines - 1
