"""Tests for the command-line interface."""

import pytest

from repro.cli import main


SMALL = ["--regions", "256", "--lines-per-region", "4"]


class TestSubcommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "--p", "0.1", "--q", "50"]) == 0
        out = capsys.readouterr().out
        assert "max-we" in out
        assert "0.381" in out

    def test_simulate_default(self, capsys):
        assert main(["simulate", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "lifetime:" in out
        assert "Max-WE" in out

    def test_simulate_bpa_wawl(self, capsys):
        assert main(["simulate", *SMALL, "--attack", "bpa", "--wearlevel", "wawl"]) == 0
        out = capsys.readouterr().out
        assert "BPA" in out

    def test_simulate_every_sparing_scheme(self, capsys):
        for sparing in ("none", "pcd", "ps", "ps-worst", "max-we"):
            assert main(["simulate", *SMALL, "--sparing", sparing]) == 0

    def test_sweep_spare(self, capsys):
        assert main(["sweep-spare", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "50%" in out

    def test_sweep_swr(self, capsys):
        assert main(["sweep-swr", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "wawl" in out

    def test_compare_uaa(self, capsys):
        assert main(["compare-uaa", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "no-protection" in out
        assert "improvement" in out

    def test_compare_bpa(self, capsys):
        assert main(["compare-bpa", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "gmean" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "0.16 MB" in out
        assert "1.10 MB" in out

    def test_report_to_stdout(self, capsys):
        assert main(["report", "--regions", "64", "--lines-per-region", "2"]) == 0
        out = capsys.readouterr().out
        assert "# Max-WE reproduction report" in out

    def test_trace_record_classify_replay_loop(self, capsys, tmp_path):
        trace_path = tmp_path / "uaa.npz"
        assert (
            main(
                [
                    "record-trace",
                    "--attack",
                    "uaa",
                    "--user-lines",
                    "920",  # 256 regions x 4 lines, minus 26 spare regions
                    "--length",
                    "9200",
                    "--output",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert "recorded 9200 writes" in capsys.readouterr().out

        assert main(["classify-trace", str(trace_path.with_suffix(".npz"))]) == 0
        out = capsys.readouterr().out
        assert "kind:         uniform" in out

        assert (
            main(
                [
                    "replay-trace",
                    str(trace_path.with_suffix(".npz")),
                    "--regions",
                    "256",
                    "--lines-per-region",
                    "4",
                    "--sparing",
                    "max-we",
                ]
            )
            == 0
        )
        assert "lifetime:" in capsys.readouterr().out

    def test_replay_space_mismatch_reports_error(self, capsys, tmp_path):
        trace_path = tmp_path / "small.npz"
        main(
            [
                "record-trace",
                "--user-lines",
                "64",
                "--length",
                "128",
                "--output",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "replay-trace",
                    str(trace_path.with_suffix(".npz")),
                    "--regions",
                    "256",
                    "--lines-per-region",
                    "4",
                ]
            )
            == 1
        )
        assert "adjust" in capsys.readouterr().out

    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "out.md"
        assert (
            main(
                [
                    "report",
                    "--regions",
                    "64",
                    "--lines-per-region",
                    "2",
                    "--output",
                    str(path),
                ]
            )
            == 0
        )
        assert "written to" in capsys.readouterr().out
        assert "Figure 6" in path.read_text()


class TestArgumentHandling:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["destroy"])

    def test_bad_choice_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--attack", "meteor"])
