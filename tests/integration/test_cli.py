"""Tests for the command-line interface."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.cli import main


SMALL = ["--regions", "256", "--lines-per-region", "4"]
TINY = ["--regions", "64", "--lines-per-region", "2"]


class TestSubcommands:
    def test_analyze(self, capsys):
        assert main(["analyze", "--p", "0.1", "--q", "50"]) == 0
        out = capsys.readouterr().out
        assert "max-we" in out
        assert "0.381" in out

    def test_simulate_default(self, capsys):
        assert main(["simulate", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "lifetime:" in out
        assert "Max-WE" in out

    def test_simulate_bpa_wawl(self, capsys):
        assert main(["simulate", *SMALL, "--attack", "bpa", "--wearlevel", "wawl"]) == 0
        out = capsys.readouterr().out
        assert "BPA" in out

    def test_simulate_every_sparing_scheme(self, capsys):
        for sparing in ("none", "pcd", "ps", "ps-worst", "max-we"):
            assert main(["simulate", *SMALL, "--sparing", sparing]) == 0

    def test_sweep_spare(self, capsys):
        assert main(["sweep-spare", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Figure 6" in out
        assert "50%" in out

    def test_sweep_swr(self, capsys):
        assert main(["sweep-swr", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "wawl" in out

    def test_compare_uaa(self, capsys):
        assert main(["compare-uaa", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "no-protection" in out
        assert "improvement" in out

    def test_compare_bpa(self, capsys):
        assert main(["compare-bpa", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "gmean" in out

    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "0.16 MB" in out
        assert "1.10 MB" in out

    def test_report_to_stdout(self, capsys):
        assert main(["report", "--regions", "64", "--lines-per-region", "2"]) == 0
        out = capsys.readouterr().out
        assert "# Max-WE reproduction report" in out

    def test_trace_record_classify_replay_loop(self, capsys, tmp_path):
        trace_path = tmp_path / "uaa.npz"
        assert (
            main(
                [
                    "record-trace",
                    "--attack",
                    "uaa",
                    "--user-lines",
                    "920",  # 256 regions x 4 lines, minus 26 spare regions
                    "--length",
                    "9200",
                    "--output",
                    str(trace_path),
                ]
            )
            == 0
        )
        assert "recorded 9200 writes" in capsys.readouterr().out

        assert main(["classify-trace", str(trace_path.with_suffix(".npz"))]) == 0
        out = capsys.readouterr().out
        assert "kind:         uniform" in out

        assert (
            main(
                [
                    "replay-trace",
                    str(trace_path.with_suffix(".npz")),
                    "--regions",
                    "256",
                    "--lines-per-region",
                    "4",
                    "--sparing",
                    "max-we",
                ]
            )
            == 0
        )
        assert "lifetime:" in capsys.readouterr().out

    def test_replay_space_mismatch_reports_error(self, capsys, tmp_path):
        trace_path = tmp_path / "small.npz"
        main(
            [
                "record-trace",
                "--user-lines",
                "64",
                "--length",
                "128",
                "--output",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "replay-trace",
                    str(trace_path.with_suffix(".npz")),
                    "--regions",
                    "256",
                    "--lines-per-region",
                    "4",
                ]
            )
            == 1
        )
        assert "adjust" in capsys.readouterr().out

    def test_report_to_file(self, capsys, tmp_path):
        path = tmp_path / "out.md"
        assert (
            main(
                [
                    "report",
                    "--regions",
                    "64",
                    "--lines-per-region",
                    "2",
                    "--output",
                    str(path),
                ]
            )
            == 0
        )
        assert "written to" in capsys.readouterr().out
        assert "Figure 6" in path.read_text()


class TestArgumentHandling:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["destroy"])

    def test_bad_choice_exits(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--attack", "meteor"])

    def test_out_of_range_fraction_fails_at_parse_time(self, capsys):
        for argv in (
            ["simulate", "--p", "1.5"],
            ["simulate", "--swr", "-0.1"],
            ["analyze", "--p", "2"],
            ["overhead", "--swr", "nope"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_zero_line_device_fails_at_parse_time(self):
        for argv in (
            ["sweep-spare", "--regions", "0"],
            ["sweep-spare", "--lines-per-region", "-4"],
            ["simulate", "--q", "0"],
        ):
            with pytest.raises(SystemExit):
                main(argv)

    def test_bad_fault_spec_fails_at_parse_time(self):
        with pytest.raises(SystemExit):
            main(["sweep-spare", "--inject-faults", "crash=2"])
        with pytest.raises(SystemExit):
            main(["sweep-spare", "--inject-faults", "explode=0.5"])

    def test_fail_fast_and_keep_going_are_exclusive(self):
        with pytest.raises(SystemExit):
            main(["sweep-spare", "--fail-fast", "--keep-going"])


class TestBatchSpecErrors:
    def test_missing_spec_file_is_an_error_not_a_traceback(self, capsys, tmp_path):
        assert main(["batch", str(tmp_path / "absent.json"), "--no-cache"]) == 1
        assert "not found" in capsys.readouterr().out

    def test_invalid_json_is_reported(self, capsys, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("[{not json")
        assert main(["batch", str(path), "--no-cache"]) == 1
        assert "not valid JSON" in capsys.readouterr().out

    def test_unknown_scheme_is_reported(self, capsys, tmp_path):
        path = tmp_path / "specs.json"
        path.write_text(json.dumps([{"label": "x", "sparing": "bogus"}]))
        assert main(["batch", str(path), "--no-cache", *TINY]) == 1
        assert "unknown sparing" in capsys.readouterr().out

    def test_out_of_range_spec_fraction_is_reported(self, capsys, tmp_path):
        path = tmp_path / "specs.json"
        path.write_text(json.dumps([{"label": "x", "p": 1.5}]))
        assert main(["batch", str(path), "--no-cache", *TINY]) == 1
        assert "must be in [0, 1]" in capsys.readouterr().out


class TestResilienceFlags:
    def test_sweep_with_injected_transients_matches_clean_run(self, capsys):
        assert main(["sweep-spare", *TINY, "--no-cache"]) == 0
        clean = capsys.readouterr().out
        assert (
            main(
                [
                    "sweep-spare",
                    *TINY,
                    "--no-cache",
                    "--retries",
                    "10",
                    "--inject-faults",
                    "transient=0.4,seed=3",
                ]
            )
            == 0
        )
        faulty = capsys.readouterr().out
        assert faulty == clean

    def test_exhausted_retries_exit_1_with_failure_report(self, capsys):
        assert (
            main(
                [
                    "sweep-spare",
                    *TINY,
                    "--no-cache",
                    "--retries",
                    "0",
                    "--inject-faults",
                    "transient=1.0,seed=1",
                ]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "task(s) failed" in err
        assert "TransientFault" in err

    def test_resume_reuses_the_derived_checkpoint(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        assert main(["sweep-spare", *TINY, "--no-cache", "--resume"]) == 0
        first = capsys.readouterr().out
        journals = list(tmp_path.glob("sweep-spare-*.jsonl"))
        assert len(journals) == 1
        before = journals[0].read_text()
        assert main(["sweep-spare", *TINY, "--no-cache", "--resume"]) == 0
        second = capsys.readouterr().out
        # Identical table, and the journal gained nothing (all hits).
        assert [l for l in second.splitlines() if "%" in l] == [
            l for l in first.splitlines() if "%" in l
        ]
        assert journals[0].read_text() == before

    def test_explicit_checkpoint_path(self, capsys, tmp_path):
        journal = tmp_path / "my-run.jsonl"
        assert (
            main(
                ["sweep-spare", *TINY, "--no-cache", "--checkpoint", str(journal)]
            )
            == 0
        )
        assert journal.exists()
        assert '"checkpoint_schema"' in journal.read_text().splitlines()[0]


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals required")
class TestKillAndResume:
    def test_sigterm_mid_sweep_leaves_a_resumable_journal(self, tmp_path):
        """The issue's second acceptance bar: kill a sweep mid-run, re-run
        with --resume, and only unfinished work is re-executed with a final
        table identical to an uninterrupted run."""
        import repro

        src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(
            os.environ,
            PYTHONPATH=src_root,
            REPRO_CHECKPOINT_DIR=str(tmp_path / "ckpt"),
            REPRO_CACHE_DIR=str(tmp_path / "unused-cache"),
        )
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "sweep-spare",
            "--regions",
            "16384",
            "--lines-per-region",
            "16",
            "--engine",
            "fluid-exact",
            "--no-cache",
            "--resume",
        ]
        # Uninterrupted reference run.
        reference = subprocess.run(
            argv, env=env, capture_output=True, text=True, timeout=600
        )
        assert reference.returncode == 0
        (journal,) = (tmp_path / "ckpt").glob("*.jsonl")
        journal.unlink()

        # Start the same sweep, kill it once the journal shows progress.
        proc = subprocess.Popen(
            argv, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
        )
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            journals = list((tmp_path / "ckpt").glob("*.jsonl"))
            if journals and len(journals[0].read_text().splitlines()) >= 2:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.05)
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=600)
        if proc.returncode == 130:  # killed in flight, as intended
            assert "interrupted" in stderr
            assert "--resume" in stderr

        # Resume: finishes the remaining points, table identical.
        resumed = subprocess.run(
            argv, env=env, capture_output=True, text=True, timeout=600
        )
        assert resumed.returncode == 0

        def table(text):
            return [line for line in text.splitlines() if "%" in line]

        assert table(resumed.stdout) == table(reference.stdout)
