"""Full-stack integration: exact controller + wear-leveling + Max-WE.

These tests drive the whole Section 4.2 datapath -- attack stream into a
real wear-leveling mechanism into the hybrid mapping tables into the
bank -- to device failure, and check the pieces compose: translation
stays within bounds, every user write lands somewhere alive, and the
exact lifetime agrees with the fluid engine's prediction.
"""

import itertools

import numpy as np
import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.controller import MaxWEController
from repro.core.maxwe import MaxWE
from repro.device.bank import NVMBank
from repro.device.errors import DeviceWornOutError
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.sim.lifetime import simulate_lifetime
from repro.wearlevel.security_refresh import TLSR
from repro.wearlevel.startgap import StartGap


def small_bank(regions=20, lines_per_region=2, q=10.0, e_low=150.0, seed=5):
    model = LinearEnduranceModel.from_q(q, e_low=e_low)
    emap = linear_endurance_map(regions * lines_per_region, regions, model, rng=seed)
    return NVMBank(emap)


def drive_to_failure(controller, max_writes=5_000_000):
    attack = UniformAddressAttack(random_data=False)
    stream = attack.stream(controller.user_lines, rng=1)
    with pytest.raises(DeviceWornOutError):
        for request in itertools.islice(stream, max_writes):
            controller.write(request.address)
    return controller


class TestControllerWithTLSR:
    def test_runs_to_failure_and_counts_writes(self):
        bank = small_bank()
        controller = MaxWEController(
            bank,
            MaxWE(0.1, 0.9),
            wearleveler=TLSR(lines_per_region=2, refresh_interval=16),
            rng=5,
        )
        drive_to_failure(controller)
        assert controller.failed
        assert controller.writes_served > 0
        # Wear landed only on real lines; nothing overflowed.
        assert bank.wear.max() <= bank.endurance.max() + bank.remaining().max() + 1

    def test_lifetime_close_to_fluid_prediction(self):
        bank = small_bank()
        controller = MaxWEController(
            bank,
            MaxWE(0.1, 0.9),
            wearleveler=TLSR(lines_per_region=2, refresh_interval=16),
            rng=5,
        )
        drive_to_failure(controller)
        fluid = simulate_lifetime(
            bank.endurance_map,
            UniformAddressAttack(),
            MaxWE(0.1, 0.9),
            wearleveler=TLSR(lines_per_region=1, refresh_interval=16),
            rng=5,
        )
        assert controller.normalized_lifetime() == pytest.approx(
            fluid.normalized_lifetime, rel=0.15
        )


class TestControllerWithStartGap:
    def test_runs_to_failure(self):
        bank = small_bank()
        controller = MaxWEController(
            bank,
            MaxWE(0.1, 0.9),
            wearleveler=StartGap(gap_interval=32),
            rng=5,
        )
        # Start-Gap exposes one fewer logical line.
        assert controller.user_lines == controller.scheme.slots - 1
        drive_to_failure(controller)
        assert controller.failed

    def test_translation_always_in_bounds(self):
        bank = small_bank()
        controller = MaxWEController(
            bank,
            MaxWE(0.1, 0.9),
            wearleveler=StartGap(gap_interval=8),
            rng=5,
        )
        for index in range(2000):
            logical = index % controller.user_lines
            physical = controller.read(logical)
            assert 0 <= physical < bank.lines
            controller.write(logical)


class TestMappingTableConsistency:
    def test_tables_reflect_failures_at_device_death(self):
        bank = small_bank()
        scheme = MaxWE(0.1, 0.9)
        controller = MaxWEController(bank, scheme, rng=5)
        drive_to_failure(controller)
        # Every RMT wear-out tag corresponds to a dead RWR line.
        per = bank.endurance_map.lines_per_region
        for region in scheme.plan.rwr_regions:
            for offset in range(per):
                if scheme.rmt.is_worn(int(region), offset):
                    assert not bank.is_alive(int(region) * per + offset)
        # Every LMT entry maps a dead line to its living-or-dead spare.
        for pla in range(bank.lines):
            spare = scheme.lmt.lookup(pla)
            if spare is not None:
                assert not bank.is_alive(pla)

    def test_user_wear_conserved_before_first_death(self):
        bank = small_bank(q=2.0, e_low=10_000.0)
        controller = MaxWEController(bank, MaxWE(0.1, 0.9), rng=5)
        writes = controller.user_lines * 5
        attack = UniformAddressAttack(random_data=False)
        for request in itertools.islice(attack.stream(controller.user_lines, rng=1), writes):
            controller.write(request.address)
        assert bank.wear.sum() == pytest.approx(writes)
