"""Smoke tests: every shipped example must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_quickstart_plus_domain_scenarios():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("example", EXAMPLES)
def test_example_runs(example, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [example])
    runpy.run_path(str(EXAMPLES_DIR / example), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{example} produced no output"


def test_quickstart_reports_paper_facts(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "Max-WE" in out
    assert "X" in out  # the improvement factor


def test_figure3_walkthrough_matches_paper_allocation(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["figure3_walkthrough.py"])
    runpy.run_path(str(EXAMPLES_DIR / "figure3_walkthrough.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "regions [2, 3]" in out
    assert "{1: 2, 5: 3}" in out
