"""End-to-end reproduction of the paper's headline claims.

Each test pins one sentence of the abstract/evaluation to a measured
number from the default experiment configuration.  Tolerances reflect
that our substrate is a simulator calibrated to the paper's *analytic*
model (see EXPERIMENTS.md): the shape and factors must hold, absolute
percentages may drift a few points.
"""

import pytest

from repro.core.overhead import mapping_overhead_report, paper_overhead_geometry
from repro.sim.config import ExperimentConfig
from repro.sim.experiments import (
    bpa_scheme_comparison,
    spare_fraction_sweep,
    uaa_scheme_comparison,
)
from repro.util.stats import geometric_mean


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig()


@pytest.fixture(scope="module")
def uaa_results(config):
    return uaa_scheme_comparison(config)


class TestAbstractClaims:
    def test_uaa_reduces_lifetime_to_about_4_percent(self, uaa_results):
        """'the lifetime of NVMs under UAA is reduced to 4.1% of the ideal
        lifetime' (analytic counterpart: 3.9%)."""
        lifetime = uaa_results["no-protection"].normalized_lifetime
        assert lifetime == pytest.approx(0.041, abs=0.006)

    def test_maxwe_improves_lifetime_about_9_5x(self, uaa_results):
        """'Max-WE can improve the lifetime by 9.5X with the spare-line
        overhead ... as 10% of the total space'."""
        factor = uaa_results["max-we"].improvement_over(uaa_results["no-protection"])
        assert factor == pytest.approx(9.5, rel=0.1)

    def test_mapping_overhead_reduced_85_percent(self):
        """'reduces the storage overhead of the mapping table by 85%'."""
        report = mapping_overhead_report(paper_overhead_geometry(), 0.1, 0.9)
        assert report.reduction == pytest.approx(0.85, abs=0.015)

    def test_mapping_overhead_0016_percent_of_space(self):
        """'mapping overhead as ... 0.016% of the total space'."""
        report = mapping_overhead_report(paper_overhead_geometry(), 0.1, 0.9)
        assert report.mapping_fraction_of_capacity == pytest.approx(
            0.00016, abs=0.00003
        )


class TestSection531:
    def test_uaa_lifetime_ladder(self, uaa_results):
        """Max-WE 43.1% / PCD-PS 30.6% / PS-worst 28.5% measured; 38.1 /
        22.2 / 20.8 analytic.  We must land between the analytic floor and
        the measured ceiling, preserving the ladder."""
        maxwe = uaa_results["max-we"].normalized_lifetime
        pcd = uaa_results["pcd-ps"].normalized_lifetime
        worst = uaa_results["ps-worst"].normalized_lifetime
        assert 0.35 <= maxwe <= 0.48
        assert 0.20 <= pcd <= 0.33
        assert 0.19 <= worst <= 0.31
        assert maxwe > pcd > worst

    def test_maxwe_outperforms_pcd_under_uaa_by_tens_of_percent(self, uaa_results):
        """'Max-WE outperforms PCD/PS and PS-worst with 40.7% and 51.1%
        lifetime improvement' under UAA."""
        maxwe = uaa_results["max-we"].normalized_lifetime
        pcd = uaa_results["pcd-ps"].normalized_lifetime
        worst = uaa_results["ps-worst"].normalized_lifetime
        assert 1.25 <= maxwe / pcd <= 2.1  # paper: 1.41
        assert 1.35 <= maxwe / worst <= 2.2  # paper: 1.51


class TestFigure6:
    @pytest.fixture(scope="class")
    def sweep(self, config):
        return dict(spare_fraction_sweep(config))

    def test_lifetime_monotone_in_spares(self, sweep):
        fractions = sorted(sweep)
        lifetimes = [sweep[f].normalized_lifetime for f in fractions]
        assert lifetimes == sorted(lifetimes)

    def test_headline_points(self, sweep):
        """Figure 6's reported series: {0: 4.1, 1: 14.0, 10: 43.1,
        20: 57.9, 30: 74.1, 40: 86.9, 50: 87.4}% -- shape bands."""
        assert sweep[0.0].normalized_lifetime == pytest.approx(0.041, abs=0.006)
        assert 0.05 <= sweep[0.01].normalized_lifetime <= 0.16
        assert 0.33 <= sweep[0.1].normalized_lifetime <= 0.48
        assert 0.50 <= sweep[0.2].normalized_lifetime <= 0.70
        assert 0.65 <= sweep[0.3].normalized_lifetime <= 0.85
        assert 0.78 <= sweep[0.5].normalized_lifetime <= 0.95

    def test_diminishing_returns(self, sweep):
        gain_early = sweep[0.2].normalized_lifetime - sweep[0.1].normalized_lifetime
        gain_late = sweep[0.5].normalized_lifetime - sweep[0.4].normalized_lifetime
        assert gain_early > gain_late


class TestFigure8:
    @pytest.fixture(scope="class")
    def gmeans(self, config):
        comparison = bpa_scheme_comparison(config)
        return {
            name: geometric_mean(
                [result.normalized_lifetime for result in row.values()]
            )
            for name, row in comparison.items()
        }

    def test_gmean_ladder(self, gmeans):
        """Paper: Max-WE 47.4% > PCD/PS 41.2% > PS-worst 25.6%."""
        assert gmeans["max-we"] > gmeans["pcd-ps"] > gmeans["ps-worst"]

    def test_maxwe_gmean_band(self, gmeans):
        assert gmeans["max-we"] == pytest.approx(0.474, abs=0.06)

    def test_maxwe_beats_pcd_by_paper_margin(self, gmeans):
        """'Max-WE outperforms PCD/PS ... with 14.8% improvement'."""
        improvement = gmeans["max-we"] / gmeans["pcd-ps"] - 1.0
        assert 0.05 <= improvement <= 0.6

    def test_maxwe_beats_ps_worst_by_paper_margin(self, gmeans):
        """'... and 85.0% improvement over PS-worst' -- wide band: this
        margin is the most sensitive to wear-leveler modeling."""
        improvement = gmeans["max-we"] / gmeans["ps-worst"] - 1.0
        assert 0.25 <= improvement <= 1.2
