"""Grammar and determinism tests for chaos scenario documents."""

import json

import pytest

from repro.chaos import (
    BUILTIN_SCENARIOS,
    Scenario,
    ScenarioError,
    Step,
    builtin_scenario,
)
from repro.chaos.scenario import ACTIONS, SERVICE_FLAGS

MINIMAL = {
    "name": "minimal",
    "specs": [{"label": "s0", "attack": "bpa", "p": 0.02}],
}


class TestStepGrammar:
    def test_defaults(self):
        step = Step.from_dict({"action": "sleep"})
        assert step.after == 0.0 and step.timeout == 60.0

    def test_unknown_action_rejected(self):
        with pytest.raises(ScenarioError, match="unknown action"):
            Step.from_dict({"action": "explode"})

    def test_unknown_fields_rejected(self):
        with pytest.raises(ScenarioError, match="unknown step fields"):
            Step.from_dict({"action": "sleep", "delay": 1.0})

    def test_missing_action_rejected(self):
        with pytest.raises(ScenarioError, match="missing 'action'"):
            Step.from_dict({"after": 1.0})

    def test_negative_after_and_zero_timeout_rejected(self):
        with pytest.raises(ScenarioError, match="'after'"):
            Step(action="sleep", after=-0.1)
        with pytest.raises(ScenarioError, match="'timeout'"):
            Step(action="sleep", timeout=0)

    def test_await_events_needs_a_count(self):
        with pytest.raises(ScenarioError, match="'count'"):
            Step.from_dict({"action": "await-events"})

    def test_round_trip(self):
        for action in ACTIONS:
            payload = {"action": action, "after": 0.5, "timeout": 30.0}
            if action == "await-events":
                payload["count"] = 2
            step = Step.from_dict(payload)
            assert Step.from_dict(step.to_dict()) == step


class TestScenarioGrammar:
    def test_minimal_document_validates(self):
        scenario = Scenario.from_dict(MINIMAL)
        assert scenario.tenants == 1
        assert scenario.steps == ()

    def test_unknown_fields_rejected(self):
        with pytest.raises(ScenarioError, match="unknown scenario fields"):
            Scenario.from_dict(dict(MINIMAL, surprise=True))

    def test_empty_specs_and_name_rejected(self):
        with pytest.raises(ScenarioError, match="'specs'"):
            Scenario.from_dict({"name": "x"})
        with pytest.raises(ScenarioError, match="'name'"):
            Scenario.from_dict({"specs": MINIMAL["specs"]})

    def test_service_keys_must_map_to_flags(self):
        with pytest.raises(ScenarioError, match="unknown service fields"):
            Scenario.from_dict(dict(MINIMAL, service={"port": 1234}))
        # Every documented key is accepted.
        scenario = Scenario.from_dict(
            dict(MINIMAL, service={key: 1 for key in SERVICE_FLAGS})
        )
        assert set(scenario.service) == set(SERVICE_FLAGS)

    def test_expect_keys_validated(self):
        with pytest.raises(ScenarioError, match="unknown expect fields"):
            Scenario.from_dict(dict(MINIMAL, expect={"exactly_counters": {}}))

    def test_bounds(self):
        with pytest.raises(ScenarioError, match="'tenants'"):
            Scenario.from_dict(dict(MINIMAL, tenants=0))
        with pytest.raises(ScenarioError, match="'p_stride'"):
            Scenario.from_dict(dict(MINIMAL, p_stride=-0.1))
        with pytest.raises(ScenarioError, match="'jitter'"):
            Scenario.from_dict(dict(MINIMAL, jitter=1.5))
        with pytest.raises(ScenarioError, match="'deadline'"):
            Scenario.from_dict(dict(MINIMAL, deadline=0))

    def test_load_round_trips_through_json(self, tmp_path):
        original = builtin_scenario("combined")
        path = tmp_path / "scenario.json"
        path.write_text(json.dumps(original.to_dict()))
        assert Scenario.load(path) == original

    def test_load_rejects_junk(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text("not json")
        with pytest.raises(ScenarioError, match="cannot load"):
            Scenario.load(path)
        with pytest.raises(ScenarioError, match="cannot load"):
            Scenario.load(tmp_path / "missing.json")


class TestDeterminism:
    def test_step_delay_is_seeded_and_bounded(self):
        scenario = Scenario.from_dict(
            dict(
                MINIMAL,
                seed=7,
                jitter=0.2,
                steps=[{"action": "sleep", "after": 1.0}] * 3,
            )
        )
        replay = Scenario.from_dict(scenario.to_dict())
        delays = [scenario.step_delay(i) for i in range(3)]
        assert delays == [replay.step_delay(i) for i in range(3)]
        # Jitter stretches, never shrinks: after <= delay <= after*(1+j).
        assert all(1.0 <= delay <= 1.2 for delay in delays)
        # Distinct steps draw distinct jitter.
        assert len(set(delays)) > 1

    def test_distinct_seeds_give_distinct_schedules(self):
        base = dict(
            MINIMAL, jitter=0.5, steps=[{"action": "sleep", "after": 1.0}]
        )
        a = Scenario.from_dict(dict(base, seed=1))
        b = Scenario.from_dict(dict(base, seed=2))
        assert a.step_delay(0) != b.step_delay(0)

    def test_zero_jitter_means_verbatim_delays(self):
        scenario = Scenario.from_dict(
            dict(MINIMAL, jitter=0, steps=[{"action": "sleep", "after": 0.7}])
        )
        assert scenario.step_delay(0) == 0.7

    def test_tenant_specs_stride(self):
        scenario = Scenario.from_dict(
            dict(MINIMAL, tenants=3, p_stride=0.001)
        )
        assert scenario.tenant_specs(0)[0]["p"] == 0.02
        assert scenario.tenant_specs(2)[0]["p"] == pytest.approx(0.022)
        # The template is never mutated in place.
        assert scenario.specs[0]["p"] == 0.02
        assert scenario.tenant_name(1) == "tenant-1"

    def test_zero_stride_tenants_share_one_batch(self):
        scenario = Scenario.from_dict(dict(MINIMAL, tenants=2))
        assert scenario.tenant_specs(0) == scenario.tenant_specs(1)


class TestBuiltins:
    def test_every_builtin_validates(self):
        for name in BUILTIN_SCENARIOS:
            scenario = builtin_scenario(name)
            assert scenario.name == name
            assert scenario.specs and scenario.steps

    def test_unknown_builtin_lists_choices(self):
        with pytest.raises(ScenarioError, match="coordinator-kill"):
            builtin_scenario("nope")

    def test_builtin_faults_parse_under_the_fault_grammar(self):
        from repro.sim.faults import FaultSpec

        for name in BUILTIN_SCENARIOS:
            scenario = builtin_scenario(name)
            FaultSpec.parse(scenario.faults)  # must not raise
