"""Conductor tests: CLI surface plus one live end-to-end scenario.

The full builtin matrix runs in CI's ``chaos-smoke`` job; here we keep
one cheap live scenario (SIGTERM drain + restart) so the conductor's
kill/restart/converge machinery is exercised on every ``pytest`` run.
"""

import json

import pytest

from repro.chaos import ChaosConductor, Scenario
from repro.chaos.__main__ import main
from repro.sim.faults import FAULT_SPEC_ENV, install


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


class TestCli:
    def test_list_and_show_exit_zero(self, capsys):
        assert main(["--list"]) == 0
        listing = capsys.readouterr().out
        assert "coordinator-kill" in listing and "combined" in listing

        assert main(["--show", "service-sigterm-drain"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["name"] == "service-sigterm-drain"
        # --show output is itself a loadable scenario document.
        Scenario.from_dict(shown)

    def test_bad_scenario_file_exits_two(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"name": "x"}')  # no specs
        assert main(["--scenario", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestLiveDrainScenario:
    def test_sigterm_drain_converges_and_reports(self, tmp_path):
        """SIGTERM an instance mid-batch: it must drain (exit 0), a
        probe submission must bounce (503/refused, never accepted into
        the void), and the successor must converge every job to the
        byte-identical clean reference."""
        scenario = Scenario.from_dict({
            "name": "drain-under-test",
            "seed": 7,
            "tenants": 2,
            "p_stride": 0.001,
            "specs": [
                {
                    "label": f"s{i}", "attack": "bpa", "sparing": "max-we",
                    "p": 0.02 + i * 0.005,
                }
                for i in range(6)
            ],
            "config": {"regions": 2048, "lines_per_region": 16},
            "service": {"backend": "pool", "jobs": 1, "dispatchers": 1},
            "steps": [
                {"action": "await-events", "count": 1, "timeout": 90},
                {"action": "sigterm"},
                {"action": "submit-probe", "after": 0.2},
                {"action": "await-exit", "timeout": 60},
                {"action": "restart"},
            ],
            "expect": {"drain_exit_zero": True},
        })
        conductor = ChaosConductor(scenario, root=tmp_path)
        report = conductor.run()
        assert report.ok, report.failures
        assert report.chaos["chaos.jobs"] == 2
        assert report.chaos["chaos.matches"] == 2
        assert report.chaos.get("chaos.mismatches", 0) == 0
        # The SIGTERMed incarnation exited 0 (asserted via expect too).
        drained = [
            entry for entry in report.exit_codes
            if entry["cause"] == "await-exit"
        ]
        assert drained and all(entry["exit_code"] == 0 for entry in drained)
        # The drain answered the probe without accepting it.
        probed = (
            report.chaos.get("chaos.probes_503", 0)
            + report.chaos.get("chaos.probes_refused", 0)
            + report.chaos.get("chaos.probes_rejected", 0)
            + report.chaos.get("chaos.probes_accepted", 0)
        )
        assert probed == 1
        assert report.chaos.get("chaos.probes_accepted", 0) == 0

    def test_manifest_written(self, tmp_path):
        scenario = Scenario.from_dict({
            "name": "manifest-smoke",
            "specs": [{"label": "s0", "attack": "bpa", "p": 0.02}],
            "config": {"regions": 256, "lines_per_region": 4},
            "service": {"jobs": 1, "dispatchers": 1},
            "steps": [],
        })
        conductor = ChaosConductor(scenario, root=tmp_path)
        report = conductor.run()
        assert report.ok, report.failures
        out = tmp_path / "chaos.jsonl"
        conductor.write_manifest(out, report)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        manifest, rows = lines[0], lines[1:]
        assert manifest["command"] == "chaos"
        names = {row["name"] for row in rows if row.get("kind") == "counter"}
        assert "chaos.scenarios" in names
        assert "chaos.matches" in names
