"""Tests for the baseline sparing schemes: NoSparing, PCD, PS."""

import numpy as np
import pytest

from repro.endurance.emap import EnduranceMap
from repro.sparing.base import FailDevice, RemoveSlot, ReplaceWith
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS


@pytest.fixture
def emap():
    # 10 regions x 1 line; endurance 1..10 in shuffled physical order.
    endurance = np.array([7.0, 2.0, 9.0, 4.0, 1.0, 10.0, 3.0, 8.0, 5.0, 6.0])
    return EnduranceMap(endurance, regions=10)


class TestNoSparing:
    def test_all_lines_in_service(self, emap):
        scheme = NoSparing()
        scheme.initialize(emap, rng=1)
        assert scheme.slots == 10
        assert scheme.min_user_slots == 10

    def test_first_death_is_fatal(self, emap):
        scheme = NoSparing()
        scheme.initialize(emap, rng=1)
        outcome = scheme.replace(slot=4, dead_line=4)
        assert isinstance(outcome, FailDevice)

    def test_use_before_initialize(self):
        with pytest.raises(RuntimeError, match="initialize"):
            NoSparing().slots


class TestPCD:
    def test_all_lines_in_service_with_slack(self, emap):
        scheme = PCD(spare_fraction=0.2)
        scheme.initialize(emap, rng=1)
        assert scheme.slots == 10
        assert scheme.min_user_slots == 8

    def test_deaths_remove_slots(self, emap):
        scheme = PCD(0.2)
        scheme.initialize(emap, rng=1)
        assert isinstance(scheme.replace(0, 0), RemoveSlot)

    def test_spare_fraction_bounds(self):
        with pytest.raises(ValueError):
            PCD(spare_fraction=1.0)


class TestPSSelection:
    def test_weakest_pool(self, emap):
        scheme = PS(0.3, selection="weakest")
        scheme.initialize(emap, rng=1)
        in_service = set(scheme.initial_backing.tolist())
        # Weakest three lines (endurance 1, 2, 3 at indices 4, 1, 6) spared.
        assert {4, 1, 6}.isdisjoint(in_service)
        assert scheme.slots == 7

    def test_strongest_pool_is_ps_worst(self, emap):
        scheme = PS.worst_case(0.3)
        scheme.initialize(emap, rng=1)
        in_service = set(scheme.initial_backing.tolist())
        # Strongest three (10, 9, 8 at indices 5, 2, 7) wasted as spares.
        assert {5, 2, 7}.isdisjoint(in_service)

    def test_random_pool_deterministic_per_seed(self, emap):
        a = PS.average_case(0.3)
        a.initialize(emap, rng=9)
        b = PS.average_case(0.3)
        b.initialize(emap, rng=9)
        np.testing.assert_array_equal(a.initial_backing, b.initial_backing)

    def test_invalid_policies(self):
        with pytest.raises(ValueError, match="selection"):
            PS(selection="best")
        with pytest.raises(ValueError, match="allocation"):
            PS(allocation="fifo")


class TestPSAllocation:
    def test_strongest_first_order(self, emap):
        scheme = PS(0.3, selection="weakest", allocation="strongest-first")
        scheme.initialize(emap, rng=1)
        first = scheme.replace(0, 0)
        second = scheme.replace(1, 1)
        assert isinstance(first, ReplaceWith) and isinstance(second, ReplaceWith)
        endurance = emap.line_endurance
        assert endurance[first.line] >= endurance[second.line]

    def test_weakest_first_order(self, emap):
        scheme = PS(0.3, selection="weakest", allocation="weakest-first")
        scheme.initialize(emap, rng=1)
        first = scheme.replace(0, 0)
        assert isinstance(first, ReplaceWith)
        assert emap.line_endurance[first.line] == 1.0

    def test_pool_exhaustion_fails_device(self, emap):
        scheme = PS(0.2, selection="weakest")
        scheme.initialize(emap, rng=1)
        assert isinstance(scheme.replace(0, 0), ReplaceWith)
        assert isinstance(scheme.replace(1, 1), ReplaceWith)
        outcome = scheme.replace(2, 2)
        assert isinstance(outcome, FailDevice)
        assert "exhausted" in outcome.reason

    def test_pool_remaining_tracks(self, emap):
        scheme = PS(0.3, selection="weakest")
        scheme.initialize(emap, rng=1)
        assert scheme.pool_remaining == 3
        scheme.replace(0, 0)
        assert scheme.pool_remaining == 2

    def test_min_user_slots_matches_user_capacity(self, emap):
        scheme = PS(0.3)
        scheme.initialize(emap, rng=1)
        assert scheme.min_user_slots == 7


class TestDescribe:
    def test_labels(self, emap):
        assert "no protection" in NoSparing().describe()
        assert "PCD" in PCD(0.1).describe()
        scheme = PS.worst_case(0.1)
        assert "strongest" in scheme.describe()
