"""Tests for the fluid lifetime engine against closed-form anchors.

On a linear endurance map the fluid engine must land on the Eq. 4-8
predictions (up to region discretization); on a variation-free map it
must report a 100% normalized lifetime.  These anchors pin the engine's
virtual-time integration, replacement bookkeeping and capacity-shrink
handling independently of the reference simulator.
"""

import numpy as np
import pytest

from repro.analysis.lifetime import (
    maxwe_normalized,
    pcd_ps_normalized,
    ps_worst_normalized,
    uaa_fraction,
)
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.generators import uniform_endurance_map
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS


def linear_map(regions=512, lines_per_region=4, q=50.0, seed=11):
    model = LinearEnduranceModel.from_q(q, e_low=100.0)
    return linear_endurance_map(regions * lines_per_region, regions, model, rng=seed)


class TestAnalyticAnchors:
    def test_no_protection_matches_eq5(self):
        emap = linear_map()
        result = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=1)
        assert result.normalized_lifetime == pytest.approx(uaa_fraction(50.0), rel=0.02)

    def test_maxwe_matches_eq6_regime(self):
        emap = linear_map()
        result = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1, 0.9), rng=1)
        assert result.normalized_lifetime == pytest.approx(
            maxwe_normalized(0.1, 50.0), rel=0.05
        )

    def test_pcd_matches_eq7(self):
        emap = linear_map()
        result = simulate_lifetime(emap, UniformAddressAttack(), PCD(0.1), rng=1)
        assert result.normalized_lifetime == pytest.approx(
            pcd_ps_normalized(0.1, 50.0), rel=0.05
        )

    def test_ps_worst_matches_eq8(self):
        emap = linear_map()
        result = simulate_lifetime(
            emap, UniformAddressAttack(), PS.worst_case(0.1), rng=1
        )
        assert result.normalized_lifetime == pytest.approx(
            ps_worst_normalized(0.1, 50.0), rel=0.05
        )

    def test_uniform_endurance_is_ideal(self):
        """No variation: UAA is perfect leveling; lifetime = 100% of ideal."""
        emap = uniform_endurance_map(512, 64, endurance=1000.0)
        result = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=1)
        assert result.normalized_lifetime == pytest.approx(1.0, rel=1e-6)


class TestBookkeeping:
    def test_no_protection_single_death(self):
        result = simulate_lifetime(
            linear_map(), UniformAddressAttack(), NoSparing(), rng=1
        )
        assert result.deaths == 1
        assert result.replacements == 0
        assert "no spares" in result.failure_reason

    def test_pcd_death_count_is_slack_plus_one(self):
        emap = linear_map(regions=100, lines_per_region=1)
        result = simulate_lifetime(emap, UniformAddressAttack(), PCD(0.1), rng=1)
        assert result.deaths == 11  # 10 removals tolerated, the 11th fails
        assert "capacity degraded" in result.failure_reason

    def test_ps_replacement_count_is_pool_size(self):
        emap = linear_map(regions=100, lines_per_region=1)
        result = simulate_lifetime(
            emap, UniformAddressAttack(), PS(0.1, selection="weakest"), rng=1
        )
        assert result.replacements == 10
        assert result.deaths >= 11

    def test_metadata_labels(self):
        result = simulate_lifetime(
            linear_map(), UniformAddressAttack(), MaxWE(0.1), rng=1
        )
        assert result.metadata["engine"] == "fluid-batched"
        assert "Max-WE" in str(result.metadata["sparing"])
        assert "UAA" in str(result.metadata["attack"])

    def test_deterministic_given_seed(self):
        emap = linear_map()
        a = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=5)
        b = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=5)
        assert a.writes_served == b.writes_served


class TestOrderings:
    """The paper's qualitative conclusions must hold on every endurance map."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_maxwe_beats_pcd_beats_nothing_under_uaa(self, seed):
        emap = linear_map(seed=seed)
        attack = UniformAddressAttack()
        nothing = simulate_lifetime(emap, attack, NoSparing(), rng=seed)
        pcd = simulate_lifetime(emap, attack, PCD(0.1), rng=seed)
        maxwe = simulate_lifetime(emap, attack, MaxWE(0.1), rng=seed)
        assert (
            maxwe.normalized_lifetime
            > pcd.normalized_lifetime
            > nothing.normalized_lifetime
        )

    def test_ordering_holds_on_lognormal_distribution(self):
        from repro.endurance.generators import lognormal_endurance_map

        emap = lognormal_endurance_map(2048, 512, sigma=1.0, rng=3)
        attack = UniformAddressAttack()
        nothing = simulate_lifetime(emap, attack, NoSparing(), rng=3)
        worst = simulate_lifetime(emap, attack, PS.worst_case(0.1), rng=3)
        maxwe = simulate_lifetime(emap, attack, MaxWE(0.1), rng=3)
        assert maxwe.normalized_lifetime > worst.normalized_lifetime
        assert worst.normalized_lifetime > nothing.normalized_lifetime

    def test_more_spares_more_lifetime(self):
        emap = linear_map()
        attack = UniformAddressAttack()
        lifetimes = [
            simulate_lifetime(emap, attack, MaxWE(p), rng=1).normalized_lifetime
            for p in (0.05, 0.1, 0.2, 0.3)
        ]
        assert lifetimes == sorted(lifetimes)


class TestAccumulationAccuracy:
    """Float-accuracy regressions for the served-writes integral.

    The integral historically accumulated with naive addition, so a flat
    map whose exact answer is an integer drifted by ~1 ulp per event
    (e.g. 200.00000000000006 for a 20x10.0 device).  The exact engine now
    compensates the sum (Kahan) and both engines seed the active weight
    with math.fsum, so these cases are exact.
    """

    @pytest.mark.parametrize("engine", ["fluid-exact", "fluid-batched"])
    @pytest.mark.parametrize("lines", [20, 33, 64])
    def test_flat_unprotected_device_serves_exactly_its_endurance(
        self, lines, engine
    ):
        from repro.endurance.emap import EnduranceMap

        emap = EnduranceMap(np.full(lines, 10.0), regions=lines)
        result = simulate_lifetime(
            emap, UniformAddressAttack(), NoSparing(), rng=0, engine=engine
        )
        assert result.writes_served == 10.0 * lines

    def test_accounting_tolerance_scales_with_device_and_events(self):
        from repro.sim.lifetime import accounting_tolerance

        assert accounting_tolerance(0.0, 0) > 0.0
        assert accounting_tolerance(1e6, 64) > accounting_tolerance(1e3, 64)
        assert accounting_tolerance(1e3, 10_000) > accounting_tolerance(1e3, 64)
        # Tight enough to catch a quarter-endurance corruption, loose
        # enough for legitimate accumulation noise.
        assert accounting_tolerance(1e6, 10_000) < 1.0
