"""Tests for SimulationResult."""

import pytest

from repro.sim.result import SimulationResult


def make_result(writes=50.0, total=100.0, **kwargs):
    defaults = dict(
        writes_served=writes,
        total_endurance=total,
        deaths=3,
        replacements=2,
        failure_reason="test",
    )
    defaults.update(kwargs)
    return SimulationResult(**defaults)


class TestMetric:
    def test_normalized_lifetime(self):
        assert make_result().normalized_lifetime == pytest.approx(0.5)

    def test_improvement_over_result(self):
        strong = make_result(writes=40.0)
        weak = make_result(writes=4.0)
        assert strong.improvement_over(weak) == pytest.approx(10.0)

    def test_improvement_over_float(self):
        assert make_result(writes=30.0).improvement_over(0.1) == pytest.approx(3.0)

    def test_improvement_over_zero_rejected(self):
        with pytest.raises(ValueError):
            make_result().improvement_over(0.0)


class TestValidation:
    def test_negative_writes_rejected(self):
        with pytest.raises(ValueError):
            make_result(writes=-1.0)

    def test_zero_endurance_rejected(self):
        with pytest.raises(ValueError):
            make_result(total=0.0)


class TestMetadata:
    def test_label_access(self):
        result = make_result(metadata={"attack": "uaa"})
        assert result.label("attack") == "uaa"
        assert result.label("missing") is None
        assert result.label("missing", "x") == "x"

    def test_str_mentions_key_facts(self):
        text = str(make_result())
        assert "50.0" in text or "deaths=3" in text
        assert "test" in text
