"""Unit tests for the incremental death-frontier index.

The frontier's contract with the engines is narrow but strict: pops
come out in exactly the batched kernel's ``lexsort((slot, time))``
order, stale entries invalidate by consulting the authoritative array,
and :meth:`~repro.sim.frontier.DeathFrontier.pop_epoch` either returns
*provably* the same epoch the vectorized selection would have built or
``None`` with its state fully restored.  These tests pin each clause
directly, without an engine in the loop.
"""

import math

import numpy as np
import pytest

from repro.sim.frontier import DeathFrontier


def drain(frontier):
    """Pop every valid entry, in order."""
    out = []
    while (entry := frontier.pop()) is not None:
        time, slot = entry
        out.append((time, slot))
        frontier._times[slot] = math.inf
    return out


class TestOrderAndStaleness:
    def test_pop_order_matches_lexsort(self):
        rng = np.random.default_rng(42)
        times = np.asarray(rng.integers(1, 12, size=64), dtype=float)
        order = np.lexsort((np.arange(times.size), times))
        expected = [(float(times[i]), int(i)) for i in order]
        frontier = DeathFrontier(times.copy())
        # drain() mutates the frontier's own array, not ours.
        frontier._times = times = times.copy()
        assert drain(frontier) == expected

    def test_time_ties_break_by_slot_id(self):
        times = np.array([5.0, 5.0, 5.0, 2.0, 5.0])
        frontier = DeathFrontier(times)
        assert frontier.pop() == (2.0, 3)
        times[3] = math.inf
        assert frontier.pop() == (5.0, 0)
        times[0] = math.inf
        assert frontier.pop() == (5.0, 1)

    def test_stale_entry_invalidated_by_array_mutation(self):
        times = np.array([1.0, 2.0, 3.0])
        frontier = DeathFrontier(times)
        # Slot 0's death moves later (a replacement): the indexed entry
        # is stale the moment the array changes.
        times[0] = 2.5
        frontier.push(0, 2.5)
        assert frontier.pop() == (2.0, 1)
        times[1] = math.inf
        assert frontier.pop() == (2.5, 0)

    def test_removed_slot_entry_invalidates_via_inf(self):
        times = np.array([1.0, 2.0])
        frontier = DeathFrontier(times)
        times[0] = math.inf  # slot removed, no push needed
        assert frontier.pop() == (2.0, 1)

    def test_alive_mask_hides_dead_slots(self):
        times = np.array([1.0, 2.0, 3.0])
        alive = np.array([True, False, True])
        frontier = DeathFrontier(times, alive=alive)
        assert frontier.pop() == (1.0, 0)
        times[0] = math.inf
        assert frontier.pop() == (3.0, 2)

    def test_alive_mask_rejected_when_bounded(self):
        with pytest.raises(ValueError):
            DeathFrontier(np.ones(8), limit=4, alive=np.ones(8, dtype=bool))


class TestBoundedWorkSet:
    def test_sentinel_excludes_only_later_times(self):
        times = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        frontier = DeathFrontier(times, limit=3)
        assert frontier.sentinel == 4.0
        assert len(frontier) == 3

    def test_refresh_on_drain_is_complete(self):
        rng = np.random.default_rng(7)
        times = rng.uniform(1.0, 100.0, size=200)
        expected = [
            (float(times[i]), int(i))
            for i in np.lexsort((np.arange(times.size), times))
        ]
        frontier = DeathFrontier(times.copy(), limit=16)
        frontier._times = times = frontier._times.copy()
        assert drain(frontier) == expected
        assert frontier.refreshes > 0

    def test_push_at_or_past_sentinel_is_dropped(self):
        times = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        frontier = DeathFrontier(times, limit=3)
        size = len(frontier)
        frontier.push(5, frontier.sentinel)       # == sentinel: excluded
        frontier.push(5, frontier.sentinel + 1.0)  # past: excluded
        assert len(frontier) == size
        frontier.push(5, frontier.sentinel - 3.9)  # below: indexed
        assert len(frontier) == size + 1

    def test_compaction_on_cap_overflow(self):
        times = np.linspace(1.0, 10.0, 10)
        frontier = DeathFrontier(times, cap=12)
        for _ in range(5):
            times[0] += 0.001
            frontier.push(0, times[0])
        assert frontier.compactions >= 1
        assert frontier.pop() == (float(times[0]), 0)

    def test_degenerate_tie_class(self):
        times = np.full(32, 7.0)
        frontier = DeathFrontier(times, limit=4)
        assert frontier.degenerate
        assert frontier.pop_epoch(1.0, 1.0, cap=8) is None
        with pytest.raises(RuntimeError):
            frontier.pop()


class TestPopEpoch:
    def test_matches_vectorized_selection(self):
        """pop_epoch == the batched kernel's chronological safe prefix."""
        rng = np.random.default_rng(3)
        times = np.asarray(rng.integers(1, 40, size=120), dtype=float)
        floor, w_max = 6.0, 2.0
        frontier = DeathFrontier(times.copy())
        frontier._times = times = frontier._times.copy()
        while True:
            epoch = frontier.pop_epoch(floor, w_max, cap=256)
            assert epoch is not None  # unbounded + big cap: never bails
            slots, popped = epoch
            if not slots:
                break
            # Reference: the vectorized selection over the live array,
            # with the popped entries conceptually still present.
            ref_times = times.copy()
            for s, t in zip(slots, popped):
                ref_times[s] = t
            finite = np.flatnonzero(np.isfinite(ref_times))
            order = finite[np.lexsort((finite, ref_times[finite]))]
            bound = ref_times[order[0]] + floor / w_max
            take = max(int(np.searchsorted(ref_times[order], bound, "left")), 1)
            assert slots == order[:take].tolist()
            assert popped == ref_times[order[:take]].tolist()
            times[np.asarray(slots)] = math.inf

    def test_floor_none_yields_single_deaths(self):
        times = np.array([3.0, 1.0, 2.0])
        frontier = DeathFrontier(times)
        assert frontier.pop_epoch(None, 1.0, cap=4) == ([1], [1.0])
        times[1] = math.inf
        assert frontier.pop_epoch(None, 1.0, cap=4) == ([2], [2.0])

    def test_exhausted_returns_empty(self):
        times = np.array([math.inf, math.inf])
        frontier = DeathFrontier(times)
        assert frontier.pop_epoch(1.0, 1.0, cap=4) == ([], [])

    def test_cap_bail_restores_state(self):
        """A regrown batch bails to the vectorized path -- and the
        frontier must look untouched afterwards (regrow-after-sequential)."""
        times = np.linspace(1.0, 2.0, 10)
        frontier = DeathFrontier(times)
        before = len(frontier)
        assert frontier.pop_epoch(100.0, 1.0, cap=4) is None
        assert len(frontier) == before
        # The restored frontier still pops in exact order.
        assert frontier.pop() == (1.0, 0)

    def test_bound_past_sentinel_bails(self):
        times = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        frontier = DeathFrontier(times, limit=3)  # sentinel = 4.0
        assert frontier.pop_epoch(10.0, 1.0, cap=5) is None
        assert frontier.pop() == (1.0, 0)

    def test_ceiling_bails_before_popping(self):
        times = np.array([5.0, 6.0])
        frontier = DeathFrontier(times)
        assert frontier.pop_epoch(0.5, 1.0, cap=4, ceiling=5.0) is None
        assert frontier.pop_epoch(0.5, 1.0, cap=4, ceiling=8.0) == ([0], [5.0])

    def test_counters_start_consistent(self):
        frontier = DeathFrontier(np.ones(4))
        assert (frontier.builds, frontier.refreshes, frontier.compactions) == (
            1,
            0,
            0,
        )
