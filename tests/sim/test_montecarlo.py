"""Tests for the Monte-Carlo driver."""

import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.montecarlo import MonteCarloResult, monte_carlo_lifetime
from repro.sparing.none import NoSparing

import numpy as np


SMALL = ExperimentConfig(regions=128, lines_per_region=2, seed=7)


def run(replicas=6, sparing=lambda: MaxWE(0.1), config=SMALL, **kwargs):
    return monte_carlo_lifetime(
        UniformAddressAttack,
        sparing,
        config=config,
        replicas=replicas,
        **kwargs,
    )


class TestDriver:
    def test_replica_count(self):
        study = run(replicas=5)
        assert study.replicas == 5
        assert len(study.results) == 5

    def test_deterministic_given_config_seed(self):
        a = run(replicas=4)
        b = run(replicas=4)
        np.testing.assert_array_equal(a.lifetimes, b.lifetimes)

    def test_replicas_actually_vary(self):
        study = run(replicas=6)
        assert study.std > 0.0

    def test_mean_in_expected_band(self):
        study = run(replicas=8)
        assert 0.3 <= study.mean <= 0.5  # Max-WE at 10% spares, q=50

    def test_custom_emap_factory_removes_placement_variance(self):
        fixed = SMALL.make_emap()
        study = monte_carlo_lifetime(
            UniformAddressAttack,
            NoSparing,
            config=SMALL,
            emap_factory=lambda seed: fixed,
            replicas=4,
        )
        # Same map + deterministic attack + no random sparing -> no variance.
        assert study.std == pytest.approx(0.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run(replicas=0)
        with pytest.raises(ValueError, match="confidence"):
            run(replicas=2, confidence=0.5)


class TestSummary:
    def test_ci_brackets_mean(self):
        study = run(replicas=8)
        assert study.ci_low <= study.mean <= study.ci_high

    def test_higher_confidence_wider_interval(self):
        narrow = run(replicas=8, confidence=0.90)
        wide = run(replicas=8, confidence=0.99)
        assert wide.ci_half_width > narrow.ci_half_width

    def test_single_replica_zero_std(self):
        study = run(replicas=1)
        assert study.std == 0.0
        assert study.ci_half_width == 0.0

    def test_str_mentions_ci(self):
        text = str(run(replicas=3))
        assert "95%" in text
        assert "n=3" in text

    def test_more_replicas_tighter_se(self):
        few = run(replicas=4)
        many = run(replicas=16)
        assert many.standard_error < few.standard_error * 1.5


class TestResultEdgeCases:
    def test_single_replica_degenerate_interval(self):
        """n=1: zero std, zero standard error, CI collapses onto the mean."""
        result = run(replicas=1)
        study = MonteCarloResult(
            lifetimes=result.lifetimes, confidence=0.95, results=result.results
        )
        assert study.replicas == 1
        assert study.std == 0.0
        assert study.standard_error == 0.0
        assert study.ci_low == study.mean == study.ci_high

    def test_invalid_confidence_rejected(self):
        for confidence in (0.5, 0.951, 1.0, 0.0):
            with pytest.raises(ValueError, match="confidence"):
                run(replicas=2, confidence=confidence)

    def test_unsupported_confidence_result_fails_on_use(self):
        study = run(replicas=3)
        odd = MonteCarloResult(
            lifetimes=study.lifetimes, confidence=0.42, results=study.results
        )
        with pytest.raises(KeyError):
            _ = odd.ci_half_width


class TestScienceWithVariance:
    def test_maxwe_beats_no_protection_with_ci_separation(self):
        """The paper's headline survives sampling variance: the CIs of
        Max-WE and no-protection do not overlap."""
        maxwe = run(replicas=8, sparing=lambda: MaxWE(0.1))
        nothing = run(replicas=8, sparing=NoSparing)
        assert maxwe.ci_low > nothing.ci_high
