"""Tests for experiment configuration."""

import pytest

from repro.device.errors import ConfigurationError
from repro.sim.config import ExperimentConfig, default_endurance_map


class TestDefaultEnduranceMap:
    def test_linear_default_shape(self):
        emap = default_endurance_map()
        assert emap.regions == 2048
        assert emap.lines == 2048 * 8
        assert emap.q_ratio == pytest.approx(50.0, rel=1e-6)

    def test_zhang_li_family(self):
        emap = default_endurance_map(
            regions=256, lines_per_region=2, endurance_model="zhang-li"
        )
        assert emap.regions == 256
        assert emap.q_ratio > 10

    def test_lognormal_family(self):
        emap = default_endurance_map(
            regions=128, lines_per_region=2, endurance_model="lognormal"
        )
        assert emap.lines == 256

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            default_endurance_map(endurance_model="weibull")

    def test_seed_reproducibility(self):
        import numpy as np

        a = default_endurance_map(regions=64, lines_per_region=2, seed=5)
        b = default_endurance_map(regions=64, lines_per_region=2, seed=5)
        np.testing.assert_array_equal(a.line_endurance, b.line_endurance)


class TestExperimentConfig:
    def test_defaults_match_paper(self):
        config = ExperimentConfig()
        assert config.regions == 2048
        assert config.q == 50.0
        assert config.spare_fraction == 0.1
        assert config.swr_fraction == 0.9

    def test_total_lines(self):
        assert ExperimentConfig(regions=4, lines_per_region=3).total_lines == 12

    def test_with_override(self):
        config = ExperimentConfig().with_(spare_fraction=0.2)
        assert config.spare_fraction == 0.2
        assert config.regions == 2048

    def test_make_emap_respects_config(self):
        config = ExperimentConfig(regions=64, lines_per_region=4, q=10.0)
        emap = config.make_emap()
        assert emap.regions == 64
        assert emap.q_ratio == pytest.approx(10.0, rel=1e-6)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("regions", 0),
            ("spare_fraction", 1.0),
            ("swr_fraction", 1.5),
            ("q", 0.5),
            ("endurance_model", "weird"),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(**{field: value})
