"""Cross-validation: the fluid engine against the exact reference simulator.

The fluid engine's one assumption is stationarity of the wear
distribution.  These tests run both engines on identical small devices
and require agreement -- tight under UAA (where the stationary
distribution is exact), looser under BPA with randomized wear-leveling
(where remap granularity adds genuine variance).
"""

import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.sim.lifetime import simulate_lifetime
from repro.sim.reference import ReferenceSimulator
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.security_refresh import TLSR


def small_map(regions=40, lines_per_region=2, q=20.0, seed=3, e_low=200.0):
    model = LinearEnduranceModel.from_q(q, e_low=e_low)
    return linear_endurance_map(regions * lines_per_region, regions, model, rng=seed)


def reference_lifetime(emap, attack, sparing, wearleveler=None, seed=3):
    simulator = ReferenceSimulator(
        emap, attack, sparing, wearleveler, rng=seed, max_writes=10_000_000
    )
    return simulator.run()


class TestUAAAgreement:
    def test_no_protection(self):
        emap = small_map()
        fluid = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=3)
        exact = reference_lifetime(
            emap, UniformAddressAttack(random_data=False), NoSparing()
        )
        assert exact.normalized_lifetime == pytest.approx(
            fluid.normalized_lifetime, rel=0.02
        )

    def test_maxwe(self):
        emap = small_map()
        fluid = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=3)
        exact = reference_lifetime(
            emap, UniformAddressAttack(random_data=False), MaxWE(0.1)
        )
        assert exact.normalized_lifetime == pytest.approx(
            fluid.normalized_lifetime, rel=0.05
        )

    def test_ps_worst(self):
        emap = small_map()
        fluid = simulate_lifetime(
            emap, UniformAddressAttack(), PS.worst_case(0.1), rng=3
        )
        exact = reference_lifetime(
            emap, UniformAddressAttack(random_data=False), PS.worst_case(0.1)
        )
        assert exact.normalized_lifetime == pytest.approx(
            fluid.normalized_lifetime, rel=0.05
        )

    def test_pcd_degraded_mode(self):
        emap = small_map()
        fluid = simulate_lifetime(emap, UniformAddressAttack(), PCD(0.1), rng=3)
        exact = reference_lifetime(
            emap, UniformAddressAttack(random_data=False), PCD(0.1)
        )
        assert exact.normalized_lifetime == pytest.approx(
            fluid.normalized_lifetime, rel=0.06
        )

    def test_death_and_replacement_counts_match(self):
        emap = small_map()
        fluid = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=3)
        exact = reference_lifetime(
            emap, UniformAddressAttack(random_data=False), MaxWE(0.1)
        )
        assert exact.replacements == fluid.replacements


class TestRandomizedWLAgreement:
    """BPA through real randomizing mechanisms vs the stationary model."""

    def test_tlsr_under_bpa(self):
        emap = small_map(regions=30, lines_per_region=2, q=10.0, e_low=400.0)
        fluid = simulate_lifetime(
            emap,
            BirthdayParadoxAttack(burst_length=32),
            MaxWE(0.1),
            wearleveler=TLSR(lines_per_region=1, refresh_interval=4),
            rng=3,
        )
        exact = reference_lifetime(
            emap,
            BirthdayParadoxAttack(burst_length=32),
            MaxWE(0.1),
            wearleveler=TLSR(lines_per_region=2, refresh_interval=4),
        )
        # Randomized mechanisms at tiny scale carry real variance; require
        # same ballpark (the orderings tests pin the science).
        assert exact.normalized_lifetime == pytest.approx(
            fluid.normalized_lifetime, rel=0.4
        )

    def test_pcms_under_bpa(self):
        emap = small_map(regions=30, lines_per_region=2, q=10.0, e_low=400.0)
        fluid = simulate_lifetime(
            emap,
            BirthdayParadoxAttack(burst_length=32),
            MaxWE(0.1),
            wearleveler=PCMS(lines_per_region=1, swap_interval=16),
            rng=3,
        )
        exact = reference_lifetime(
            emap,
            BirthdayParadoxAttack(burst_length=32),
            MaxWE(0.1),
            wearleveler=PCMS(lines_per_region=2, swap_interval=16),
        )
        assert exact.normalized_lifetime == pytest.approx(
            fluid.normalized_lifetime, rel=0.4
        )


class TestReferenceGuards:
    def test_write_guard_terminates(self):
        emap = small_map()
        simulator = ReferenceSimulator(
            emap,
            UniformAddressAttack(random_data=False),
            MaxWE(0.5, 0.5),
            max_writes=1000,
        )
        result = simulator.run()
        assert "guard" in result.failure_reason
        assert result.writes_served <= 1000

    def test_invalid_guard(self):
        with pytest.raises(ValueError):
            ReferenceSimulator(
                small_map(), UniformAddressAttack(), NoSparing(), max_writes=0
            )
