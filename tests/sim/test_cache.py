"""Tests for the content-addressed result cache."""

import json

import pytest

from repro.sim.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    canonical_json,
    task_key,
)
from repro.sim.config import ExperimentConfig
from repro.sim.experiments import spare_fraction_sweep, uaa_scheme_comparison
from repro.sim.runner import SimRunner, SimTask

SMALL = ExperimentConfig(regions=128, lines_per_region=2, seed=7)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestKeying:
    def test_key_is_stable(self):
        task = SimTask(config=SMALL)
        assert task_key(task) == task_key(SimTask(config=SMALL))

    def test_key_changes_with_any_relevant_field(self):
        base = SimTask(config=SMALL)
        variants = [
            SimTask(config=SMALL, seed=8),
            SimTask(config=SMALL, p=0.2),
            SimTask(config=SMALL, swr=0.5),
            SimTask(config=SMALL, sparing="pcd"),
            SimTask(config=SMALL, attack="bpa"),
            SimTask(config=SMALL, wearlevel="tlsr"),
            SimTask(config=SMALL, emap_seed=99),
            SimTask(config=SMALL.with_(q=10.0)),
            SimTask(config=SMALL.with_(regions=64)),
        ]
        keys = {task_key(task) for task in variants}
        assert task_key(base) not in keys
        assert len(keys) == len(variants)

    def test_key_ignores_label(self):
        assert task_key(SimTask(config=SMALL, label="a")) == task_key(
            SimTask(config=SMALL, label="b")
        )

    def test_key_changes_with_schema_version(self):
        task = SimTask(config=SMALL)
        assert task_key(task, CACHE_SCHEMA_VERSION) != task_key(
            task, CACHE_SCHEMA_VERSION + 1
        )

    def test_canonical_json_is_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestHitMiss:
    def test_cold_miss_then_warm_hit(self, cache):
        task = SimTask(config=SMALL)
        assert cache.get(task) is None
        result, elapsed = task.execute()
        cache.put(task, result, elapsed)
        cached = cache.get(task)
        assert cached is not None
        assert cached.normalized_lifetime == result.normalized_lifetime
        assert cached.writes_served == result.writes_served
        assert cached.deaths == result.deaths
        assert cached.replacements == result.replacements
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_timeline_not_cached(self, cache):
        task = SimTask(config=SMALL, record_timeline=True)
        result, _ = task.execute()
        assert result.timeline  # the live run records one
        cache.put(task, result)
        assert cache.get(task).timeline == ()

    def test_len_counts_entries(self, cache):
        assert len(cache) == 0
        result, _ = SimTask(config=SMALL).execute()
        cache.put(SimTask(config=SMALL), result)
        cache.put(SimTask(config=SMALL, seed=9), result)
        assert len(cache) == 2

    def test_clear_removes_everything(self, cache):
        task = SimTask(config=SMALL)
        result, _ = task.execute()
        cache.put(task, result)
        assert cache.clear() == 1
        assert cache.get(task) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, cache):
        task = SimTask(config=SMALL)
        result, _ = task.execute()
        path = cache.put(task, result)
        path.write_text("{not json")
        assert cache.get(task) is None
        assert not path.exists()

    def test_corrupt_entry_is_quarantined_not_deleted(self, cache):
        task = SimTask(config=SMALL)
        result, _ = task.execute()
        path = cache.put(task, result)
        path.write_text("{torn mid-write")
        assert cache.get(task) is None
        assert cache.stats.quarantined == 1
        moved = cache.quarantine_root / path.name
        assert moved.read_text() == "{torn mid-write"  # bytes kept for debugging

    def test_quarantined_entries_are_invisible_to_len_and_clear(self, cache):
        task = SimTask(config=SMALL)
        result, _ = task.execute()
        path = cache.put(task, result)
        path.write_text("garbage")
        cache.get(task)
        assert len(cache) == 0
        assert cache.clear() == 0
        assert (cache.quarantine_root / path.name).exists()

    def test_rewrite_after_quarantine_hits_again(self, cache):
        task = SimTask(config=SMALL)
        result, _ = task.execute()
        path = cache.put(task, result)
        path.write_text("garbage")
        assert cache.get(task) is None
        cache.put(task, result)
        restored = cache.get(task)
        assert restored is not None

    def test_quarantine_is_bounded_oldest_first(self, tmp_path):
        """A corrupt-entry storm must not grow quarantine/ without bound:
        past the cap, the oldest entries are evicted (and counted)."""
        import os as _os

        from repro.obs.metrics import MetricsRegistry

        cache = ResultCache(tmp_path / "cache", quarantine_cap=2)
        metrics = MetricsRegistry()
        cache.attach_metrics(metrics)
        tasks = [
            SimTask(config=SMALL, p=0.01 * (index + 1)) for index in range(4)
        ]
        result, _ = tasks[0].execute()
        names = []
        for index, task in enumerate(tasks):
            path = cache.put(task, result)
            path.write_text("garbage")
            assert cache.get(task) is None
            moved = cache.quarantine_root / path.name
            # Distinct mtimes so oldest-first is deterministic even on a
            # coarse filesystem clock.
            _os.utime(moved, (index, index))
            names.append(path.name)
        kept = sorted(entry.name for entry in cache.quarantine_root.glob("*.json"))
        assert kept == sorted(names[-2:])  # newest two survive
        assert cache.stats.quarantined == 4
        assert cache.stats.quarantine_evicted == 2
        assert metrics.counter("cache.quarantine_evicted") == 2

    def test_quarantine_cap_env_and_validation(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_QUARANTINE_CAP", "7")
        assert ResultCache(tmp_path / "a").quarantine_cap == 7
        assert ResultCache(tmp_path / "b", quarantine_cap=3).quarantine_cap == 3
        with pytest.raises(ValueError):
            ResultCache(tmp_path / "c", quarantine_cap=0)

    def test_entry_is_inspectable_json(self, cache):
        task = SimTask(config=SMALL, label="probe")
        result, _ = task.execute()
        path = cache.put(task, result, elapsed=1.5)
        entry = json.loads(path.read_text())
        assert entry["schema"] == CACHE_SCHEMA_VERSION
        assert entry["task"]["attack"] == "uaa"
        assert entry["elapsed_seconds"] == 1.5
        assert entry["result"]["normalized_lifetime"] == pytest.approx(
            result.normalized_lifetime
        )


class TestInjectedCorruption:
    def test_injected_corruption_quarantines_as_a_miss(self, cache):
        from repro.sim.faults import install

        task = SimTask(config=SMALL)
        result, _ = task.execute()
        install("corrupt-cache=1.0")
        try:
            cache.put(task, result)
        finally:
            install(None)
        assert cache.get(task) is None  # truncated entry, not an exception
        assert cache.stats.quarantined == 1
        # A clean rewrite recovers the key.
        cache.put(task, result)
        assert cache.get(task).normalized_lifetime == result.normalized_lifetime


class TestInvalidation:
    def test_schema_bump_invalidates(self, tmp_path):
        task = SimTask(config=SMALL)
        result, _ = task.execute()
        old = ResultCache(tmp_path / "cache")
        old.put(task, result)
        bumped = ResultCache(tmp_path / "cache", schema_version=CACHE_SCHEMA_VERSION + 1)
        assert bumped.get(task) is None
        assert bumped.stats.misses == 1

    def test_schema_version_is_the_ensemble_era(self):
        # Bumped 3 -> 4 when the engine name joined the task payload
        # (the trial-stacked ensemble made it result-relevant).  Bump
        # this pin alongside any future schema change.
        assert CACHE_SCHEMA_VERSION == 4

    def test_previous_schema_entries_are_clean_misses(self, tmp_path):
        """Entries from the pre-ensemble cache era must read as plain
        misses -- not hits, and not quarantined as corrupt (their bytes
        are valid JSON of an older schema, left untouched on disk)."""
        task = SimTask(config=SMALL)
        result, _ = task.execute()
        old = ResultCache(
            tmp_path / "cache", schema_version=CACHE_SCHEMA_VERSION - 1
        )
        old_path = old.put(task, result)
        current = ResultCache(tmp_path / "cache")
        assert current.get(task) is None
        assert current.stats.misses == 1
        assert current.stats.quarantined == 0
        assert old_path.exists()  # old-era entry preserved, not purged
        # A fresh store lands under the new key and hits thereafter.
        new_path = current.put(task, result)
        assert new_path != old_path
        restored = current.get(task)
        assert restored is not None
        assert restored.normalized_lifetime == result.normalized_lifetime

    def test_engine_is_part_of_the_key(self):
        """The schema-4 payload addition: identical tasks that differ only
        in engine must occupy distinct cache entries."""
        batched = SimTask(config=SMALL, engine="fluid-batched")
        ensemble = SimTask(config=SMALL, engine="fluid-ensemble")
        exact = SimTask(config=SMALL, engine="fluid-exact")
        assert len({task_key(batched), task_key(ensemble), task_key(exact)}) == 3


class TestRunnerIntegration:
    def test_warm_rerun_performs_zero_simulations(self, tmp_path):
        """The acceptance criterion: a warm-cache rerun of a sweep simulates
        nothing and returns identical numbers."""
        cold_cache = ResultCache(tmp_path / "cache")
        cold = spare_fraction_sweep(SMALL, cache=cold_cache)
        assert cold_cache.stats.misses == len(cold)
        assert cold_cache.stats.hits == 0

        warm_cache = ResultCache(tmp_path / "cache")
        warm = spare_fraction_sweep(SMALL, cache=warm_cache)
        assert warm_cache.stats.hits == len(warm)
        assert warm_cache.stats.misses == 0  # zero simulations performed
        for (fa, a), (fb, b) in zip(cold, warm):
            assert fa == fb
            assert a.normalized_lifetime == b.normalized_lifetime

    def test_runner_stats_report_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [SimTask(config=SMALL), SimTask(config=SMALL, seed=9)]
        _, cold_stats = SimRunner(cache=cache).run_detailed(tasks)
        assert cold_stats.simulated == 2
        _, warm_stats = SimRunner(cache=cache).run_detailed(tasks)
        assert warm_stats.cache_hits == 2
        assert warm_stats.simulated == 0

    def test_cache_shared_across_different_drivers(self, tmp_path):
        """Sweeps and comparisons that contain the same configuration share
        cache entries (content addressing, not per-driver namespaces)."""
        cache = ResultCache(tmp_path / "cache")
        uaa_scheme_comparison(SMALL, cache=cache)
        warm = ResultCache(tmp_path / "cache")
        uaa_scheme_comparison(SMALL, cache=warm)
        assert warm.stats.hits == 4
        assert warm.stats.misses == 0
