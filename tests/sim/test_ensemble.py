"""Tests for ensemble chunking: boundaries, routing, and resume.

The engine-level bit-identity claims live in
``test_engine_equivalence.py``; this module pins the *plumbing* around
the trial-stacked engine -- how the runner folds tasks into chunks, how
chunk boundaries fall when the replica count does not divide evenly,
how a trial dying in its very first epoch coexists with long-lived
chunk-mates, and how a checkpoint resume re-chunks the remaining work.
"""

import numpy as np
import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.sim.config import ExperimentConfig
from repro.sim.ensemble import EnsembleMember, simulate_ensemble
from repro.sim.lifetime import simulate_lifetime
from repro.sim.montecarlo import monte_carlo_lifetime
from repro.sim.runner import SimRunner, SimTask, fork_task_seeds
from repro.sparing.none import NoSparing

SMALL = ExperimentConfig(regions=128, lines_per_region=2, seed=7)


def mc(engine, replicas=7, trials_per_task=None, **kwargs):
    return monte_carlo_lifetime(
        UniformAddressAttack,
        lambda: MaxWE(0.1, 0.9),
        config=SMALL,
        replicas=replicas,
        engine=engine,
        trials_per_task=trials_per_task,
        **kwargs,
    )


class TestMonteCarloRouting:
    """The ensemble engine through the Monte-Carlo driver must reproduce
    the per-task ``fluid-batched`` study exactly, however trials chunk."""

    def test_non_divisible_replica_count(self):
        baseline = mc("fluid-batched", replicas=7)
        ensemble = mc("fluid-ensemble", replicas=7, trials_per_task=3)
        np.testing.assert_array_equal(ensemble.lifetimes, baseline.lifetimes)

    def test_single_trial_chunks_degenerate_to_batched(self):
        baseline = mc("fluid-batched", replicas=5)
        ensemble = mc("fluid-ensemble", replicas=5, trials_per_task=1)
        np.testing.assert_array_equal(ensemble.lifetimes, baseline.lifetimes)

    def test_auto_sized_chunks(self):
        baseline = mc("fluid-batched", replicas=6)
        ensemble = mc("fluid-ensemble", replicas=6)  # trials_per_task=None
        np.testing.assert_array_equal(ensemble.lifetimes, baseline.lifetimes)

    def test_chunk_size_does_not_leak_into_results(self):
        studies = [
            mc("fluid-ensemble", replicas=6, trials_per_task=size)
            for size in (1, 2, 4, 6)
        ]
        for study in studies[1:]:
            np.testing.assert_array_equal(study.lifetimes, studies[0].lifetimes)

    def test_oversized_chunk_is_harmless(self):
        baseline = mc("fluid-batched", replicas=3)
        ensemble = mc("fluid-ensemble", replicas=3, trials_per_task=64)
        np.testing.assert_array_equal(ensemble.lifetimes, baseline.lifetimes)


class TestEarlyDeath:
    """A trial that fails in epoch 0 must stop contributing work without
    perturbing the chunk-mates that keep running."""

    def test_epoch_zero_failure_amid_survivors(self):
        # NoSparing fails the device at its very first death; Max-WE on
        # the same map runs for thousands of epochs.  Stack them.
        doomed_map = EnduranceMap(np.full(64, 50.0), regions=32)
        healthy_map = EnduranceMap(np.linspace(100.0, 2000.0, 64), regions=32)
        members = [
            EnsembleMember(
                emap=doomed_map,
                attack=UniformAddressAttack(),
                sparing=NoSparing(),
                rng=1,
            ),
            EnsembleMember(
                emap=healthy_map,
                attack=UniformAddressAttack(),
                sparing=MaxWE(0.1, 0.9),
                rng=2,
            ),
            EnsembleMember(
                emap=doomed_map,
                attack=UniformAddressAttack(),
                sparing=NoSparing(),
                rng=3,
            ),
        ]
        stacked = simulate_ensemble(members)
        assert stacked[0].metadata["epochs"] == 1
        assert stacked[2].metadata["epochs"] == 1
        assert stacked[1].metadata["epochs"] > 1
        solo_configs = [
            (doomed_map, NoSparing(), 1),
            (healthy_map, MaxWE(0.1, 0.9), 2),
            (doomed_map, NoSparing(), 3),
        ]
        for (emap, sparing, seed), result in zip(solo_configs, stacked):
            solo = simulate_lifetime(
                emap,
                UniformAddressAttack(),
                sparing,
                rng=seed,
                engine="fluid-batched",
                record_timeline=False,
            )
            assert result.writes_served == solo.writes_served
            assert result.deaths == solo.deaths
            assert result.failure_reason == solo.failure_reason


class TestRunnerChunking:
    """SimRunner-level behaviour: grouping, validation, per-task parity."""

    @staticmethod
    def tasks(engine, count=6):
        seeds = fork_task_seeds(SMALL.seed, count, "ensemble-test")
        return [
            SimTask(config=SMALL, engine=engine, seed=seed, label=f"t{index}")
            for index, seed in enumerate(seeds)
        ]

    def test_invalid_trials_per_task_rejected(self):
        with pytest.raises(ValueError, match="trials_per_task"):
            SimRunner(trials_per_task=0)

    def test_ensemble_tasks_match_per_task_dispatch(self):
        baseline = SimRunner().run(self.tasks("fluid-batched"))
        chunked = SimRunner(trials_per_task=4).run(self.tasks("fluid-ensemble"))
        for solo, ens in zip(baseline, chunked):
            assert ens.normalized_lifetime == solo.normalized_lifetime
            assert ens.writes_served == solo.writes_served
            assert ens.deaths == solo.deaths
            assert ens.replacements == solo.replacements

    def test_mixed_engines_chunk_only_the_ensemble_run(self):
        """Non-ensemble tasks interleaved with ensemble tasks break the
        run into separate chunks without disturbing any result."""
        ens = self.tasks("fluid-ensemble", count=5)
        solo = self.tasks("fluid-batched", count=5)
        mixed = [ens[0], ens[1], solo[2], ens[3], ens[4]]
        expected = SimRunner().run([solo[0], solo[1], solo[2], solo[3], solo[4]])
        got = SimRunner(trials_per_task=8).run(mixed)
        for want, have in zip(expected, got):
            assert have.normalized_lifetime == want.normalized_lifetime

    def test_stats_count_members_not_chunks(self):
        _, stats = SimRunner(trials_per_task=3).run_detailed(
            self.tasks("fluid-ensemble", count=7)
        )
        assert stats.tasks == 7
        assert stats.simulated == 7  # chunking is invisible in the stats
        assert all(second > 0.0 for second in stats.task_seconds)


class TestCheckpointResume:
    """An interrupted ensemble study resumes from the journal and
    re-chunks only the remaining members."""

    def test_resume_mid_ensemble(self, tmp_path):
        path = tmp_path / "resume.jsonl"
        tasks = TestRunnerChunking.tasks("fluid-ensemble", count=8)
        # First pass covers an uneven prefix: one full chunk of 4 plus a
        # lone straggler, so the resume boundary falls mid-chunk.
        SimRunner(trials_per_task=4, checkpoint=path).run(tasks[:5])
        resumed, stats = SimRunner(
            trials_per_task=4, checkpoint=path
        ).run_detailed(tasks)
        assert stats.checkpoint_hits == 5
        assert stats.simulated == 3  # only the tail re-chunked and ran
        baseline = SimRunner().run(TestRunnerChunking.tasks("fluid-batched", count=8))
        for solo, ens in zip(baseline, resumed):
            assert ens.normalized_lifetime == solo.normalized_lifetime
            assert ens.writes_served == solo.writes_served

    def test_checkpointed_ensemble_results_hit_the_cache(self, tmp_path):
        """Chunk completion fans out to per-member cache entries, exactly
        like per-task dispatch would have written them."""
        from repro.sim.cache import ResultCache

        cache = ResultCache(tmp_path / "cache")
        tasks = TestRunnerChunking.tasks("fluid-ensemble", count=6)
        _, cold = SimRunner(trials_per_task=3, cache=cache).run_detailed(tasks)
        assert cold.simulated == 6
        _, warm = SimRunner(trials_per_task=3, cache=cache).run_detailed(tasks)
        assert warm.cache_hits == 6
        assert warm.simulated == 0
