"""Property tests: invariants of the fluid lifetime engine.

These pin the engine's physics across randomized devices and schemes:

* conservation -- a device can never serve more user writes than its
  total endurance (normalized lifetime <= 1);
* monotonicity -- strictly more spare capacity never shortens Max-WE's
  lifetime; a uniformly stronger chip never lives shorter;
* dominance -- Max-WE is never worse than no protection;
* determinism -- equal seeds give identical runs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.wearlevel import make_scheme


@st.composite
def random_maps(draw):
    regions = draw(st.integers(min_value=20, max_value=80))
    values = draw(
        st.lists(
            st.floats(min_value=10.0, max_value=10_000.0),
            min_size=regions,
            max_size=regions,
        )
    )
    return EnduranceMap(np.array(values), regions=regions)


@st.composite
def sparing_schemes(draw):
    kind = draw(st.sampled_from(["none", "pcd", "ps", "ps-worst", "max-we"]))
    if kind == "none":
        return NoSparing()
    if kind == "pcd":
        return PCD(0.1)
    if kind == "ps":
        return PS.average_case(0.1)
    if kind == "ps-worst":
        return PS.worst_case(0.1)
    return MaxWE(0.1, 0.9)


class TestConservation:
    @given(random_maps(), sparing_schemes(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=60, deadline=None)
    def test_lifetime_never_exceeds_total_endurance(self, emap, sparing, seed):
        result = simulate_lifetime(emap, UniformAddressAttack(), sparing, rng=seed)
        assert 0.0 <= result.normalized_lifetime <= 1.0 + 1e-9

    @given(random_maps(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_bpa_through_wawl_also_conserves(self, emap, seed):
        result = simulate_lifetime(
            emap,
            BirthdayParadoxAttack(),
            MaxWE(0.1, 0.9),
            wearleveler=make_scheme("wawl", lines_per_region=1),
            rng=seed,
        )
        assert 0.0 <= result.normalized_lifetime <= 1.0 + 1e-9


class TestMonotonicity:
    @pytest.mark.xfail(
        strict=False,
        reason=(
            "The property as stated is false for degenerate endurance "
            "distributions: on a flat map with one strong outlier (e.g. 19 "
            "regions at 10, one at 210) effective_q clears the >= 3 filter, "
            "but every spare is exactly as weak as the lines it shields, so "
            "extra spare capacity is pure capacity loss and MaxWE(0.2) "
            "serves fewer writes than MaxWE(0.05).  The analytic break-even "
            "(q - 1)(1 - p) >= 1 assumes the paper's linear endurance "
            "spread, which point-mass maps violate.  Pinned deterministically "
            "in test_flat_map_with_outlier_counterexample below; tracked as "
            "the known gap between the filter and the true precondition."
        ),
    )
    @given(random_maps(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_more_spares_never_hurt_maxwe_with_variation(self, emap, seed):
        """Holds whenever there is real variation to harvest; near q = 1
        sparing is pure capacity waste (the analytic break-even is
        (q - 1)(1 - p) >= 1).  The raw EH/EL ratio is a poor proxy (one
        strong outlier inflates it on an otherwise flat map), so the
        filter uses the *effective* q -- the one that reproduces the
        map's actual UAA exposure."""
        from repro.endurance.calibration import effective_q

        if effective_q(emap) < 3.0:
            return
        small = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.05), rng=seed)
        large = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.2), rng=seed)
        assert large.normalized_lifetime >= small.normalized_lifetime - 1e-9

    def test_flat_map_with_outlier_counterexample(self):
        """The counterexample behind the xfail above, pinned so the engine's
        actual behaviour on degenerate maps is tracked: when all lines are
        equally weak except one outlier, spares buy nothing and more spare
        capacity strictly shortens the lifetime."""
        values = np.full(20, 10.0)
        values[-1] = 210.0
        emap = EnduranceMap(values, regions=20)
        small = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.05), rng=0)
        large = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.2), rng=0)
        assert large.normalized_lifetime < small.normalized_lifetime

    def test_more_spares_never_hurt_on_the_paper_distribution(self):
        """On the paper's own linear endurance spread (q = 50) -- the regime
        the analytic break-even actually covers -- monotonicity does hold."""
        from repro.sim.config import ExperimentConfig

        emap = ExperimentConfig(regions=256, lines_per_region=2, seed=11).make_emap()
        lifetimes = [
            simulate_lifetime(
                emap, UniformAddressAttack(), MaxWE(p), rng=11
            ).normalized_lifetime
            for p in (0.05, 0.1, 0.2, 0.3)
        ]
        assert lifetimes == sorted(lifetimes)

    @given(random_maps(), st.floats(min_value=1.1, max_value=10.0), st.integers(min_value=0, max_value=100))
    @settings(max_examples=30, deadline=None)
    def test_stronger_chip_lives_at_least_as_long_absolutely(self, emap, factor, seed):
        stronger = EnduranceMap(emap.line_endurance * factor, emap.regions)
        weak = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=seed)
        strong = simulate_lifetime(stronger, UniformAddressAttack(), MaxWE(0.1), rng=seed)
        assert strong.writes_served >= weak.writes_served - 1e-6


class TestDominance:
    @pytest.mark.xfail(
        strict=False,
        reason=(
            "Same gap as the monotonicity xfail above: the dominance "
            "break-even (q - 1)(1 - p) >= 1 assumes the paper's linear "
            "endurance spread, and the effective-q filter does not fully "
            "close the hole for point-mass maps.  On 19 regions at 10 "
            "with one at 177, effective_q = 2.67 clears the filter "
            "((2.67 - 1) * 0.9 = 1.50 >= 1.5, exactly at the boundary), "
            "but every spare is as weak as the lines it shields, so "
            "Max-WE's 10% capacity sacrifice buys nothing and it serves "
            "fewer writes than no protection (0.490 vs 0.545).  Pinned "
            "deterministically in "
            "test_flat_map_with_outlier_breaks_dominance below."
        ),
    )
    @given(random_maps(), st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_maxwe_never_worse_than_no_protection_with_variation(self, emap, seed):
        """Above the (q - 1)(1 - p) >= 1 break-even, sparing always pays;
        the break-even is evaluated on the effective q (see the
        monotonicity test for why the raw ratio misleads)."""
        from repro.endurance.calibration import effective_q

        if (effective_q(emap) - 1.0) * 0.9 < 1.5:
            return
        nothing = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=seed)
        maxwe = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=seed)
        assert maxwe.normalized_lifetime >= nothing.normalized_lifetime - 1e-9

    def test_flat_map_with_outlier_breaks_dominance(self):
        """The counterexample behind the xfail above, pinned so the engine's
        actual behaviour on degenerate maps is tracked: on a flat map with
        one strong outlier sitting exactly at the filter boundary, no
        protection outlives Max-WE because the spares are as weak as the
        lines they replace."""
        values = np.full(20, 10.0)
        values[-1] = 177.0
        emap = EnduranceMap(values, regions=20)
        nothing = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=0)
        maxwe = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=0)
        assert maxwe.normalized_lifetime < nothing.normalized_lifetime

    def test_no_variation_regression_is_exactly_the_capacity_cost(self):
        """At q = 1 Max-WE's only effect is giving up the spare capacity:
        lifetime is exactly (1 - p) of the unprotected 100%."""
        emap = EnduranceMap(np.full(40, 100.0), regions=40)
        nothing = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=1)
        maxwe = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=1)
        assert nothing.normalized_lifetime == pytest.approx(1.0)
        assert maxwe.normalized_lifetime == pytest.approx(0.9, rel=1e-6)


class TestDeterminism:
    @given(random_maps(), st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_equal_seeds_equal_runs(self, emap, seed):
        a = simulate_lifetime(
            emap,
            BirthdayParadoxAttack(),
            PS.average_case(0.1),
            wearleveler=make_scheme("tlsr", lines_per_region=1),
            rng=seed,
        )
        b = simulate_lifetime(
            emap,
            BirthdayParadoxAttack(),
            PS.average_case(0.1),
            wearleveler=make_scheme("tlsr", lines_per_region=1),
            rng=seed,
        )
        assert a.writes_served == b.writes_served
        assert a.deaths == b.deaths
