"""Differential tests: fluid-batched vs fluid-exact vs the reference.

The vectorized epoch kernel (``fluid-batched``) must be *exact* with
respect to the scalar event loop (``fluid-exact``): identical death and
replacement counts, identical failure reason, served writes equal up to
floating-point summation order (the batched kernel integrates each epoch
with a cumulative sum; the scalar loop adds one interval at a time).
The Hypothesis sweep pins this across randomized devices, every sparing
family, and three attack profiles; dedicated tests stress the epoch
machinery (batch limits, heap compaction, pool exhaustion mid-batch)
where the two implementations could plausibly drift apart.

A final leg closes the loop against the exact per-write
:class:`~repro.sim.reference.ReferenceSimulator`, with the loose
tolerance the fluid approximation warrants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.lifetime as lifetime_module
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.salvage.ecp import ECP
from repro.salvage.freep import FreeP
from repro.sim.lifetime import simulate_lifetime
from repro.sim.reference import ReferenceSimulator
from repro.sparing.base import (
    BATCH_FAIL,
    BATCH_REPLACE,
    BatchOutcome,
    FailDevice,
    ReplaceWith,
    SpareScheme,
)
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS

#: Served-writes agreement bound between the two fluid engines (counts
#: and failure reasons must match exactly; only summation order differs).
WRITES_RTOL = 1e-9

#: Fresh-instance factories -- schemes are stateful, so each engine run
#: needs its own copy initialized from scratch.
SCHEME_FACTORIES = {
    "none": lambda: NoSparing(),
    "pcd": lambda: PCD(0.1),
    "ps": lambda: PS.average_case(0.1),
    "ps-weakest": lambda: PS(0.1, selection="weakest", allocation="strongest-first"),
    "max-we": lambda: MaxWE(0.1, 0.9),
    "ecp": lambda: ECP(pointers=4, bonus_per_pointer=0.05),
    "freep": lambda: FreeP(0.1),
}

ATTACK_FACTORIES = {
    "uaa": lambda: UniformAddressAttack(),
    "bpa": lambda: BirthdayParadoxAttack(),
    "streaming": lambda: RepeatedAddressAttack(target=0),
}


@st.composite
def random_maps(draw):
    regions = draw(st.integers(min_value=20, max_value=60))
    lines_per_region = draw(st.integers(min_value=1, max_value=3))
    values = draw(
        st.lists(
            st.floats(min_value=10.0, max_value=10_000.0),
            min_size=regions * lines_per_region,
            max_size=regions * lines_per_region,
        )
    )
    return EnduranceMap(np.array(values), regions=regions)


def both_engines(emap, attack_name, scheme_name, seed):
    """Run the same configuration through both engines, fresh state each."""
    results = {}
    for engine in ("fluid-exact", "fluid-batched"):
        results[engine] = simulate_lifetime(
            emap,
            ATTACK_FACTORIES[attack_name](),
            SCHEME_FACTORIES[scheme_name](),
            rng=seed,
            engine=engine,
            record_timeline=False,
        )
    return results["fluid-exact"], results["fluid-batched"]


def assert_engines_agree(exact, batched):
    assert batched.deaths == exact.deaths
    assert batched.replacements == exact.replacements
    assert batched.failure_reason == exact.failure_reason
    scale = max(abs(exact.writes_served), 1.0)
    assert abs(batched.writes_served - exact.writes_served) / scale <= WRITES_RTOL
    assert batched.metadata["engine"] == "fluid-batched"
    assert exact.metadata["engine"] == "fluid-exact"


class TestEngineEquivalence:
    """The acceptance criterion: batched == exact on randomized devices."""

    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    @pytest.mark.parametrize("attack_name", sorted(ATTACK_FACTORIES))
    @given(emap=random_maps(), seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_batched_matches_exact(self, scheme_name, attack_name, emap, seed):
        exact, batched = both_engines(emap, attack_name, scheme_name, seed)
        assert_engines_agree(exact, batched)

    def test_uniform_endurance_ties(self):
        """Every line dying at the same instant exercises the batch
        boundary tie-trim: a partial tie class would reorder same-time
        events between the engines."""
        emap = EnduranceMap(np.full(120, 100.0), regions=60)
        for scheme_name in ("max-we", "ps", "pcd"):
            exact, batched = both_engines(emap, "uaa", scheme_name, seed=5)
            assert_engines_agree(exact, batched)

    def test_tiny_batch_limit_still_exact(self, monkeypatch):
        """Forcing one-death epochs must not change any result -- the
        safe-prefix logic degrades to the scalar event order."""
        monkeypatch.setattr(lifetime_module, "BATCH_LIMIT", 2)
        emap = EnduranceMap(
            np.linspace(50.0, 5000.0, 80), regions=40
        )
        for scheme_name in ("max-we", "ps", "ecp"):
            exact, batched = both_engines(emap, "uaa", scheme_name, seed=9)
            assert_engines_agree(exact, batched)
            # At most BATCH_LIMIT deaths fit in one epoch.
            assert batched.metadata["epochs"] >= batched.deaths // 2

    def test_timeline_events_match_when_recorded(self):
        """With timelines on, both engines log the same death sequence."""
        emap = EnduranceMap(np.linspace(100.0, 2000.0, 60), regions=30)
        runs = {}
        for engine in ("fluid-exact", "fluid-batched"):
            runs[engine] = simulate_lifetime(
                emap,
                UniformAddressAttack(),
                MaxWE(0.1, 0.9),
                rng=3,
                engine=engine,
                record_timeline=True,
            )
        exact, batched = runs["fluid-exact"], runs["fluid-batched"]
        assert len(exact.timeline) == len(batched.timeline)
        for a, b in zip(exact.timeline, batched.timeline):
            assert (a.slot, a.dead_line, a.action, a.replacement_line) == (
                b.slot,
                b.dead_line,
                b.action,
                b.replacement_line,
            )
            assert b.writes_served == pytest.approx(a.writes_served, rel=1e-9)


class TestHeapCompaction:
    """The scalar engine's bounded heap (satellite: heap cap + compaction)."""

    def test_compaction_triggers_and_preserves_results(self, monkeypatch):
        emap = EnduranceMap(np.linspace(50.0, 5000.0, 100), regions=50)

        def run():
            return simulate_lifetime(
                emap,
                UniformAddressAttack(),
                ECP(pointers=4, bonus_per_pointer=0.05),
                rng=7,
                engine="fluid-exact",
                record_timeline=False,
            )

        baseline = run()
        assert baseline.metadata["heap_compactions"] == 0
        monkeypatch.setattr(lifetime_module, "HEAP_SLACK", 0)
        compacted = run()
        assert compacted.metadata["heap_compactions"] > 0
        assert compacted.writes_served == baseline.writes_served
        assert compacted.deaths == baseline.deaths
        assert compacted.replacements == baseline.replacements


class _TwoSpares(SpareScheme):
    """Minimal scalar-only scheme: two spare handouts, then failure.

    Exercises the base-class ``replace_batch`` fallback (no override, no
    ``replacement_extra_floor``), i.e. the third-party-scheme path.
    """

    name = "two-spares"

    def _build_backing(self):
        assert self._emap is not None
        return np.arange(self._emap.lines - 2, dtype=np.intp)

    def replace(self, slot, dead_line):
        total = self.emap.lines
        if dead_line < total - 2:
            spare = total - 2 if self._handed == 0 else total - 1
            self._handed += 1
            if self._handed <= 2:
                return ReplaceWith(line=spare)
        return FailDevice(reason="out of spares")

    def initialize(self, emap, rng=None):
        self._handed = 0
        super().initialize(emap, rng)


class TestScalarFallback:
    def test_scheme_without_batch_override_runs_batched(self):
        emap = EnduranceMap(np.linspace(100.0, 1000.0, 40), regions=20)
        runs = {}
        for engine in ("fluid-exact", "fluid-batched"):
            runs[engine] = simulate_lifetime(
                emap,
                UniformAddressAttack(),
                _TwoSpares(),
                rng=1,
                engine=engine,
                record_timeline=False,
            )
        assert_engines_agree(runs["fluid-exact"], runs["fluid-batched"])
        assert runs["fluid-batched"].failure_reason == "out of spares"


class TestBatchOutcomeValidation:
    def test_fail_must_be_trailing(self):
        with pytest.raises(ValueError, match="last action"):
            BatchOutcome(
                actions=np.array([BATCH_FAIL, BATCH_REPLACE], dtype=np.int8),
                fail_reason="early",
            )

    def test_fail_reason_required_iff_failed(self):
        with pytest.raises(ValueError, match="fail_reason"):
            BatchOutcome(actions=np.array([BATCH_FAIL], dtype=np.int8))
        with pytest.raises(ValueError, match="fail_reason"):
            BatchOutcome(
                actions=np.array([BATCH_REPLACE], dtype=np.int8),
                lines=np.array([3]),
                fail_reason="not actually failed",
            )

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one death"):
            BatchOutcome(actions=np.empty(0, dtype=np.int8))

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError, match="index-aligned"):
            BatchOutcome(
                actions=np.array([BATCH_REPLACE, BATCH_REPLACE], dtype=np.int8),
                lines=np.array([1]),
            )

    def test_constructors(self):
        replaced = BatchOutcome.all_replaced(np.array([4, 5]))
        assert replaced.size == 2 and not replaced.failed
        removed = BatchOutcome.all_removed(3)
        assert removed.size == 3 and not removed.failed
        partial = BatchOutcome.replaced_then_fail(np.array([7]), reason="dry")
        assert partial.size == 2 and partial.failed
        assert partial.lines[0] == 7 and partial.actions[-1] == BATCH_FAIL
        dead = BatchOutcome.fail("gone")
        assert dead.size == 1 and dead.failed and dead.fail_reason == "gone"


def assert_bit_identical(batched, ensemble):
    """Ensemble results must equal solo fluid-batched *exactly* -- same
    kernel math in the same order, so not even summation order differs."""
    assert ensemble.deaths == batched.deaths
    assert ensemble.replacements == batched.replacements
    assert ensemble.failure_reason == batched.failure_reason
    assert ensemble.writes_served == batched.writes_served  # no tolerance
    assert ensemble.normalized_lifetime == batched.normalized_lifetime
    assert ensemble.metadata["engine"] == "fluid-ensemble"
    assert batched.metadata["engine"] == "fluid-batched"


class TestEnsembleEngine:
    """The trial-stacked engine vs solo ``fluid-batched``: bit-identical,
    a *stronger* claim than the exact/batched writes tolerance above."""

    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    @pytest.mark.parametrize("attack_name", sorted(ATTACK_FACTORIES))
    def test_single_trial_bit_identical(self, scheme_name, attack_name):
        model = LinearEnduranceModel.from_q(20.0, e_low=200.0)
        emap = linear_endurance_map(120, 40, model, rng=11)
        runs = {}
        for engine in ("fluid-batched", "fluid-ensemble"):
            runs[engine] = simulate_lifetime(
                emap,
                ATTACK_FACTORIES[attack_name](),
                SCHEME_FACTORIES[scheme_name](),
                rng=13,
                engine=engine,
                record_timeline=False,
            )
        assert_bit_identical(runs["fluid-batched"], runs["fluid-ensemble"])

    @pytest.mark.parametrize("scheme_name", ("max-we", "ps", "pcd", "none"))
    @given(emap=random_maps(), seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_randomized_devices_bit_identical(self, scheme_name, emap, seed):
        runs = {}
        for engine in ("fluid-batched", "fluid-ensemble"):
            runs[engine] = simulate_lifetime(
                emap,
                UniformAddressAttack(),
                SCHEME_FACTORIES[scheme_name](),
                rng=seed,
                engine=engine,
                record_timeline=False,
            )
        assert_bit_identical(runs["fluid-batched"], runs["fluid-ensemble"])

    def test_stacked_trials_match_solo_runs(self):
        """Trials advanced together in one stacked pass must equal the same
        seeds run solo -- grouping must be unobservable in the results."""
        from repro.sim.ensemble import EnsembleMember, simulate_ensemble

        model = LinearEnduranceModel.from_q(20.0, e_low=200.0)
        grid = [
            ("max-we", 3),
            ("ps", 4),       # random spare selection: seeds must thread through
            ("pcd", 5),
            ("max-we", 6),
            ("none", 7),
        ]
        members = [
            EnsembleMember(
                emap=linear_endurance_map(120, 40, model, rng=seed),
                attack=UniformAddressAttack(),
                sparing=SCHEME_FACTORIES[name](),
                rng=seed,
            )
            for name, seed in grid
        ]
        stacked = simulate_ensemble(members)
        for (name, seed), result in zip(grid, stacked):
            solo = simulate_lifetime(
                linear_endurance_map(120, 40, model, rng=seed),
                UniformAddressAttack(),
                SCHEME_FACTORIES[name](),
                rng=seed,
                engine="fluid-batched",
                record_timeline=False,
            )
            assert_bit_identical(solo, result)

    def test_timeline_events_bit_identical(self):
        emap = EnduranceMap(np.linspace(100.0, 2000.0, 60), regions=30)
        runs = {}
        for engine in ("fluid-batched", "fluid-ensemble"):
            runs[engine] = simulate_lifetime(
                emap,
                UniformAddressAttack(),
                MaxWE(0.1, 0.9),
                rng=3,
                engine=engine,
                record_timeline=True,
            )
        batched, ensemble = runs["fluid-batched"], runs["fluid-ensemble"]
        assert len(ensemble.timeline) == len(batched.timeline)
        for a, b in zip(batched.timeline, ensemble.timeline):
            assert (a.slot, a.dead_line, a.action, a.replacement_line) == (
                b.slot,
                b.dead_line,
                b.action,
                b.replacement_line,
            )
            assert b.writes_served == a.writes_served  # exact, not approx


class TestAgainstReference:
    """Close the loop: both fluid engines vs the exact per-write simulator."""

    def test_three_way_agreement_under_uaa(self):
        model = LinearEnduranceModel.from_q(20.0, e_low=200.0)
        emap = linear_endurance_map(80, 40, model, rng=3)
        reference = ReferenceSimulator(
            emap,
            UniformAddressAttack(random_data=False),
            MaxWE(0.1, 0.9),
            rng=3,
            max_writes=10_000_000,
        ).run()
        for engine in ("fluid-exact", "fluid-batched"):
            fluid = simulate_lifetime(
                emap,
                UniformAddressAttack(),
                MaxWE(0.1, 0.9),
                rng=3,
                engine=engine,
                record_timeline=False,
            )
            assert fluid.normalized_lifetime == pytest.approx(
                reference.normalized_lifetime, rel=0.05
            )
            assert fluid.replacements == reference.replacements


class TestSequentialRegime:
    """The adaptive sequential kernel: one-death-per-epoch streams must
    engage the death-frontier micro-loop and still be exact vs the
    scalar engine (solo) and bit-identical vs solo batched (ensemble)."""

    #: Wide-spread endurance with a single hot slot: every death is its
    #: own epoch, the canonical sequential (BPA-shaped) stream.  Eight
    #: lines per region keeps the hot region supplied with spares long
    #: enough for every scheme to outlast the entry streak.
    @staticmethod
    def stream_map():
        return EnduranceMap(np.linspace(80.0, 4000.0, 800), regions=100)

    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    def test_sequential_stream_matches_exact(self, scheme_name):
        exact, batched = both_engines(
            self.stream_map(), "streaming", scheme_name, seed=17
        )
        assert_engines_agree(exact, batched)
        meta = batched.metadata
        if batched.deaths > lifetime_module.SEQUENTIAL_ENTER_STREAK + 1:
            # Enough size-1 epochs to trip the streak: the regime must
            # have engaged and absorbed the remaining deaths.
            assert meta["regime_switches"] >= 1
            assert meta["sequential_rounds"] > 0
            # Selection work stayed O(batch): full scans are bounded by
            # the pre-switch streak, not the death count.
            assert meta["full_scans"] <= (
                lifetime_module.SEQUENTIAL_ENTER_STREAK
                + meta["regime_switches"]
            )

    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    def test_sequential_stream_ensemble_bit_identical(self, scheme_name):
        runs = {}
        for engine in ("fluid-batched", "fluid-ensemble"):
            runs[engine] = simulate_lifetime(
                self.stream_map(),
                ATTACK_FACTORIES["streaming"](),
                SCHEME_FACTORIES[scheme_name](),
                rng=17,
                engine=engine,
                record_timeline=False,
            )
        assert_bit_identical(runs["fluid-batched"], runs["fluid-ensemble"])

    def test_regrow_exits_and_reenters_cleanly(self, monkeypatch):
        """Force hair-trigger entry (streak=1) with a tiny epoch cap on a
        map whose deaths alternate between an isolated salvaged line
        (size-1 epochs -> enter) and a dense tie cluster (regrown epochs
        -> bail): the kernel must bounce between regimes repeatedly
        without drifting from the scalar engine."""
        monkeypatch.setattr(lifetime_module, "SEQUENTIAL_ENTER_STREAK", 1)
        monkeypatch.setattr(lifetime_module, "SEQUENTIAL_EPOCH_CAP", 1)
        values = np.concatenate(
            [
                np.array([100.0]),  # dies first, extends far past the cluster
                np.full(30, 150.0),  # dense tie cluster regrows every round
                np.geomspace(1.0e4, 1.0e5, 49),  # far quiet tail
            ]
        )
        results = {}
        for engine in ("fluid-exact", "fluid-batched"):
            results[engine] = simulate_lifetime(
                EnduranceMap(values.copy(), regions=40),
                UniformAddressAttack(),
                ECP(pointers=100, bonus_per_pointer=0.05),
                rng=23,
                engine=engine,
                record_timeline=False,
            )
        exact, batched = results["fluid-exact"], results["fluid-batched"]
        assert_engines_agree(exact, batched)
        meta = batched.metadata
        assert meta["regime_switches"] >= 2  # entered and exited (many times)
        assert meta["sequential_rounds"] > 0

    def test_sequential_timeline_matches_exact(self):
        """The micro-loop's timeline events (scalar replace path) must
        mirror the scalar engine's event stream."""
        runs = {}
        for engine in ("fluid-exact", "fluid-batched"):
            runs[engine] = simulate_lifetime(
                self.stream_map(),
                ATTACK_FACTORIES["streaming"](),
                SCHEME_FACTORIES["max-we"](),
                rng=17,
                engine=engine,
                record_timeline=True,
            )
        exact, batched = runs["fluid-exact"], runs["fluid-batched"]
        assert batched.metadata["sequential_rounds"] > 0
        assert len(exact.timeline) == len(batched.timeline)
        for a, b in zip(exact.timeline, batched.timeline):
            assert (a.slot, a.dead_line, a.action, a.replacement_line) == (
                b.slot,
                b.dead_line,
                b.action,
                b.replacement_line,
            )
            assert b.writes_served == pytest.approx(a.writes_served, rel=1e-9)

    @pytest.mark.parametrize("engine", ("fluid-batched", "fluid-ensemble"))
    def test_full_paranoia_off_bit_identity_through_sequential(self, engine):
        """Paranoia=full disables the frontier (the guard audits every
        epoch); paranoia=off rides the sequential micro-loop.  The two
        paths must still be bit-identical -- the regression pinning the
        new kernel against the state-integrity referee."""
        results = {}
        for paranoia in ("off", "full"):
            results[paranoia] = simulate_lifetime(
                self.stream_map(),
                ATTACK_FACTORIES["streaming"](),
                SCHEME_FACTORIES["ps"](),
                rng=17,
                engine=engine,
                paranoia=paranoia,
                record_timeline=False,
            )
        off, full = results["off"], results["full"]
        if engine == "fluid-batched":
            assert off.metadata["sequential_rounds"] > 0
            assert full.metadata["sequential_rounds"] == 0
        assert full.writes_served == off.writes_served  # bit-identical
        assert full.deaths == off.deaths
        assert full.replacements == off.replacements
        assert full.failure_reason == off.failure_reason
