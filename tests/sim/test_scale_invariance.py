"""Property tests: normalized lifetime is a scale-free quantity.

DESIGN.md's scale model rests on two invariances that justify running the
paper's 1 GB experiments on a few-thousand-line device:

* multiplying every endurance by a constant leaves normalized lifetime
  unchanged (the metric is a ratio of write counts);
* replicating each region's lines k-fold leaves it unchanged (slots per
  region only refine the same wear distribution).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.pcd import PCD


def lifetime(emap, sparing, seed=1):
    return simulate_lifetime(
        emap, UniformAddressAttack(), sparing, rng=seed
    ).normalized_lifetime


@st.composite
def small_linear_maps(draw):
    regions = draw(st.integers(min_value=20, max_value=60))
    q = draw(st.floats(min_value=2.0, max_value=80.0))
    seed = draw(st.integers(min_value=0, max_value=1000))
    model = LinearEnduranceModel.from_q(q, e_low=50.0)
    return linear_endurance_map(regions, regions, model, rng=seed), seed


class TestEnduranceScaleInvariance:
    @given(small_linear_maps(), st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=20, deadline=None)
    def test_maxwe_invariant_under_endurance_scaling(self, map_and_seed, scale):
        emap, seed = map_and_seed
        scaled = EnduranceMap(emap.line_endurance * scale, emap.regions)
        base = lifetime(emap, MaxWE(0.1), seed)
        rescaled = lifetime(scaled, MaxWE(0.1), seed)
        assert rescaled == pytest.approx(base, rel=1e-9)

    @given(small_linear_maps())
    @settings(max_examples=20, deadline=None)
    def test_pcd_invariant_under_endurance_scaling(self, map_and_seed):
        emap, seed = map_and_seed
        scaled = EnduranceMap(emap.line_endurance * 7.5, emap.regions)
        assert lifetime(scaled, PCD(0.1), seed) == pytest.approx(
            lifetime(emap, PCD(0.1), seed), rel=1e-9
        )


class TestLinesPerRegionInvariance:
    @given(small_linear_maps(), st.integers(min_value=2, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_maxwe_invariant_under_region_replication(self, map_and_seed, k):
        emap, seed = map_and_seed
        replicated = EnduranceMap(
            np.repeat(emap.line_endurance, k), emap.regions
        )
        base = lifetime(emap, MaxWE(0.1), seed)
        refined = lifetime(replicated, MaxWE(0.1), seed)
        assert refined == pytest.approx(base, rel=1e-9)

    def test_paper_scale_vs_experiment_scale(self):
        """2048 regions x 8 lines agrees with 2048 x 64 to high precision."""
        model = LinearEnduranceModel.from_q(50.0, e_low=100.0)
        small = linear_endurance_map(2048 * 8, 2048, model, rng=4)
        large = EnduranceMap(np.repeat(small.line_endurance, 8), 2048)
        assert lifetime(large, MaxWE(0.1), 4) == pytest.approx(
            lifetime(small, MaxWE(0.1), 4), rel=1e-6
        )
