"""Regression tests: simulations must not leak state across runs.

``run_batch`` and the sweep drivers share one :class:`EnduranceMap`
across many simulations, and the fluid engine redirects slots by writing
into a backing array it obtains from the sparing scheme.  If the engine
ever mutated the shared endurance array, or wrote through the scheme's
*internal* backing array instead of a copy, every later run in a sweep
would start from a corrupted device.  These tests pin the isolation
guarantees: the emap is bit-identical before and after a simulation, the
scheme's initial backing survives a run unchanged, and repeating a run
against the very same shared objects reproduces the result exactly.
"""

import numpy as np
import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.wearlevel import make_scheme

SMALL = ExperimentConfig(regions=128, lines_per_region=2, seed=7)


SCHEME_FACTORIES = {
    "max-we": lambda: MaxWE(0.1, 0.9),
    "pcd": lambda: PCD(0.1),
    "ps": lambda: PS.average_case(0.1),
}


class TestEmapIsolation:
    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    def test_endurance_array_bit_identical_after_simulation(self, scheme_name):
        emap = SMALL.make_emap()
        before = emap.line_endurance.copy()
        simulate_lifetime(
            emap, UniformAddressAttack(), SCHEME_FACTORIES[scheme_name](), rng=7
        )
        assert emap.line_endurance.tobytes() == before.tobytes()

    def test_endurance_array_is_write_protected(self):
        emap = SMALL.make_emap()
        with pytest.raises((ValueError, RuntimeError)):
            emap.line_endurance[0] = 1.0

    def test_emap_survives_wearleveled_bpa_run(self):
        emap = SMALL.make_emap()
        before = emap.line_endurance.copy()
        simulate_lifetime(
            emap,
            BirthdayParadoxAttack(),
            MaxWE(0.1, 0.9),
            wearleveler=make_scheme("wawl", lines_per_region=1),
            rng=7,
        )
        np.testing.assert_array_equal(emap.line_endurance, before)


class TestSchemeIsolation:
    def test_initial_backing_unchanged_by_engine(self):
        """The engine redirects slots by mutating a backing array; that must
        be a copy, never the scheme's internal state."""
        from repro.util.rng import derive_rng

        emap = SMALL.make_emap()
        # Replay the engine's initialization on a probe instance to learn
        # the exact initial slot assignment the run will start from.
        probe = MaxWE(0.1, 0.9)
        probe.initialize(emap, derive_rng(7, "sparing"))
        expected = probe.initial_backing

        sparing = MaxWE(0.1, 0.9)
        result = simulate_lifetime(emap, UniformAddressAttack(), sparing, rng=7)
        assert result.replacements > 0  # the run did redirect slots
        np.testing.assert_array_equal(sparing.initial_backing, expected)

    def test_shared_emap_runs_are_exactly_repeatable(self):
        """The sweep-driver pattern: one emap, many runs.  Any cross-run
        leak (endurance, backing, RNG state) would break bit-equality of
        a repeated configuration."""
        emap = SMALL.make_emap()
        first = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=7)
        # Interleave a different, mutation-heavy configuration.
        simulate_lifetime(emap, BirthdayParadoxAttack(), PCD(0.2), rng=13)
        second = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1), rng=7)
        assert first.writes_served == second.writes_served
        assert first.deaths == second.deaths
        assert first.replacements == second.replacements

    def test_rebuilt_emap_is_bit_identical(self):
        """The parallel runner rebuilds the emap from config in each worker;
        that rebuild must reproduce the shared-instance map exactly."""
        a = SMALL.make_emap()
        b = SMALL.make_emap()
        assert a.line_endurance.tobytes() == b.line_endurance.tobytes()
