"""Tests for result JSON serialization."""

import json

import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sim.result import SimulationResult


@pytest.fixture(scope="module")
def result():
    config = ExperimentConfig(regions=128, lines_per_region=2)
    return simulate_lifetime(
        config.make_emap(), UniformAddressAttack(), MaxWE(0.1), rng=1
    )


class TestToDict:
    def test_round_trips_through_json(self, result):
        payload = json.loads(json.dumps(result.to_dict()))
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.writes_served == pytest.approx(result.writes_served)
        assert rebuilt.deaths == result.deaths
        assert rebuilt.replacements == result.replacements
        assert rebuilt.failure_reason == result.failure_reason
        assert len(rebuilt.timeline) == len(result.timeline)

    def test_metadata_stringified(self, result):
        payload = result.to_dict()
        assert all(isinstance(value, str) for value in payload["metadata"].values())

    def test_timeline_optional(self, result):
        payload = result.to_dict(include_timeline=False)
        assert "timeline" not in payload
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.timeline == ()

    def test_derived_metric_included(self, result):
        payload = result.to_dict()
        assert payload["normalized_lifetime"] == pytest.approx(
            result.normalized_lifetime
        )

    def test_inconsistent_payload_rejected(self, result):
        payload = result.to_dict()
        payload["normalized_lifetime"] = 0.999
        with pytest.raises(ValueError, match="inconsistent"):
            SimulationResult.from_dict(payload)

    def test_timeline_events_preserved(self, result):
        payload = result.to_dict()
        rebuilt = SimulationResult.from_dict(payload)
        for original, restored in zip(result.timeline, rebuilt.timeline):
            assert restored.action == original.action
            assert restored.dead_line == original.dead_line
