"""Tests for the parameter-sensitivity analysis."""

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.sensitivity import PARAMETERS, sensitivity_analysis


@pytest.fixture(scope="module")
def report():
    # Enough regions that the SWR share moves the region counts smoothly;
    # at very small scales its elasticity is dominated by rounding jumps.
    config = ExperimentConfig(regions=512, lines_per_region=4)
    return sensitivity_analysis(config)


class TestStructure:
    def test_all_parameters_reported(self, report):
        assert set(report) == set(PARAMETERS)

    def test_base_lifetime_shared(self, report):
        lifetimes = {s.base_lifetime for s in report.values()}
        assert len(lifetimes) == 1

    def test_subset_selection(self):
        config = ExperimentConfig(regions=128, lines_per_region=2)
        report = sensitivity_analysis(config, parameters=("q",))
        assert set(report) == {"q"}

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError, match="unknown parameters"):
            sensitivity_analysis(parameters=("line_bytes",))

    def test_step_validation(self):
        with pytest.raises(ValueError):
            sensitivity_analysis(relative_step=0.0)


class TestPaperNarrative:
    """Section 5.2's reasoning as measured elasticities."""

    def test_spare_fraction_is_the_strong_lever(self, report):
        assert report["spare_fraction"].elasticity > 0.3

    def test_swr_share_is_nearly_inelastic_under_uaa(self, report):
        """Why the paper can take 90% SWRs for free: lifetime barely moves."""
        assert abs(report["swr_fraction"].elasticity) < 0.2

    def test_variation_mildly_hurts(self, report):
        assert -0.6 < report["q"].elasticity < 0.0

    def test_spare_dominates_swr(self, report):
        assert (
            report["spare_fraction"].elasticity
            > 3 * abs(report["swr_fraction"].elasticity)
        )

    def test_elasticity_sign_matches_direction(self, report):
        sensitivity = report["spare_fraction"]
        assert sensitivity.perturbed_lifetime > sensitivity.base_lifetime
