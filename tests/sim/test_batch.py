"""Tests for the batch experiment runner."""

import json

import pytest

from repro.sim.batch import BatchResult, RunSpec, run_batch
from repro.sim.config import ExperimentConfig

SMALL = ExperimentConfig(regions=128, lines_per_region=2)


class TestRunSpec:
    def test_defaults(self):
        spec = RunSpec(label="x")
        assert spec.attack == "uaa"
        assert spec.sparing == "max-we"

    def test_from_dict(self):
        spec = RunSpec.from_dict({"label": "a", "attack": "bpa", "wearlevel": "wawl"})
        assert spec.attack == "bpa"
        assert spec.wearlevel == "wawl"

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown spec fields"):
            RunSpec.from_dict({"label": "a", "attak": "uaa"})

    def test_workload_suite_names_accepted(self):
        spec = RunSpec(label="db", attack="database", sparing="none")
        assert spec.build_attack().describe()

    @pytest.mark.parametrize(
        "field,value",
        [("attack", "meteor"), ("sparing", "magic"), ("wearlevel", "rotator"), ("label", "")],
    )
    def test_invalid_values_rejected(self, field, value):
        payload = {"label": "x", field: value}
        with pytest.raises(ValueError):
            RunSpec.from_dict(payload)


class TestRunBatch:
    @pytest.fixture(scope="class")
    def batch(self):
        specs = [
            RunSpec(label="unprotected", attack="uaa", sparing="none"),
            {"label": "paper point", "attack": "uaa", "sparing": "max-we"},
            {"label": "bpa on wawl", "attack": "bpa", "sparing": "max-we", "wearlevel": "wawl"},
        ]
        return run_batch(specs, SMALL)

    def test_runs_in_order(self, batch):
        assert len(batch) == 3
        assert [spec.label for spec in batch.specs] == [
            "unprotected",
            "paper point",
            "bpa on wawl",
        ]

    def test_lifetime_lookup(self, batch):
        assert batch.lifetime("paper point") > batch.lifetime("unprotected")
        with pytest.raises(KeyError):
            batch.lifetime("missing")

    def test_table_renders_all_rows(self, batch):
        table = batch.to_table()
        for label in ("unprotected", "paper point", "bpa on wawl"):
            assert label in table

    def test_json_archive_round_trips(self, batch, tmp_path):
        path = tmp_path / "archive.json"
        text = batch.to_json(path)
        payload = json.loads(path.read_text())
        assert payload == json.loads(text)
        assert len(payload["runs"]) == 3
        assert payload["config"]["regions"] == 128
        first = payload["runs"][1]["result"]
        assert first["normalized_lifetime"] == pytest.approx(
            batch.lifetime("paper point")
        )

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            run_batch([], SMALL)

    def test_misaligned_result_construction_rejected(self, batch):
        with pytest.raises(ValueError, match="align"):
            BatchResult(specs=batch.specs, results=batch.results[:1])


class TestBatchCLI:
    def test_cli_batch_subcommand(self, capsys, tmp_path):
        from repro.cli import main

        spec_path = tmp_path / "specs.json"
        spec_path.write_text(
            json.dumps(
                [
                    {"label": "a", "attack": "uaa", "sparing": "none"},
                    {"label": "b", "attack": "uaa", "sparing": "max-we"},
                ]
            )
        )
        archive = tmp_path / "out.json"
        assert (
            main(
                [
                    "batch",
                    str(spec_path),
                    "--regions",
                    "128",
                    "--lines-per-region",
                    "2",
                    "--output",
                    str(archive),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch results" in out
        assert archive.exists()
