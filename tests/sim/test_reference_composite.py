"""Reference-simulator coverage for the hierarchical wear-leveler.

The composite scheme's exact path (outer region swaps + per-region inner
rotation) exercises every moving part of the reference simulator at
once; these tests run it to device failure and cross-check against the
fluid engine.
"""

import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.sim.lifetime import simulate_lifetime
from repro.sim.reference import ReferenceSimulator
from repro.sparing.none import NoSparing
from repro.wearlevel.composite import CompositeWearLeveler
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.startgap import StartGap
from repro.wearlevel.wawl import WAWL


def small_map(regions=18, lines_per_region=2, q=8.0, e_low=300.0, seed=4):
    model = LinearEnduranceModel.from_q(q, e_low=e_low)
    return linear_endurance_map(regions * lines_per_region, regions, model, rng=seed)


def make_composite(lines_per_region=2):
    return CompositeWearLeveler(
        PCMS(lines_per_region=lines_per_region, swap_interval=32),
        lambda: StartGap(gap_interval=16),
        lines_per_region,
    )


class TestCompositeExactRuns:
    def test_uaa_to_failure(self):
        emap = small_map()
        simulator = ReferenceSimulator(
            emap,
            UniformAddressAttack(random_data=False),
            NoSparing(),
            wearleveler=make_composite(),
            rng=4,
            max_writes=5_000_000,
        )
        result = simulator.run()
        assert result.deaths == 1
        assert 0.0 < result.normalized_lifetime < 1.0

    def test_uaa_close_to_fluid(self):
        emap = small_map()
        exact = ReferenceSimulator(
            emap,
            UniformAddressAttack(random_data=False),
            NoSparing(),
            wearleveler=make_composite(),
            rng=4,
            max_writes=5_000_000,
        ).run()
        fluid = simulate_lifetime(
            emap,
            UniformAddressAttack(),
            NoSparing(),
            wearleveler=make_composite(),
            rng=4,
        )
        assert exact.normalized_lifetime == pytest.approx(
            fluid.normalized_lifetime, rel=0.1
        )

    def test_bpa_with_maxwe_runs(self):
        emap = small_map(q=5.0, e_low=400.0)
        result = ReferenceSimulator(
            emap,
            BirthdayParadoxAttack(burst_length=64),
            MaxWE(2 / 18, 0.5),
            wearleveler=make_composite(),
            rng=4,
            max_writes=5_000_000,
        ).run()
        assert result.replacements >= 1
        assert "guard" not in result.failure_reason


class TestAwareSchemesExactRuns:
    def test_wawl_exact_beats_oblivious_under_bpa(self):
        """The endurance-aware mechanism's advantage survives the exact
        per-write path, not just the stationary model."""
        emap = small_map(regions=24, q=10.0, e_low=500.0)
        attack = BirthdayParadoxAttack(burst_length=64)

        wawl = ReferenceSimulator(
            emap,
            attack,
            MaxWE(2 / 24, 0.5),
            wearleveler=WAWL(lines_per_region=2, interval_scale=48),
            rng=4,
            max_writes=10_000_000,
        ).run()
        oblivious = ReferenceSimulator(
            emap,
            attack,
            MaxWE(2 / 24, 0.5),
            wearleveler=PCMS(lines_per_region=2, swap_interval=48),
            rng=4,
            max_writes=10_000_000,
        ).run()
        assert wawl.normalized_lifetime > oblivious.normalized_lifetime
