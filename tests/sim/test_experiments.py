"""Tests for the paper's sweep drivers (Figures 6-8 and Section 5.3.1)."""

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.experiments import (
    EVALUATED_WEAR_LEVELERS,
    FIG6_SPARE_FRACTIONS,
    FIG7_SWR_FRACTIONS,
    bpa_scheme_comparison,
    spare_fraction_sweep,
    swr_fraction_sweep,
    uaa_scheme_comparison,
)
from repro.util.stats import geometric_mean


@pytest.fixture(scope="module")
def config():
    # Smaller device keeps the whole module fast; results scale-invariant.
    return ExperimentConfig(regions=512, lines_per_region=4)


class TestFig6Sweep:
    @pytest.fixture(scope="class")
    def sweep(self, config):
        return spare_fraction_sweep(config)

    def test_covers_paper_fractions(self, sweep):
        assert tuple(fraction for fraction, _ in sweep) == FIG6_SPARE_FRACTIONS

    def test_monotone_increasing(self, sweep):
        lifetimes = [result.normalized_lifetime for _, result in sweep]
        assert lifetimes == sorted(lifetimes)

    def test_zero_fraction_is_unprotected(self, sweep):
        fraction, result = sweep[0]
        assert fraction == 0.0
        assert result.normalized_lifetime == pytest.approx(2 / 51, rel=0.05)

    def test_ten_percent_in_paper_band(self, sweep):
        by_fraction = dict(sweep)
        # Paper: 43.1% measured, 38.1% analytic; we accept the band.
        assert 0.33 <= by_fraction[0.1].normalized_lifetime <= 0.48


class TestFig7Sweep:
    @pytest.fixture(scope="class")
    def sweeps(self, config):
        return swr_fraction_sweep(config)

    def test_covers_paper_schemes_and_fractions(self, sweeps):
        assert tuple(sweeps.keys()) == EVALUATED_WEAR_LEVELERS
        for series in sweeps.values():
            assert tuple(fraction for fraction, _ in series) == FIG7_SWR_FRACTIONS

    def test_endurance_aware_schemes_win(self, sweeps):
        """Figure 7 ordering at any SWR point: WAWL > BWL > TLSR/PCM-S."""
        at_zero = {name: series[0][1].normalized_lifetime for name, series in sweeps.items()}
        assert at_zero["wawl"] > at_zero["bwl"] > at_zero["tlsr"]
        assert at_zero["pcm-s"] == pytest.approx(at_zero["tlsr"], rel=0.15)

    def test_ninety_percent_close_to_best(self, sweeps):
        """Paper: 90% SWRs costs ~1% versus 0% for BWL/WAWL."""
        for name in ("bwl", "tlsr"):
            series = dict(sweeps[name])
            assert series[0.9].normalized_lifetime >= 0.9 * series[0.0].normalized_lifetime


class TestFig8Comparison:
    @pytest.fixture(scope="class")
    def comparison(self, config):
        return bpa_scheme_comparison(config)

    def test_structure(self, comparison):
        assert set(comparison.keys()) == {"ps-worst", "pcd-ps", "max-we"}
        for row in comparison.values():
            assert tuple(row.keys()) == EVALUATED_WEAR_LEVELERS

    def test_gmean_ordering_matches_paper(self, comparison):
        """Paper Figure 8: Max-WE (47.4%) > PCD/PS (41.2%) > PS-worst (25.6%)."""
        gmeans = {
            name: geometric_mean(
                [result.normalized_lifetime for result in row.values()]
            )
            for name, row in comparison.items()
        }
        assert gmeans["max-we"] > gmeans["pcd-ps"] > gmeans["ps-worst"]

    def test_maxwe_gmean_in_paper_band(self, comparison):
        gmean = geometric_mean(
            [r.normalized_lifetime for r in comparison["max-we"].values()]
        )
        assert 0.40 <= gmean <= 0.55  # paper: 47.4%


class TestUAAComparison:
    @pytest.fixture(scope="class")
    def results(self, config):
        return uaa_scheme_comparison(config)

    def test_all_schemes_present(self, results):
        assert set(results.keys()) == {"no-protection", "ps-worst", "pcd-ps", "max-we"}

    def test_paper_ordering(self, results):
        """Section 5.3.1: Max-WE > PCD/PS > PS-worst > nothing."""
        lifetimes = {name: r.normalized_lifetime for name, r in results.items()}
        assert (
            lifetimes["max-we"]
            > lifetimes["pcd-ps"]
            > lifetimes["ps-worst"]
            > lifetimes["no-protection"]
        )

    def test_maxwe_improvement_factor_in_paper_band(self, results):
        """Paper: 9.5X over no protection."""
        factor = results["max-we"].improvement_over(results["no-protection"])
        assert 8.0 <= factor <= 11.0
