"""Tests for the resilient execution layer: supervision, checkpoints, faults."""

import json
import time

import numpy as np
import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.cache import ResultCache
from repro.sim.faults import FAULT_SPEC_ENV, install
from repro.sim.resilience import (
    Checkpoint,
    CheckpointWriteError,
    FailureRecord,
    ResiliencePolicy,
    RunInterrupted,
    SimulationFailure,
    TaskTimeout,
    derive_checkpoint_path,
    is_retryable,
    time_limit,
)
from repro.sim.runner import CallableTask, SimRunner, SimTask, task_identity

SMALL = ExperimentConfig(regions=64, lines_per_region=2, seed=7)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


def make_tasks(count, config=SMALL):
    """``count`` distinct tiny tasks (distinct spare fractions)."""
    fractions = np.linspace(0.01, 0.5, count)
    return [
        SimTask(
            attack="uaa",
            sparing="max-we",
            p=float(fraction),
            swr=0.9,
            config=config,
            label=f"task-{index}",
        )
        for index, fraction in enumerate(fractions)
    ]


def lifetimes(results):
    return [result.normalized_lifetime for result in results]


class _ExplodingAttackFactory:
    """Picklable factory that always raises a (non-retryable) spec bug."""

    def __call__(self, *args):
        raise ValueError("bad spec")


class TestResiliencePolicy:
    def test_defaults(self):
        policy = ResiliencePolicy()
        assert policy.timeout is None
        assert policy.retries == 2
        assert policy.max_attempts == 3
        assert not policy.fail_fast

    def test_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            ResiliencePolicy(timeout=0)
        with pytest.raises(ValueError, match="retries"):
            ResiliencePolicy(retries=-1)
        with pytest.raises(ValueError, match="jitter"):
            ResiliencePolicy(jitter=2.0)

    def test_retry_delay_is_deterministic_and_bounded(self):
        policy = ResiliencePolicy(backoff=0.1, backoff_cap=1.0, jitter=0.25)
        delays = [policy.retry_delay("some-key", attempt) for attempt in range(1, 10)]
        assert delays == [
            policy.retry_delay("some-key", attempt) for attempt in range(1, 10)
        ]
        assert all(delay <= 1.0 * 1.25 for delay in delays)
        assert delays[0] < delays[3]  # exponential growth before the cap

    def test_zero_backoff_means_no_delay(self):
        assert ResiliencePolicy(backoff=0.0).retry_delay("k", 5) == 0.0

    def test_is_retryable(self):
        assert is_retryable(RuntimeError("transient"))
        assert is_retryable(TaskTimeout("too slow"))
        assert not is_retryable(ValueError("bad spec"))
        assert not is_retryable(TypeError("bad type"))


class TestFailureRecord:
    def test_from_exception_and_round_trip(self):
        try:
            raise RuntimeError("boom")
        except RuntimeError as error:
            record = FailureRecord.from_exception(
                index=3,
                key="abc123",
                label="point",
                kind="exception",
                attempts=2,
                error=error,
            )
        assert record.exception_type == "RuntimeError"
        assert "boom" in record.message
        assert "RuntimeError" in record.traceback
        payload = record.to_dict()
        assert payload["index"] == 3 and payload["kind"] == "exception"
        assert "point" in str(record) and "2 attempt(s)" in str(record)


class TestTimeLimit:
    def test_raises_on_overrun(self):
        with pytest.raises(TaskTimeout):
            with time_limit(0.05):
                time.sleep(5.0)

    def test_noop_within_budget_and_with_none(self):
        with time_limit(5.0):
            pass
        with time_limit(None):
            time.sleep(0.001)

    def test_enforced_from_worker_thread(self):
        """Timeouts must bite off the main thread (the service's
        dispatcher threads run the serial path there); the historical
        SIGALRM guard silently skipped enforcement.  A Python-level
        loop -- the shape of real kernel work -- must be preempted near
        the budget, not run to completion."""
        import threading

        outcome = {}

        def body():
            started = time.monotonic()
            try:
                with time_limit(0.1):
                    # ~10s of interpreter-level work in small C slices:
                    # async injection can land between any two of them.
                    for _ in range(1000):
                        time.sleep(0.01)
                outcome["raised"] = False
            except TaskTimeout:
                outcome["raised"] = True
            outcome["elapsed"] = time.monotonic() - started

        worker = threading.Thread(target=body)
        worker.start()
        worker.join(timeout=30.0)
        assert not worker.is_alive()
        assert outcome["raised"], "worker-thread timeout was not enforced"
        assert outcome["elapsed"] < 4.0, "timeout fired nowhere near the budget"

    def test_worker_thread_blocking_call_still_raises(self):
        """A body stuck in one long C call cannot be preempted by async
        injection; the monotonic post-check must still convert the
        overrun into TaskTimeout when the call returns."""
        import threading

        outcome = {}

        def body():
            try:
                with time_limit(0.05):
                    time.sleep(0.4)  # single uninterruptible C call
                outcome["raised"] = False
            except TaskTimeout:
                outcome["raised"] = True

        worker = threading.Thread(target=body)
        worker.start()
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert outcome["raised"], "overrun in a C call escaped the post-check"

    def test_worker_thread_within_budget_is_clean(self):
        import threading

        outcome = {}

        def body():
            try:
                with time_limit(5.0):
                    time.sleep(0.01)
                # The cancelled watchdog must not leak an async exception
                # into code running after the block.
                time.sleep(0.05)
                outcome["ok"] = True
            except TaskTimeout:
                outcome["ok"] = False

        worker = threading.Thread(target=body)
        worker.start()
        worker.join(timeout=10.0)
        assert outcome["ok"] is True


class TestCheckpointJournal:
    def test_append_get_round_trip_across_instances(self, tmp_path):
        path = tmp_path / "run.jsonl"
        task = make_tasks(1)[0]
        key, label = task_identity(task)
        result, elapsed = task.execute()

        journal = Checkpoint(path)
        journal.append(key, result, elapsed, label)
        assert key in journal and journal.appends == 1

        reloaded = Checkpoint(path)
        assert len(reloaded) == 1
        restored = reloaded.get(key)
        assert restored is not None
        assert restored.normalized_lifetime == result.normalized_lifetime
        assert reloaded.hits == 1

    def test_append_is_idempotent_per_key(self, tmp_path):
        path = tmp_path / "run.jsonl"
        task = make_tasks(1)[0]
        key, label = task_identity(task)
        result, _ = task.execute()
        journal = Checkpoint(path)
        journal.append(key, result, label=label)
        journal.append(key, result, label=label)
        # header + exactly one record
        assert len(path.read_text().splitlines()) == 2

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tasks = make_tasks(2)
        journal = Checkpoint(path)
        for task in tasks:
            key, label = task_identity(task)
            result, _ = task.execute()
            journal.append(key, result, label=label)
        # Simulate kill -9 mid-append: truncate the last record mid-JSON.
        text = path.read_text()
        path.write_text(text[: len(text) - 40])

        reloaded = Checkpoint(path)
        assert len(reloaded) == 1  # first record survives, torn one ignored

    def test_resume_false_truncates(self, tmp_path):
        path = tmp_path / "run.jsonl"
        task = make_tasks(1)[0]
        key, label = task_identity(task)
        result, _ = task.execute()
        Checkpoint(path).append(key, result, label=label)
        fresh = Checkpoint(path, resume=False)
        assert len(fresh) == 0
        assert not path.exists()

    def test_header_schema_is_checked(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"checkpoint_schema": 999}) + "\n")
        assert len(Checkpoint(path)) == 0

    def test_derive_checkpoint_path_is_deterministic(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        a = derive_checkpoint_path("sweep", {"q": 50.0, "seed": 7})
        b = derive_checkpoint_path("sweep", {"seed": 7, "q": 50.0})
        other = derive_checkpoint_path("sweep", {"seed": 8, "q": 50.0})
        assert a == b
        assert a != other
        assert a.parent == tmp_path
        assert a.name.startswith("sweep-") and a.suffix == ".jsonl"

    def test_derive_checkpoint_path_run_id_separates_writers(self, tmp_path, monkeypatch):
        """Two concurrent jobs with the identical payload must not share
        a journal; folding the job id into the path keeps each a single
        writer, while the same job id still resumes its own ledger."""
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        payload = {"q": 50.0, "seed": 7}
        a = derive_checkpoint_path("service", payload, run_id="j-aaa")
        b = derive_checkpoint_path("service", payload, run_id="j-bbb")
        again = derive_checkpoint_path("service", payload, run_id="j-aaa")
        bare = derive_checkpoint_path("service", payload)
        assert a != b
        assert a == again
        assert bare not in (a, b)
        with pytest.raises(ValueError):
            derive_checkpoint_path("service", payload, run_id="bad/id")
        with pytest.raises(ValueError):
            derive_checkpoint_path("service", payload, run_id="")

    def test_two_writers_same_payload_do_not_interleave(self, tmp_path, monkeypatch):
        """The two-writer scenario end to end: identical batches journal
        concurrently under distinct run ids, and each ledger resumes
        exactly its own records."""
        import threading

        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        tasks = make_tasks(4)
        payload = {"batch": "same"}
        paths = {
            "one": derive_checkpoint_path("service", payload, run_id="j-one"),
            "two": derive_checkpoint_path("service", payload, run_id="j-two"),
        }
        errors = []

        def run(name):
            try:
                SimRunner(checkpoint=Checkpoint(paths[name])).run(tasks)
            except Exception as error:  # pragma: no cover - fails the test
                errors.append(error)

        writers = [threading.Thread(target=run, args=(name,)) for name in paths]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=120.0)
        assert not errors
        for path in paths.values():
            journal = Checkpoint(path)
            assert len(journal) == 4  # every record intact, none foreign


class TestCheckpointedRuns:
    def test_resume_skips_finished_work_bit_identical(self, tmp_path):
        tasks = make_tasks(6)
        baseline = SimRunner().run(tasks)

        path = tmp_path / "sweep.jsonl"
        SimRunner(checkpoint=Checkpoint(path)).run(tasks[:4])

        resumed, stats = SimRunner(checkpoint=Checkpoint(path)).run_detailed(tasks)
        assert stats.checkpoint_hits == 4
        assert stats.simulated == 2
        assert lifetimes(resumed) == lifetimes(baseline)

    def test_checkpoint_accepts_a_bare_path(self, tmp_path):
        tasks = make_tasks(3)
        path = tmp_path / "sweep.jsonl"
        SimRunner(checkpoint=path).run(tasks)
        _, stats = SimRunner(checkpoint=path).run_detailed(tasks)
        assert stats.checkpoint_hits == 3
        assert stats.simulated == 0

    def test_checkpoint_heals_a_cold_cache(self, tmp_path):
        """A checkpointed result is written through to the cache, so later
        cache-only runs hit even if the original run never cached."""
        tasks = make_tasks(2)
        path = tmp_path / "sweep.jsonl"
        SimRunner(checkpoint=path).run(tasks)

        cache = ResultCache(tmp_path / "cache")
        SimRunner(cache=cache, checkpoint=path).run(tasks)
        _, stats = SimRunner(cache=cache).run_detailed(tasks)
        assert stats.cache_hits == 2


class TestSupervisedSerial:
    def test_transient_faults_are_retried_to_identical_results(self):
        tasks = make_tasks(8)
        clean = SimRunner().run(tasks)
        install("transient=0.4,seed=3")
        results, stats = SimRunner(
            policy=ResiliencePolicy(retries=8, backoff=0.0)
        ).run_detailed(tasks)
        assert not stats.failures
        assert stats.retries > 0
        assert lifetimes(results) == lifetimes(clean)

    def test_serial_crashes_are_isolated_and_retried(self):
        tasks = make_tasks(8)
        clean = SimRunner().run(tasks)
        install("crash=0.3,seed=5")
        results, stats = SimRunner(
            policy=ResiliencePolicy(retries=10, backoff=0.0)
        ).run_detailed(tasks)
        assert not stats.failures
        assert lifetimes(results) == lifetimes(clean)

    def test_exhausted_attempts_produce_failure_records(self):
        tasks = make_tasks(3)
        install("transient=1.0,seed=1")  # every attempt fails
        results, stats = SimRunner(
            policy=ResiliencePolicy(retries=1, backoff=0.0)
        ).run_detailed(tasks)
        assert all(result is None for result in results)
        assert len(stats.failures) == 3
        for record in stats.failures:
            assert record.attempts == 2
            assert record.exception_type == "TransientFault"

    def test_run_raises_simulation_failure(self):
        install("transient=1.0,seed=1")
        with pytest.raises(SimulationFailure) as excinfo:
            SimRunner(policy=ResiliencePolicy(retries=0, backoff=0.0)).run(
                make_tasks(2)
            )
        assert len(excinfo.value.failures) == 2

    def test_non_retryable_errors_fail_immediately(self):
        task = CallableTask(
            attack_factory=_ExplodingAttackFactory(),
            sparing_factory=_ExplodingAttackFactory(),
            emap_factory=_ExplodingAttackFactory(),
            seed=1,
        )
        _, stats = SimRunner(
            policy=ResiliencePolicy(retries=5, backoff=0.0)
        ).run_detailed([task])
        assert len(stats.failures) == 1
        assert stats.failures[0].attempts == 1  # no retry budget wasted
        assert stats.failures[0].exception_type == "ValueError"

    def test_fail_fast_skips_remaining_tasks(self):
        tasks = make_tasks(4)
        install("transient=1.0,seed=1")
        _, stats = SimRunner(
            policy=ResiliencePolicy(retries=0, backoff=0.0, fail_fast=True)
        ).run_detailed(tasks)
        kinds = sorted(record.kind for record in stats.failures)
        assert "exception" in kinds
        assert "skipped" in kinds
        assert len(stats.failures) == 4

    def test_serial_timeout_preempts_a_hung_task(self):
        tasks = make_tasks(2)
        install("hang=1.0,hang-seconds=30,seed=1")
        _, stats = SimRunner(
            policy=ResiliencePolicy(timeout=0.2, retries=1, backoff=0.0)
        ).run_detailed(tasks)
        assert len(stats.failures) == 2
        assert all(record.kind == "timeout" for record in stats.failures)


class TestSupervisedParallel:
    def test_worker_crashes_respawn_pool_and_converge(self, monkeypatch):
        tasks = make_tasks(10)
        clean = SimRunner().run(tasks)
        monkeypatch.setenv(FAULT_SPEC_ENV, "crash=0.3,seed=5")
        results, stats = SimRunner(
            jobs=2, policy=ResiliencePolicy(retries=20, backoff=0.001, backoff_cap=0.05)
        ).run_detailed(tasks)
        assert not stats.failures
        assert stats.pool_respawns > 0
        assert lifetimes(results) == lifetimes(clean)

    def test_hung_workers_hit_the_deadline_and_converge(self, monkeypatch):
        tasks = make_tasks(8)
        clean = SimRunner().run(tasks)
        monkeypatch.setenv(FAULT_SPEC_ENV, "hang=0.2,hang-seconds=60,seed=9")
        results, stats = SimRunner(
            jobs=2,
            policy=ResiliencePolicy(
                timeout=1.0, retries=20, backoff=0.001, backoff_cap=0.05
            ),
        ).run_detailed(tasks)
        assert not stats.failures
        assert lifetimes(results) == lifetimes(clean)

    def test_supervision_events_are_reported(self, monkeypatch):
        tasks = make_tasks(6)
        monkeypatch.setenv(FAULT_SPEC_ENV, "transient=0.5,seed=2")
        _, stats = SimRunner(
            jobs=2, policy=ResiliencePolicy(retries=10, backoff=0.0)
        ).run_detailed(tasks)
        kinds = {event.kind for event in stats.events}
        assert "task-retry" in kinds


class TestAcceptance:
    def test_100_task_sweep_under_heavy_faults_matches_fault_free(
        self, tmp_path, monkeypatch
    ):
        """The issue's acceptance bar: >=20% crashes, >=5% hangs, corrupted
        cache entries -- the sweep still completes with zero lost tasks and
        results identical to the fault-free run."""
        tiny = ExperimentConfig(regions=32, lines_per_region=2, seed=7)
        tasks = make_tasks(100, config=tiny)
        clean = SimRunner(jobs=2).run(tasks)

        monkeypatch.setenv(
            FAULT_SPEC_ENV,
            "crash=0.2,hang=0.05,transient=0.1,corrupt-cache=0.3,"
            "seed=13,hang-seconds=60",
        )
        cache = ResultCache(tmp_path / "cache")
        results, stats = SimRunner(
            jobs=2,
            cache=cache,
            policy=ResiliencePolicy(
                timeout=1.0, retries=30, backoff=0.001, backoff_cap=0.05
            ),
        ).run_detailed(tasks)
        assert not stats.failures  # zero lost tasks
        assert stats.retries > 0
        assert lifetimes(results) == lifetimes(clean)

        # Warm rerun against the (partially corrupted) cache: corrupt
        # entries quarantine as misses and are re-simulated -- results
        # stay identical.
        monkeypatch.setenv(FAULT_SPEC_ENV, "")
        warm_cache = ResultCache(tmp_path / "cache")
        warm = SimRunner(jobs=2, cache=warm_cache).run(tasks)
        assert lifetimes(warm) == lifetimes(clean)
        assert warm_cache.stats.quarantined > 0
        assert warm_cache.stats.hits > 0


class TestShardLedgers:
    """Per-shard checkpoint ledgers and their merge-on-harvest contract."""

    def test_shard_paths_are_unique_and_adjacent(self, tmp_path):
        journal = Checkpoint(tmp_path / "run.jsonl")
        w0, w1 = journal.shard_path("w0"), journal.shard_path("w1")
        assert w0 != w1
        assert w0.parent == w1.parent == tmp_path
        assert w0.name == "run.jsonl.shard-w0"
        assert journal.shard_path("w0") == w0  # deterministic

    def test_shard_discriminator_is_validated(self, tmp_path):
        journal = Checkpoint(tmp_path / "run.jsonl")
        for bad in ("", "../escape", "a/b"):
            with pytest.raises(ValueError, match="shard discriminator"):
                journal.shard_path(bad)

    def test_derive_checkpoint_path_shard_discriminator(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CHECKPOINT_DIR", str(tmp_path))
        payload = {"q": 50.0, "seed": 7}
        primary = derive_checkpoint_path("sweep", payload)
        shards = {
            derive_checkpoint_path("sweep", payload, shard=shard)
            for shard in ("w0", "w1", 2)
        }
        # Same spec, different shards: all distinct, none the primary.
        assert len(shards) == 3
        assert primary not in shards
        for path in shards:
            assert path.parent == primary.parent
            assert path.name.startswith(primary.name + ".shard-")

    def test_merge_shards_is_deterministic_and_idempotent(self, tmp_path):
        tasks = make_tasks(4)
        identities = [task_identity(task) for task in tasks]
        reports = [task.execute() for task in tasks]

        primary = Checkpoint(tmp_path / "run.jsonl")
        # Two worker shards, two records each.
        for shard, picks in (("w0", (0, 1)), ("w1", (2, 3))):
            ledger = Checkpoint(primary.shard_path(shard), resume=False)
            for index in picks:
                key, label = identities[index]
                result, elapsed = reports[index]
                ledger.append(key, result, elapsed, label)

        assert primary.merge_shards() == 4
        for key, _ in identities:
            assert key in primary
        # Absorbed shard files are removed; a re-merge finds nothing.
        assert not list(tmp_path.glob("run.jsonl.shard-*"))
        assert primary.merge_shards() == 0
        # The merged journal resumes like any other.
        assert len(Checkpoint(primary.path)) == 4

    def test_merge_is_idempotent_per_key_across_shards(self, tmp_path):
        """The same content key committed by two workers (a stolen lease
        that both copies finished) lands exactly once in the primary."""
        task = make_tasks(1)[0]
        key, label = task_identity(task)
        result, elapsed = task.execute()

        primary = Checkpoint(tmp_path / "run.jsonl")
        for shard in ("w0", "w1"):
            Checkpoint(primary.shard_path(shard), resume=False).append(
                key, result, elapsed, label
            )
        assert primary.merge_shards() == 1
        # header + exactly one record in the merged journal
        assert len(primary.path.read_text().splitlines()) == 2

    def test_merge_tolerates_a_torn_shard_tail(self, tmp_path):
        tasks = make_tasks(2)
        primary = Checkpoint(tmp_path / "run.jsonl")
        shard = Checkpoint(primary.shard_path("w0"), resume=False)
        for task in tasks:
            key, label = task_identity(task)
            result, elapsed = task.execute()
            shard.append(key, result, elapsed, label)
        # Worker killed mid-append: tear the shard's final record.
        text = shard.path.read_text()
        shard.path.write_text(text[: len(text) - 40])

        assert primary.merge_shards() == 1  # intact record survives

    def test_append_failure_is_typed_and_non_retryable(self, tmp_path):
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        journal = Checkpoint(blocker / "run.jsonl")
        task = make_tasks(1)[0]
        key, label = task_identity(task)
        result, _ = task.execute()

        with pytest.raises(CheckpointWriteError, match="run.jsonl") as excinfo:
            journal.append(key, result, label=label)
        error = excinfo.value
        assert isinstance(error, RuntimeError)
        assert isinstance(error.__cause__, OSError)
        assert not is_retryable(error)


class TestDerivedShardPaths:
    """Satellite: ``derive_checkpoint_path(shard=...)`` must compose with
    ``run_id`` exactly as the docs promise -- shard discriminator after
    every other component, identical to ``Checkpoint(...).shard_path``,
    and re-used shard ids merging idempotently across generations."""

    def test_shard_composes_after_run_id(self, tmp_path):
        payload = {"q": 50.0, "seed": 7}
        primary = derive_checkpoint_path(
            "sweep", payload, tmp_path, run_id="j-aaa"
        )
        direct = derive_checkpoint_path(
            "sweep", payload, tmp_path, shard="w0", run_id="j-aaa"
        )
        # The pinned contract: the one-call form equals deriving the
        # primary and asking the Checkpoint for its shard location.
        assert direct == Checkpoint(primary).shard_path("w0")
        assert direct.name == primary.name + ".shard-w0"
        # Without run_id the shard still trails everything else.
        bare = derive_checkpoint_path("sweep", payload, tmp_path, shard=3)
        bare_primary = derive_checkpoint_path("sweep", payload, tmp_path)
        assert bare == Checkpoint(bare_primary).shard_path(3)

    def test_reused_shard_id_extends_and_merges_both_generations(self, tmp_path):
        """A shard id re-used after a crash (re-spawned worker, rebuilt
        coordinator) must extend the pre-crash shard -- resume=True --
        so the merge absorbs both generations."""
        payload = {"q": 50.0}
        tasks = make_tasks(2)
        shard_file = derive_checkpoint_path("sweep", payload, tmp_path, shard=0)

        key0, label0 = task_identity(tasks[0])
        result0, _ = tasks[0].execute()
        Checkpoint(shard_file, resume=True).append(key0, result0, label=label0)

        # Second incarnation of the same shard id: must append, not clobber.
        key1, label1 = task_identity(tasks[1])
        result1, _ = tasks[1].execute()
        Checkpoint(shard_file, resume=True).append(key1, result1, label=label1)

        primary = Checkpoint(
            derive_checkpoint_path("sweep", payload, tmp_path), resume=True
        )
        assert primary.merge_shards() == 2
        assert key0 in primary and key1 in primary
        assert not shard_file.exists()  # absorbed
