"""Tests for the parallel simulation runner."""

import pickle

import numpy as np
import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sim.montecarlo import monte_carlo_lifetime
from repro.sim.runner import (
    CallableTask,
    RunnerStats,
    SimRunner,
    SimTask,
    build_attack,
    build_sparing,
    build_wearleveler,
    fork_task_seeds,
    resolve_jobs,
)

SMALL = ExperimentConfig(regions=128, lines_per_region=2, seed=7)

TASKS = [
    SimTask(attack="uaa", sparing="max-we", p=0.1, swr=0.9, config=SMALL),
    SimTask(attack="uaa", sparing="none", config=SMALL),
    SimTask(attack="bpa", sparing="pcd", p=0.2, config=SMALL),
    SimTask(attack="bpa", sparing="ps-worst", wearlevel="tlsr", config=SMALL),
    SimTask(attack="uaa", sparing="max-we", p=0.3, config=SMALL, seed=42),
]


class TestSimTask:
    def test_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="attack"):
            SimTask(attack="nope", config=SMALL)
        with pytest.raises(ValueError, match="sparing"):
            SimTask(sparing="nope", config=SMALL)
        with pytest.raises(ValueError, match="wearlevel"):
            SimTask(wearlevel="nope", config=SMALL)

    def test_is_pickle_safe(self):
        for task in TASKS:
            clone = pickle.loads(pickle.dumps(task))
            assert clone == task

    def test_seed_defaults_to_config_seed(self):
        assert SimTask(config=SMALL).effective_seed == SMALL.seed
        assert SimTask(config=SMALL, seed=3).effective_seed == 3

    def test_execute_matches_direct_simulation(self):
        task = TASKS[0]
        direct = simulate_lifetime(
            SMALL.make_emap(),
            build_attack("uaa"),
            build_sparing("max-we", 0.1, 0.9),
            wearleveler=build_wearleveler("none"),
            rng=SMALL.seed,
        )
        result, elapsed = task.execute()
        assert result.normalized_lifetime == direct.normalized_lifetime
        assert elapsed >= 0.0

    def test_emap_seed_override_changes_placement(self):
        base = SimTask(config=SMALL).make_emap()
        moved = SimTask(config=SMALL, emap_seed=12345).make_emap()
        # Same endurance multiset, different placement (UAA lifetimes are
        # placement-invariant, so assert on the map itself).
        assert sorted(base.line_endurance) == sorted(moved.line_endurance)
        assert base.line_endurance.tobytes() != moved.line_endurance.tobytes()

    def test_cache_payload_excludes_label(self):
        a = SimTask(config=SMALL, label="one")
        b = SimTask(config=SMALL, label="two")
        assert a.cache_payload() == b.cache_payload()


class TestBuilders:
    def test_unknown_names_raise(self):
        with pytest.raises(ValueError):
            build_attack("nope")
        with pytest.raises(ValueError):
            build_sparing("nope", 0.1, 0.9)
        with pytest.raises(ValueError):
            build_wearleveler("nope")

    def test_none_wearleveler_is_none(self):
        assert build_wearleveler("none") is None


class TestRunnerDeterminism:
    def test_parallel_identical_to_serial(self):
        serial = SimRunner(jobs=1).run(TASKS)
        parallel = SimRunner(jobs=4).run(TASKS)
        for a, b in zip(serial, parallel):
            assert a.normalized_lifetime == b.normalized_lifetime
            assert a.writes_served == b.writes_served
            assert a.deaths == b.deaths
            assert a.replacements == b.replacements

    def test_results_arrive_in_submission_order(self):
        results = SimRunner(jobs=4).run(TASKS)
        expected = [task.execute()[0] for task in TASKS]
        for got, want in zip(results, expected):
            assert got.normalized_lifetime == want.normalized_lifetime

    def test_fork_task_seeds_deterministic_and_distinct(self):
        a = fork_task_seeds(7, 8)
        b = fork_task_seeds(7, 8)
        assert a == b
        assert len(set(a)) == 8
        assert fork_task_seeds(8, 8) != a


class TestRunnerMechanics:
    def test_resolve_jobs(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_stats_shape(self):
        results, stats = SimRunner(jobs=1).run_detailed(TASKS[:3])
        assert len(results) == 3
        assert isinstance(stats, RunnerStats)
        assert stats.tasks == 3
        assert stats.simulated == 3
        assert stats.cache_hits == 0
        assert stats.jobs == 1
        assert stats.wall_seconds > 0.0
        assert len(stats.task_seconds) == 3
        assert stats.sims_per_second > 0.0
        assert "3 tasks" in str(stats)

    def test_single_task_stays_serial(self):
        _, stats = SimRunner(jobs=8).run_detailed(TASKS[:1])
        assert stats.jobs == 1

    def test_empty_task_list(self):
        results, stats = SimRunner(jobs=4).run_detailed([])
        assert results == []
        assert stats.tasks == 0

    def test_unpicklable_callable_tasks_fall_back_to_serial(self):
        emap = SMALL.make_emap()
        tasks = [
            CallableTask(
                attack_factory=UniformAddressAttack,
                sparing_factory=lambda: MaxWE(0.1),  # lambda: not picklable
                emap_factory=lambda seed: emap,
                seed=seed,
            )
            for seed in fork_task_seeds(7, 3)
        ]
        results, stats = SimRunner(jobs=4).run_detailed(tasks)
        assert stats.jobs == 1  # graceful serial fallback
        assert len(results) == 3


class TestMonteCarloThroughRunner:
    def test_parallel_replicas_match_serial(self):
        serial = monte_carlo_lifetime(
            UniformAddressAttack, MaxWE, config=SMALL, replicas=6
        )
        parallel = monte_carlo_lifetime(
            UniformAddressAttack, MaxWE, config=SMALL, replicas=6, jobs=4
        )
        np.testing.assert_array_equal(serial.lifetimes, parallel.lifetimes)

    def test_lambda_factories_still_work_with_jobs(self):
        serial = monte_carlo_lifetime(
            UniformAddressAttack, lambda: MaxWE(0.1), config=SMALL, replicas=4
        )
        fanned = monte_carlo_lifetime(
            UniformAddressAttack, lambda: MaxWE(0.1), config=SMALL, replicas=4, jobs=4
        )
        np.testing.assert_array_equal(serial.lifetimes, fanned.lifetimes)
