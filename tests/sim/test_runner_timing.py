"""Regression tests for the runner's timing decomposition.

The historical parallel path charged each task the supervisor-observed
wall from submission to harvest, conflating pool queue wait and the
supervisor's poll latency with the simulation's own runtime.  These
tests saturate a 2-job pool with tasks of a known duration and pin the
contract: ``task_seconds`` reports the worker-measured run time only,
with queue/harvest/requeue overhead reported separately.
"""

import time

import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.runner import CallableTask, SimRunner, build_attack, build_sparing

SMALL = ExperimentConfig(regions=64, lines_per_region=2, seed=7)

#: Known per-task duration; large enough to dominate the tiny simulation
#: and the supervisor's poll granularity.
SLEEP_SECONDS = 0.75


class _SleepyEmapFactory:
    """Picklable endurance-map factory with a known, fixed delay."""

    def __init__(self, seconds: float, config: ExperimentConfig) -> None:
        self.seconds = seconds
        self.config = config

    def __call__(self, seed: int):
        time.sleep(self.seconds)
        return self.config.with_(seed=seed % (2**31)).make_emap()


class _UAAFactory:
    def __call__(self):
        return build_attack("uaa")


class _MaxWEFactory:
    def __call__(self):
        return build_sparing("max-we", 0.1, 0.9)


def _sleepy_tasks(count: int) -> list:
    return [
        CallableTask(
            attack_factory=_UAAFactory(),
            sparing_factory=_MaxWEFactory(),
            emap_factory=_SleepyEmapFactory(SLEEP_SECONDS, SMALL),
            seed=100 + index,
            label=f"sleepy-{index}",
        )
        for index in range(count)
    ]


class TestParallelTimingDecomposition:
    def test_reported_runtime_excludes_queue_wait(self):
        """Four known-duration tasks through a saturated 2-job pool."""
        tasks = _sleepy_tasks(4)
        results, stats = SimRunner(jobs=2).run_detailed(tasks)

        assert all(result is not None for result in results)
        # Each task's reported time is the worker's own measurement:
        # at least the sleep, and nowhere near sleep + a queue round.
        for seconds in stats.task_seconds:
            assert seconds >= SLEEP_SECONDS
            assert seconds < SLEEP_SECONDS * 1.5
        # The worker-run times overlapped two at a time, so their sum
        # exceeds the run's wall clock -- impossible under the old
        # submit-to-harvest accounting, which could never sum past wall.
        assert sum(stats.task_seconds) > stats.wall_seconds
        # The overhead components are reported, not folded into tasks.
        assert stats.queue_seconds >= 0.0
        assert stats.harvest_seconds >= 0.0
        assert stats.requeue_wait_seconds == 0.0  # no pool breakage here

    def test_overhead_timings_recorded_per_attempt(self):
        tasks = _sleepy_tasks(3)
        _, stats = SimRunner(jobs=2).run_detailed(tasks)
        timings = stats.metrics["timings"]
        for name in ("runner/queue_wait", "runner/worker_run", "runner/harvest_latency"):
            assert timings[name]["count"] == 3
        assert timings["runner/worker_run"]["sum"] == pytest.approx(
            sum(stats.task_seconds)
        )


class TestSerialTiming:
    def test_serial_task_seconds_match_known_duration(self):
        tasks = _sleepy_tasks(2)
        _, stats = SimRunner(jobs=1).run_detailed(tasks)
        for seconds in stats.task_seconds:
            assert SLEEP_SECONDS <= seconds < SLEEP_SECONDS * 1.5
        assert stats.queue_seconds == 0.0
        assert stats.harvest_seconds == 0.0
        assert stats.metrics["timings"]["runner/worker_run"]["count"] == 2
