"""Tests for failure-timeline recording in the fluid engine."""

import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.salvage.ecp import ECP
from repro.sim.lifetime import LifetimeSimulator, simulate_lifetime
from repro.sim.result import TimelineEvent
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD


def emap(regions=60, q=20.0, seed=3):
    model = LinearEnduranceModel.from_q(q, e_low=100.0)
    return linear_endurance_map(regions, regions, model, rng=seed)


class TestTimelineRecording:
    def test_timeline_matches_death_count(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), MaxWE(0.1), rng=1)
        assert len(result.timeline) == result.deaths

    def test_event_ordering_monotone_in_writes(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), MaxWE(0.1), rng=1)
        served = [event.writes_served for event in result.timeline]
        assert served == sorted(served)

    def test_actions_classified(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), MaxWE(0.1), rng=1)
        actions = result.deaths_by_action()
        assert actions.get("replaced", 0) == result.replacements
        assert actions.get("device-failed", 0) == 1

    def test_pcd_records_removals(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), PCD(0.1), rng=1)
        actions = result.deaths_by_action()
        assert actions.get("removed", 0) == result.deaths

    def test_ecp_records_extensions(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), ECP(pointers=2), rng=1)
        actions = result.deaths_by_action()
        assert actions.get("extended", 0) >= 1

    def test_no_protection_single_fatal_event(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), NoSparing(), rng=1)
        assert len(result.timeline) == 1
        assert result.timeline[0].action == "device-failed"

    def test_replacement_lines_recorded(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), MaxWE(0.1), rng=1)
        replaced = [e for e in result.timeline if e.action == "replaced"]
        assert replaced
        assert all(isinstance(e.replacement_line, int) for e in replaced)

    def test_first_death_fraction(self):
        result = simulate_lifetime(emap(), UniformAddressAttack(), MaxWE(0.1), rng=1)
        fraction = result.first_death_fraction()
        assert fraction is not None
        assert 0.0 < fraction < 1.0

    def test_recording_can_be_disabled(self):
        simulator = LifetimeSimulator(
            emap(), UniformAddressAttack(), MaxWE(0.1), rng=1, record_timeline=False
        )
        result = simulator.run()
        assert result.timeline == ()
        assert result.first_death_fraction() is None

    def test_event_cap_respected(self):
        simulator = LifetimeSimulator(
            emap(), UniformAddressAttack(), MaxWE(0.1), rng=1, max_timeline_events=3
        )
        result = simulator.run()
        assert len(result.timeline) == 3
        assert result.deaths > 3  # counting continues past the cap


class TestTimelineSemantics:
    def test_maxwe_absorbs_failures_across_most_of_life(self):
        """The sparing scheme's whole point: the first death happens early
        (the weakest RWR line) but the device keeps serving writes for
        several times longer."""
        result = simulate_lifetime(emap(q=50.0), UniformAddressAttack(), MaxWE(0.1), rng=1)
        fraction = result.first_death_fraction()
        assert fraction is not None
        assert fraction < 0.7
        # ... and the failure absorption phase hosts every other death.
        assert all(e.writes_served >= result.timeline[0].writes_served for e in result.timeline)

    def test_event_is_frozen(self):
        event = TimelineEvent(writes_served=1.0, slot=0, dead_line=0, action="replaced")
        with pytest.raises(AttributeError):
            event.slot = 1  # type: ignore[misc]
