"""Tests for the deterministic fault-injection harness."""

import threading

import pytest

from repro.sim.faults import (
    CRASH_EXIT_CODE,
    FAULT_SPEC_ENV,
    FaultInjector,
    FaultSpec,
    FaultSpecError,
    InjectedCrash,
    TransientFault,
    active_injector,
    active_task_key,
    install,
    is_worker_process,
    task_scope,
)


@pytest.fixture(autouse=True)
def _clean_activation(monkeypatch):
    """Each test starts with no injector installed and no env spec."""
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


class TestFaultSpec:
    def test_defaults_are_inactive(self):
        spec = FaultSpec()
        assert not spec.active
        assert spec.crash == spec.hang == spec.transient == spec.corrupt_cache == 0.0

    def test_parse_full_grammar(self):
        spec = FaultSpec.parse(
            "crash=0.2,hang=0.05,transient=0.1,corrupt-cache=0.1,seed=7,hang-seconds=30"
        )
        assert spec.crash == 0.2
        assert spec.hang == 0.05
        assert spec.transient == 0.1
        assert spec.corrupt_cache == 0.1
        assert spec.seed == 7
        assert spec.hang_seconds == 30.0
        assert spec.active

    def test_parse_empty_is_inactive(self):
        assert not FaultSpec.parse("").active
        assert not FaultSpec.parse("  ").active

    def test_parse_round_trips_through_to_spec(self):
        spec = FaultSpec.parse("crash=0.25,transient=0.5,seed=3")
        assert FaultSpec.parse(spec.to_spec()) == spec

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(FaultSpecError, match="unknown fault spec key"):
            FaultSpec.parse("explode=0.5")

    def test_parse_rejects_malformed_items(self):
        with pytest.raises(FaultSpecError, match="expected key=value"):
            FaultSpec.parse("crash")

    def test_parse_rejects_non_numbers(self):
        with pytest.raises(FaultSpecError, match="needs a number"):
            FaultSpec.parse("crash=often")

    def test_rejects_out_of_range_probabilities(self):
        with pytest.raises(FaultSpecError, match="must be in \\[0, 1\\]"):
            FaultSpec.parse("crash=1.5")
        with pytest.raises(FaultSpecError):
            FaultSpec(hang=-0.1)

    def test_rejects_negative_hang_seconds(self):
        with pytest.raises(FaultSpecError, match="hang-seconds"):
            FaultSpec.parse("hang-seconds=-1")

    def test_crash_exit_code_is_distinctive(self):
        assert CRASH_EXIT_CODE == 77


class TestDeterminism:
    def test_decisions_are_pure_functions_of_inputs(self):
        a = FaultInjector(FaultSpec(transient=0.5, seed=11))
        b = FaultInjector(FaultSpec(transient=0.5, seed=11))
        for attempt in range(1, 6):
            outcome_a = outcome_b = None
            try:
                a.before_execute("task-key", attempt)
            except TransientFault:
                outcome_a = "transient"
            try:
                b.before_execute("task-key", attempt)
            except TransientFault:
                outcome_b = "transient"
            assert outcome_a == outcome_b

    def test_attempts_reroll_independently(self):
        """Retries must be able to escape a fault: across many attempts a
        p=0.5 transient both fires and does not fire."""
        injector = FaultInjector(FaultSpec(transient=0.5, seed=2))
        outcomes = set()
        for attempt in range(1, 20):
            try:
                injector.before_execute("some-task", attempt)
                outcomes.add("clean")
            except TransientFault:
                outcomes.add("transient")
        assert outcomes == {"clean", "transient"}

    def test_seed_decorrelates_campaigns(self):
        def decisions(seed):
            injector = FaultInjector(FaultSpec(transient=0.5, seed=seed))
            pattern = []
            for attempt in range(1, 30):
                try:
                    injector.before_execute("k", attempt)
                    pattern.append(False)
                except TransientFault:
                    pattern.append(True)
            return pattern

        assert decisions(1) != decisions(2)

    def test_corrupt_cache_decision_is_deterministic(self):
        a = FaultInjector(FaultSpec(corrupt_cache=0.5, seed=9))
        b = FaultInjector(FaultSpec(corrupt_cache=0.5, seed=9))
        keys = [f"key-{i}" for i in range(40)]
        decisions_a = [a.corrupt_cache_entry(key) for key in keys]
        decisions_b = [b.corrupt_cache_entry(key) for key in keys]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)


class TestInjection:
    def test_crash_raises_in_process(self):
        injector = FaultInjector(FaultSpec(crash=1.0))
        assert not is_worker_process()
        with pytest.raises(InjectedCrash):
            injector.before_execute("k", 1)
        assert injector.injected["crash"] == 1

    def test_transient_raises_and_counts(self):
        injector = FaultInjector(FaultSpec(transient=1.0))
        with pytest.raises(TransientFault):
            injector.before_execute("k", 1)
        assert injector.injected["transient"] == 1

    def test_zero_probability_never_fires(self):
        injector = FaultInjector(FaultSpec())
        for attempt in range(1, 50):
            injector.before_execute("k", attempt)
        assert all(count == 0 for count in injector.injected.values())


class TestActivation:
    def test_off_by_default(self):
        assert active_injector() is None

    def test_install_and_clear(self):
        installed = install("transient=0.5")
        assert active_injector() is installed
        assert installed.spec.transient == 0.5
        install(None)
        assert active_injector() is None

    def test_install_inactive_spec_is_none(self):
        assert install(FaultSpec()) is None
        assert active_injector() is None

    def test_env_spec_activates(self, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "transient=0.25,seed=4")
        injector = active_injector()
        assert injector is not None
        assert injector.spec.transient == 0.25
        # The parsed injector is reused while the env text is unchanged.
        assert active_injector() is injector

    def test_install_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(FAULT_SPEC_ENV, "transient=0.25")
        installed = install("crash=0.5")
        assert active_injector() is installed


class TestNetworkFaultSpec:
    """The fabric's network fault kinds ride the same spec grammar."""

    def test_parse_network_grammar(self):
        spec = FaultSpec.parse(
            "drop=0.1,duplicate=0.2,delay=0.05,partition=0.08,slow-worker=0.3,"
            "delay-seconds=0.01,partition-seconds=1.5,slow-seconds=0.4,seed=9"
        )
        assert spec.drop == 0.1
        assert spec.duplicate == 0.2
        assert spec.delay == 0.05
        assert spec.partition == 0.08
        assert spec.slow_worker == 0.3
        assert spec.delay_seconds == 0.01
        assert spec.partition_seconds == 1.5
        assert spec.slow_seconds == 0.4
        assert spec.active

    def test_network_spec_round_trips(self):
        spec = FaultSpec.parse("drop=0.25,partition=0.1,slow-worker=0.5,seed=3")
        assert FaultSpec.parse(spec.to_spec()) == spec

    def test_network_probabilities_are_validated(self):
        for key in ("drop", "duplicate", "delay", "partition", "slow-worker"):
            with pytest.raises(FaultSpecError, match="must be in \\[0, 1\\]"):
                FaultSpec.parse(f"{key}=1.5")

    def test_network_only_spec_is_active(self):
        assert FaultSpec.parse("drop=0.1").active
        assert FaultSpec.parse("duplicate=0.1").active


class TestNetworkFaultDeterminism:
    def test_message_faults_are_pure_functions_of_channel_and_seq(self):
        spec = FaultSpec(drop=0.3, duplicate=0.2, delay=0.1, seed=5)
        rolls = [
            (kind, seq, FaultInjector(spec).message_fault(kind, "worker-w0", seq))
            for kind in ("drop", "duplicate", "delay")
            for seq in range(50)
        ]
        rerolls = [
            (kind, seq, FaultInjector(spec).message_fault(kind, "worker-w0", seq))
            for kind in ("drop", "duplicate", "delay")
            for seq in range(50)
        ]
        assert rolls == rerolls
        assert any(hit for _, _, hit in rolls)  # the campaign actually fires

    def test_channels_roll_independently(self):
        spec = FaultSpec(drop=0.3, seed=5)
        injector = FaultInjector(spec)
        a = [injector.message_fault("drop", "worker-w0", seq) for seq in range(100)]
        b = [injector.message_fault("drop", "worker-w1", seq) for seq in range(100)]
        assert a != b  # decorrelated streams under one seed

    def test_partition_rolls_per_lease(self):
        spec = FaultSpec(partition=0.25, seed=7)
        first = [
            FaultInjector(spec).partition_now("worker-w0", seq) for seq in range(40)
        ]
        again = [
            FaultInjector(spec).partition_now("worker-w0", seq) for seq in range(40)
        ]
        assert first == again
        assert any(first)

    def test_slow_worker_stall_returns_configured_seconds(self):
        spec = FaultSpec(slow_worker=1.0, slow_seconds=0.125, seed=1)
        injector = FaultInjector(spec)
        assert injector.slow_worker_stall("some-key", 0) == 0.125
        quiet = FaultInjector(FaultSpec(slow_worker=0.0, seed=1))
        assert quiet.slow_worker_stall("some-key", 0) == 0.0

    def test_injection_counters_track_network_kinds(self):
        spec = FaultSpec(drop=1.0, partition=1.0, slow_worker=1.0, seed=2)
        injector = FaultInjector(spec)
        injector.message_fault("drop", "worker-w0", 0)
        injector.partition_now("worker-w0", 1)
        injector.slow_worker_stall("key", 0)
        counts = injector.injected
        assert counts["drop"] == 1
        assert counts["partition"] == 1
        assert counts["slow-worker"] == 1

    def test_zero_probability_network_faults_never_fire(self):
        injector = FaultInjector(FaultSpec(transient=0.5, seed=3))
        assert not any(
            injector.message_fault("drop", "worker-w0", seq) for seq in range(200)
        )
        assert not any(
            injector.partition_now("worker-w0", seq) for seq in range(200)
        )


class TestTaskScope:
    def test_nested_scopes_restore(self):
        assert active_task_key() == ""
        with task_scope("outer"):
            assert active_task_key() == "outer"
            with task_scope("inner"):
                assert active_task_key() == "inner"
            assert active_task_key() == "outer"
        assert active_task_key() == ""

    def test_task_scope_is_thread_local(self):
        """A dispatcher thread's task key must not re-key corruption
        rolls for runs executing on other threads."""
        pinned = threading.Event()
        release = threading.Event()

        def dispatcher():
            with task_scope("other-thread-task"):
                pinned.set()
                release.wait(timeout=30)

        worker = threading.Thread(target=dispatcher, daemon=True)
        worker.start()
        assert pinned.wait(timeout=30)
        try:
            assert active_task_key() == ""
            with task_scope("main"):
                assert active_task_key() == "main"
        finally:
            release.set()
            worker.join(timeout=30)
        assert active_task_key() == ""


class TestControlPlaneFaults:
    """The ``coordinator-crash`` / ``service-kill`` kinds target the
    control plane (supervisor, service dispatcher) rather than task
    attempts."""

    def test_parse_and_round_trip(self):
        spec = FaultSpec.parse("coordinator-crash=0.3,service-kill=0.25,seed=5")
        assert spec.coordinator_crash == 0.3
        assert spec.service_kill == 0.25
        assert spec.active
        assert FaultSpec.parse(spec.to_spec()) == spec

    def test_probabilities_are_validated(self):
        with pytest.raises(FaultSpecError, match="must be in \\[0, 1\\]"):
            FaultSpec.parse("coordinator-crash=1.5")
        with pytest.raises(FaultSpecError):
            FaultSpec(service_kill=-0.1)

    def test_control_plane_only_spec_is_active(self):
        assert FaultSpec.parse("coordinator-crash=0.1").active
        assert FaultSpec.parse("service-kill=0.1").active

    def test_coordinator_crash_rolls_once_per_key_deterministically(self):
        a = FaultInjector(FaultSpec(coordinator_crash=0.5, seed=9))
        b = FaultInjector(FaultSpec(coordinator_crash=0.5, seed=9))
        keys = [f"key-{i}" for i in range(40)]
        decisions = [a.coordinator_crash_now(key) for key in keys]
        assert decisions == [b.coordinator_crash_now(key) for key in keys]
        assert any(decisions) and not all(decisions)
        assert a.injected["coordinator-crash"] == sum(decisions)

    def test_service_kill_is_inert_outside_a_marked_service_process(self):
        """Embedded services (inside the test runner!) must never roll a
        hard kill; only ``python -m repro.service`` marks itself."""
        injector = FaultInjector(FaultSpec(service_kill=1.0, seed=1))
        assert injector.service_kill_now("batch-key", 1) is False
        assert injector.injected["service-kill"] == 0

    def test_service_kill_rerolls_per_dispatch_attempt(self, monkeypatch):
        monkeypatch.setattr("repro.sim.faults._is_service", True)
        injector = FaultInjector(FaultSpec(service_kill=0.5, seed=4))
        outcomes = {
            injector.service_kill_now("batch-key", attempt)
            for attempt in range(1, 30)
        }
        # A sub-1.0 probability must eventually let the job through: the
        # durable dispatch counter decorrelates the rolls.
        assert outcomes == {True, False}
