"""Unit tests for the invariant catalog: every predicate must accept a
consistent state and flag its own hand-corrupted variant."""

import numpy as np
import pytest

from repro.obs.metrics import MetricsRegistry
from repro.verify.invariants import (
    CHEAP_CADENCE,
    COST_CHEAP,
    COST_FULL,
    DEFAULT_INVARIANTS,
    EngineGuard,
    EngineView,
    Invariant,
    InvariantRegistry,
    InvariantViolation,
    normalize_paranoia,
)

BY_NAME = {invariant.name: invariant for invariant in DEFAULT_INVARIANTS}


class _PoolScheme:
    """Scheme stub with controllable pool accounting."""

    def __init__(self, accounting=None):
        self.accounting = accounting

    def pool_accounting(self):
        return self.accounting

    def check_integrity(self, backing=None, dead_lines=None):
        return None


def make_view(**overrides) -> EngineView:
    """A small, fully self-consistent engine state.

    Four slots backed by lines 0..3 of a six-line device; every slot has
    consumed exactly one unit of wear, so ``served = eta * 4``.
    """
    endurance = np.array([10.0, 10.0, 10.0, 10.0, 5.0, 5.0])
    backing = np.array([0, 1, 2, 3])
    weights = np.full(4, 0.25)
    # death time = budget / weight = 40; at v_now = 4 each slot has served
    # (4 * 0.25) = 1 write of wear.
    state = dict(
        served=4.0,
        v_now=4.0,
        deaths=0,
        eta=1.0,
        weights=weights,
        backing=backing,
        current_death=np.full(4, 40.0),
        endurance=endurance,
        total_endurance=float(endurance.sum()),
        sparing=_PoolScheme(),
        budget=endurance[backing].copy(),
        in_service=np.ones(4, dtype=bool),
        dead_mask=np.zeros(6, dtype=bool),
        wear_retired=0.0,
        wear_extended=0.0,
        guard_deaths=0,
        last_served=3.0,
        last_v=3.0,
        rounds=5,
        tolerance=1e-9,
        final=False,
    )
    state.update(overrides)
    return EngineView(**state)


class TestCleanState:
    @pytest.mark.parametrize("name", sorted(BY_NAME))
    def test_every_predicate_accepts_a_consistent_state(self, name):
        assert BY_NAME[name].check(make_view()) is None


class TestEachPredicateCatchesItsCorruption:
    def test_clock_monotone_rejects_negative_clock(self):
        message = BY_NAME["clock-monotone"].check(make_view(v_now=-1.0))
        assert message is not None and "negative" in message

    def test_clock_monotone_rejects_backwards_clock(self):
        message = BY_NAME["clock-monotone"].check(make_view(v_now=2.0, last_v=3.0))
        assert message is not None and "backwards" in message

    def test_served_bounds_rejects_negative_served(self):
        message = BY_NAME["served-bounds"].check(make_view(served=-1.0))
        assert message is not None and "negative" in message

    def test_served_bounds_rejects_shrinking_served(self):
        message = BY_NAME["served-bounds"].check(make_view(served=2.0, last_served=3.0))
        assert message is not None and "decreased" in message

    def test_served_bounds_rejects_overserving_the_device(self):
        # More writes than the whole device can endure.
        message = BY_NAME["served-bounds"].check(
            make_view(served=100.0, current_death=np.full(4, np.inf))
        )
        assert message is not None and "exceed" in message

    def test_death_count_rejects_counter_skew(self):
        message = BY_NAME["death-count"].check(make_view(deaths=3))
        assert message is not None and "disagrees" in message

    def test_pool_accounting_rejects_leaked_spares(self):
        scheme = _PoolScheme({"size": 4, "free": 1, "allocated": 2})
        message = BY_NAME["spare-pool-accounting"].check(make_view(sparing=scheme))
        assert message is not None and "account" in message

    def test_pool_accounting_rejects_lmt_over_occupancy(self):
        scheme = _PoolScheme(
            {"size": 4, "free": 1, "allocated": 3, "lmt_entries": 7}
        )
        message = BY_NAME["spare-pool-accounting"].check(make_view(sparing=scheme))
        assert message is not None and "LMT" in message

    def test_wear_conservation_rejects_a_skewed_integral(self):
        message = BY_NAME["wear-conservation"].check(make_view(served=7.5))
        assert message is not None and "disagree" in message

    def test_nonnegative_endurance_rejects_negative_budget(self):
        budget = np.array([10.0, -2.0, 10.0, 10.0])
        message = BY_NAME["non-negative-endurance"].check(make_view(budget=budget))
        assert message is not None and "negative wear budget" in message

    def test_nonnegative_endurance_rejects_deaths_in_the_past(self):
        death = np.array([40.0, 1.0, 40.0, 40.0])
        message = BY_NAME["non-negative-endurance"].check(
            make_view(current_death=death)
        )
        assert message is not None and "die in the past" in message

    def test_mapping_consistency_rejects_aliased_lines(self):
        backing = np.array([0, 0, 2, 3])
        message = BY_NAME["mapping-consistency"].check(make_view(backing=backing))
        assert message is not None and "backs 2 slots" in message

    def test_mapping_consistency_rejects_out_of_device_lines(self):
        backing = np.array([0, 1, 2, 99])
        message = BY_NAME["mapping-consistency"].check(make_view(backing=backing))
        assert message is not None and "outside the device" in message

    def test_no_dead_line_writes_rejects_writes_through_a_corpse(self):
        dead = np.zeros(6, dtype=bool)
        dead[2] = True
        message = BY_NAME["no-dead-line-writes"].check(make_view(dead_mask=dead))
        assert message is not None and "dead line 2" in message


class TestRegistry:
    def test_default_catalog_is_loaded(self):
        registry = InvariantRegistry()
        assert len(registry) == len(DEFAULT_INVARIANTS)

    def test_duplicate_names_rejected(self):
        registry = InvariantRegistry()
        with pytest.raises(ValueError, match="already registered"):
            registry.register(DEFAULT_INVARIANTS[0])

    def test_select_partitions_by_cost(self):
        registry = InvariantRegistry()
        cheap = registry.select(include_full=False)
        everything = registry.select(include_full=True)
        assert all(invariant.cost == COST_CHEAP for invariant in cheap)
        assert set(everything) == set(DEFAULT_INVARIANTS)
        assert len(cheap) < len(everything)

    def test_invariant_rejects_unknown_cost(self):
        with pytest.raises(ValueError, match="cheap|full"):
            Invariant("bad", "expensive", "", lambda view: None)

    def test_normalize_paranoia(self):
        assert normalize_paranoia("cheap") == "cheap"
        with pytest.raises(ValueError, match="paranoia"):
            normalize_paranoia("extreme")


class TestGuardCadence:
    def _guard(self, paranoia, metrics=None, cadence=CHEAP_CADENCE):
        endurance = np.array([10.0, 10.0, 10.0, 10.0, 5.0, 5.0])
        guard = EngineGuard(
            paranoia,
            sparing=_PoolScheme(),
            endurance=endurance,
            weights=np.full(4, 0.25),
            eta=1.0,
            total_endurance=float(endurance.sum()),
            tolerance=lambda scale, events: 1e-9,
            metrics=metrics,
            cadence=cadence,
        )
        guard.start(np.array([0, 1, 2, 3]))
        return guard

    @staticmethod
    def _view_of(guard, **overrides):
        def build():
            v_now = 4.0 * guard.rounds / max(guard.rounds, 1)
            state = dict(
                served=overrides.pop("served", 0.0),
                v_now=overrides.pop("v_now", 0.0),
                deaths=0,
                backing=np.array([0, 1, 2, 3]),
                current_death=np.full(4, 40.0),
            )
            state.update(overrides)
            return guard.make_view(**state)

        return build

    def test_off_is_rejected(self):
        with pytest.raises(ValueError, match="off"):
            self._guard("off")

    def test_full_checks_every_round(self):
        metrics = MetricsRegistry()
        guard = self._guard("full", metrics=metrics)
        for _ in range(5):
            guard.on_round(self._view_of(guard))
        assert guard.rounds == 5
        assert metrics.counter("verify.checks") == 5 * len(DEFAULT_INVARIANTS)

    def test_cheap_checks_only_on_cadence_ticks(self):
        metrics = MetricsRegistry()
        guard = self._guard("cheap", metrics=metrics, cadence=4)
        for _ in range(7):
            guard.on_round(self._view_of(guard))
        cheap_count = len(InvariantRegistry().select(include_full=False))
        assert metrics.counter("verify.checks") == cheap_count  # round 4 only

    def test_final_check_is_always_a_full_sweep(self):
        metrics = MetricsRegistry()
        guard = self._guard("cheap", metrics=metrics)
        guard.final_check(self._view_of(guard))
        assert metrics.counter("verify.checks") == len(DEFAULT_INVARIANTS)

    def test_violation_carries_details_arrays_and_metrics(self):
        metrics = MetricsRegistry()
        guard = self._guard("full", metrics=metrics)
        with pytest.raises(InvariantViolation) as excinfo:
            guard.on_round(self._view_of(guard, deaths=9))
        violation = excinfo.value
        assert violation.invariant == "death-count"
        assert violation.round_index == 1
        assert violation.details["deaths"] == 9
        assert set(violation.arrays) >= {"backing", "current_death", "budget"}
        assert metrics.counter("verify.violations") == 1

    def test_violation_pickles_without_arrays(self):
        import pickle

        violation = InvariantViolation(
            "death-count", 3, "skew", details={"deaths": 1}, repro={"seed": "7"}
        )
        violation.arrays = {"backing": np.arange(4)}
        clone = pickle.loads(pickle.dumps(violation))
        assert clone.invariant == "death-count"
        assert clone.round_index == 3
        assert clone.details == {"deaths": 1}
        assert clone.arrays == {}
