"""Tests for the sampled differential shadow audits."""

import numpy as np
import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.obs.metrics import MetricsRegistry
from repro.sim.lifetime import LifetimeSimulator, simulate_lifetime
from repro.sim.result import SimulationResult
from repro.verify.shadow import (
    SHADOW_WRITES_RTOL,
    ShadowDivergence,
    compare_runs,
    should_audit,
)
from repro.verify.snapshot import DEBUG_DIR_ENV


@pytest.fixture(autouse=True)
def _no_bundles(monkeypatch):
    monkeypatch.setenv(DEBUG_DIR_ENV, "")


def small_map(seed: int = 7) -> EnduranceMap:
    rng = np.random.default_rng(seed)
    return EnduranceMap(rng.uniform(100.0, 1000.0, size=40 * 2), regions=40)


def result_with(**overrides) -> SimulationResult:
    base = dict(
        writes_served=1000.0,
        total_endurance=2000.0,
        deaths=5,
        replacements=4,
        failure_reason="spares exhausted",
        metadata={},
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestSampling:
    def test_zero_never_audits(self):
        assert not should_audit(0.0, "anything")

    def test_one_always_audits(self):
        assert should_audit(1.0, "anything")

    def test_decision_is_deterministic_per_key(self):
        keys = [f"task-{index}" for index in range(200)]
        first = [should_audit(0.3, key) for key in keys]
        second = [should_audit(0.3, key) for key in keys]
        assert first == second

    def test_rate_is_roughly_honoured(self):
        keys = [f"task-{index}" for index in range(2000)]
        hits = sum(should_audit(0.25, key) for key in keys)
        assert 0.18 < hits / len(keys) < 0.32


class TestCompareRuns:
    def test_identical_results_pass(self):
        compare_runs(result_with(), result_with(), rounds=5)

    def test_float_noise_within_rtol_passes(self):
        shadow = result_with(writes_served=1000.0 * (1.0 + SHADOW_WRITES_RTOL / 10))
        compare_runs(result_with(), shadow, rounds=5)

    def test_death_count_mismatch_diverges(self):
        with pytest.raises(ShadowDivergence) as excinfo:
            compare_runs(result_with(), result_with(deaths=6), rounds=5)
        assert "deaths" in str(excinfo.value)
        assert excinfo.value.details["deaths.batched"] == 5
        assert excinfo.value.details["deaths.exact"] == 6

    def test_served_drift_beyond_rtol_diverges(self):
        shadow = result_with(writes_served=1001.0)
        with pytest.raises(ShadowDivergence, match="writes_served"):
            compare_runs(result_with(), shadow, rounds=5)

    def test_divergence_pins_the_engine_pair(self):
        with pytest.raises(ShadowDivergence) as excinfo:
            compare_runs(
                result_with(),
                result_with(failure_reason="other"),
                rounds=9,
                repro={"seed": "3"},
            )
        assert excinfo.value.repro["engines"] == ["fluid-batched", "fluid-exact"]
        assert excinfo.value.repro["round_window"] == [0, 9]
        assert excinfo.value.repro["seed"] == "3"


class TestSampledAuditsThroughTheEngine:
    def test_clean_run_passes_a_certain_audit(self):
        metrics = MetricsRegistry()
        result = simulate_lifetime(
            small_map(),
            UniformAddressAttack(),
            MaxWE(0.1, 0.9),
            rng=5,
            shadow_sample=1.0,
            metrics=metrics,
        )
        assert result.deaths > 0
        assert metrics.counter("verify.shadow_audits") == 1
        assert metrics.counter("verify.violations") == 0

    def test_audited_result_is_identical_to_unaudited(self):
        unaudited = simulate_lifetime(
            small_map(), UniformAddressAttack(), MaxWE(0.1, 0.9), rng=5
        )
        audited = simulate_lifetime(
            small_map(), UniformAddressAttack(), MaxWE(0.1, 0.9), rng=5,
            shadow_sample=1.0,
        )
        assert audited.writes_served == unaudited.writes_served
        assert audited.deaths == unaudited.deaths

    def test_exact_engine_is_never_audited_against_itself(self):
        metrics = MetricsRegistry()
        simulate_lifetime(
            small_map(),
            UniformAddressAttack(),
            MaxWE(0.1, 0.9),
            rng=5,
            engine="fluid-exact",
            shadow_sample=1.0,
            metrics=metrics,
        )
        assert metrics.counter("verify.shadow_audits") == 0

    def test_shadow_requires_a_reproducible_seed(self):
        with pytest.raises(ValueError, match="reproduc"):
            simulate_lifetime(
                small_map(),
                UniformAddressAttack(),
                MaxWE(0.1, 0.9),
                rng=np.random.default_rng(5),
                shadow_sample=1.0,
            )

    def test_broken_kernel_is_caught_by_the_audit(self, monkeypatch):
        """Regression harness for the audit itself: a batched kernel that
        over-serves by 1% must be flagged as a divergence."""
        original = LifetimeSimulator._run_batched

        def broken(self, *args, **kwargs):
            served, deaths, replacements, reason, timeline, meta = original(
                self, *args, **kwargs
            )
            return served * 1.01, deaths, replacements, reason, timeline, meta

        monkeypatch.setattr(LifetimeSimulator, "_run_batched", broken)
        with pytest.raises(ShadowDivergence, match="writes_served"):
            simulate_lifetime(
                small_map(),
                UniformAddressAttack(),
                MaxWE(0.1, 0.9),
                rng=5,
                shadow_sample=1.0,
            )
