"""End-to-end guard tests through the real engines.

Two properties anchor the layer's contract:

* a clean run never trips an invariant, at any paranoia level, and its
  results are bit-identical to an unguarded run (checks never mutate);
* an injected state corruption is *always* surfaced as an
  :class:`InvariantViolation` at ``paranoia=full`` -- the CI smoke job
  asserts the same thing from the command line.
"""

import numpy as np
import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.obs.metrics import MetricsRegistry
from repro.salvage.ecp import ECP
from repro.salvage.freep import FreeP
from repro.sim.faults import FAULT_SPEC_ENV, install
from repro.sim.lifetime import ENGINES, simulate_lifetime
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS
from repro.verify.invariants import InvariantViolation
from repro.verify.snapshot import DEBUG_DIR_ENV

SCHEME_FACTORIES = {
    "none": lambda: NoSparing(),
    "pcd": lambda: PCD(0.1),
    "ps": lambda: PS.average_case(0.1),
    "ps-weakest": lambda: PS(0.1, selection="weakest", allocation="strongest-first"),
    "max-we": lambda: MaxWE(0.1, 0.9),
    "ecp": lambda: ECP(pointers=4, bonus_per_pointer=0.05),
    "freep": lambda: FreeP(0.1),
}

ATTACK_FACTORIES = {
    "uaa": lambda: UniformAddressAttack(),
    "bpa": lambda: BirthdayParadoxAttack(),
    "streaming": lambda: RepeatedAddressAttack(target=0),
}


@pytest.fixture(autouse=True)
def _no_bundles_no_faults(monkeypatch):
    """Keep the working tree clean and the injector uninstalled."""
    monkeypatch.setenv(DEBUG_DIR_ENV, "")
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


def small_map(seed: int = 7) -> EnduranceMap:
    rng = np.random.default_rng(seed)
    return EnduranceMap(rng.uniform(100.0, 1000.0, size=40 * 2), regions=40)


class TestCleanSweepIsSilentAndBitIdentical:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("attack_name", sorted(ATTACK_FACTORIES))
    @pytest.mark.parametrize("scheme_name", sorted(SCHEME_FACTORIES))
    def test_full_paranoia_matches_off_exactly(self, scheme_name, attack_name, engine):
        emap = small_map()
        results = {}
        for paranoia in ("off", "full"):
            results[paranoia] = simulate_lifetime(
                emap,
                ATTACK_FACTORIES[attack_name](),
                SCHEME_FACTORIES[scheme_name](),
                rng=11,
                engine=engine,
                record_timeline=False,
                paranoia=paranoia,
            )
        off, full = results["off"], results["full"]
        assert full.writes_served == off.writes_served  # bit-identical
        assert full.deaths == off.deaths
        assert full.replacements == off.replacements
        assert full.failure_reason == off.failure_reason

    def test_cheap_is_also_bit_identical(self):
        emap = small_map()
        off = simulate_lifetime(
            emap, UniformAddressAttack(), MaxWE(0.1, 0.9), rng=3, paranoia="off"
        )
        cheap = simulate_lifetime(
            emap, UniformAddressAttack(), MaxWE(0.1, 0.9), rng=3, paranoia="cheap"
        )
        assert cheap.writes_served == off.writes_served
        assert cheap.deaths == off.deaths

    def test_guard_work_is_visible_in_metrics(self):
        metrics = MetricsRegistry()
        simulate_lifetime(
            small_map(),
            UniformAddressAttack(),
            MaxWE(0.1, 0.9),
            rng=3,
            paranoia="full",
            metrics=metrics,
        )
        assert metrics.counter("verify.checks") > 0
        assert metrics.counter("verify.violations") == 0
        assert metrics.timing("verify/invariants") is not None


class TestInjectedCorruptionIsAlwaysDetected:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_full_paranoia_detects_every_injection(self, engine):
        """100% detection: every seeded corrupt-state campaign must end in
        an InvariantViolation, never a silently wrong result."""
        emap = small_map()
        detected = 0
        seeds = range(10)
        for seed in seeds:
            install(f"corrupt-state=1,seed={seed}")
            try:
                with pytest.raises(InvariantViolation):
                    simulate_lifetime(
                        emap,
                        UniformAddressAttack(),
                        MaxWE(0.1, 0.9),
                        rng=5,
                        engine=engine,
                        paranoia="full",
                    )
                detected += 1
            finally:
                install(None)
        assert detected == len(list(seeds))

    def test_detection_is_deterministic_in_the_seed(self):
        emap = small_map()
        rounds = []
        for _ in range(2):
            install("corrupt-state=1,seed=42")
            try:
                with pytest.raises(InvariantViolation) as excinfo:
                    simulate_lifetime(
                        emap,
                        UniformAddressAttack(),
                        MaxWE(0.1, 0.9),
                        rng=5,
                        paranoia="full",
                    )
            finally:
                install(None)
            rounds.append(
                (excinfo.value.invariant, excinfo.value.round_index)
            )
        assert rounds[0] == rounds[1]

    def test_all_three_corruption_kinds_are_diagnosed(self):
        """Across seeds the injector rolls wear, mapping, and death
        corruptions; each must surface under a distinct invariant."""
        emap = small_map()
        invariants = set()
        for seed in range(30):
            install(f"corrupt-state=1,seed={seed}")
            try:
                with pytest.raises(InvariantViolation) as excinfo:
                    simulate_lifetime(
                        emap,
                        UniformAddressAttack(),
                        MaxWE(0.1, 0.9),
                        rng=5,
                        paranoia="full",
                    )
            finally:
                install(None)
            invariants.add(excinfo.value.invariant)
            if len(invariants) >= 3:
                break
        assert len(invariants) >= 3

    def test_cheap_paranoia_catches_persistent_corruption(self):
        """cheap checks lag the corruption but the end-of-run full sweep
        guarantees persistent corruption cannot escape the run."""
        emap = small_map()
        install("corrupt-state=1,seed=8")
        try:
            with pytest.raises(InvariantViolation):
                simulate_lifetime(
                    emap,
                    UniformAddressAttack(),
                    MaxWE(0.1, 0.9),
                    rng=5,
                    paranoia="cheap",
                )
        finally:
            install(None)

    def test_off_runs_to_completion_with_wrong_numbers(self):
        """Without the guard the corrupted run completes silently -- the
        reason the layer exists."""
        emap = small_map()
        clean = simulate_lifetime(
            emap, UniformAddressAttack(), MaxWE(0.1, 0.9), rng=5, paranoia="off"
        )
        install("corrupt-state=1,seed=0")  # seed 0 rolls a wear corruption
        try:
            corrupted = simulate_lifetime(
                emap, UniformAddressAttack(), MaxWE(0.1, 0.9), rng=5, paranoia="off"
            )
        finally:
            install(None)
        assert corrupted.writes_served != clean.writes_served


class TestKnobValidation:
    def test_unknown_paranoia_rejected(self):
        with pytest.raises(ValueError, match="paranoia"):
            simulate_lifetime(
                small_map(), UniformAddressAttack(), NoSparing(), paranoia="extreme"
            )

    def test_shadow_sample_range_enforced(self):
        with pytest.raises(ValueError):
            simulate_lifetime(
                small_map(),
                UniformAddressAttack(),
                NoSparing(),
                rng=1,
                shadow_sample=1.5,
            )
