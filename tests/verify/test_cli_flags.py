"""CLI wiring of the state-integrity knobs (--paranoia / --shadow-sample)."""

import pytest

from repro.cli import main
from repro.sim.faults import FAULT_SPEC_ENV, install
from repro.verify.__main__ import main as verify_main
from repro.verify.snapshot import DEBUG_DIR_ENV, list_bundles

TINY = ["--regions", "64", "--lines-per-region", "2"]


@pytest.fixture(autouse=True)
def _bundles_in_tmp(tmp_path, monkeypatch):
    monkeypatch.setenv(DEBUG_DIR_ENV, str(tmp_path / "debug"))
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


class TestSimulateFlags:
    def test_clean_run_at_full_paranoia(self, capsys):
        assert main(["simulate", *TINY, "--paranoia", "full"]) == 0
        assert "lifetime:" in capsys.readouterr().out

    def test_paranoia_never_changes_the_reported_lifetime(self, capsys):
        main(["simulate", *TINY])
        off = capsys.readouterr().out
        main(["simulate", *TINY, "--paranoia", "full"])
        full = capsys.readouterr().out
        assert off == full

    def test_shadow_sample_clean_run(self, capsys):
        assert main(["simulate", *TINY, "--shadow-sample", "1.0"]) == 0
        assert "lifetime:" in capsys.readouterr().out

    def test_bad_paranoia_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            main(["simulate", *TINY, "--paranoia", "extreme"])

    def test_corruption_exits_1_with_a_bundle(self, capsys):
        code = main(
            [
                "simulate",
                *TINY,
                "--paranoia",
                "full",
                "--inject-faults",
                "corrupt-state=1,seed=1",
            ]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "invariant" in err
        assert "crash-dump bundle:" in err
        bundles = list_bundles()
        assert len(bundles) == 1
        # The bundle replays deterministically: same task, same fault
        # spec, same violation.
        assert verify_main(["replay", str(bundles[0])]) == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_corruption_unnoticed_at_paranoia_off(self, capsys):
        """Without the guard the corrupted run completes with rc 0 --
        the contrast the guard layer exists to eliminate."""
        code = main(
            ["simulate", *TINY, "--inject-faults", "corrupt-state=1,seed=1"]
        )
        assert code == 0
        assert list_bundles() == []


class TestSweepFlags:
    def test_sweep_spare_accepts_the_knobs(self, capsys):
        code = main(
            [
                "sweep-spare",
                *TINY,
                "--no-cache",
                "--paranoia",
                "cheap",
                "--shadow-sample",
                "0.0",
            ]
        )
        assert code == 0
        assert "Figure 6" in capsys.readouterr().out

    def test_sweep_detects_injected_corruption(self, capsys):
        code = main(
            [
                "sweep-spare",
                *TINY,
                "--no-cache",
                "--retries",
                "0",
                "--paranoia",
                "full",
                "--inject-faults",
                "corrupt-state=1,seed=1",
            ]
        )
        assert code == 1
        assert "violated" in capsys.readouterr().err
