"""Pinned regression: MaxWE exhaustion under ``paranoia=full``.

A streaming single-target attack against ``max-we`` drives a region all
the way to spare exhaustion.  A retired spare line that died *in the
same batch* it was consumed used to be left in the ``_ACTIVE`` state,
so the full-paranoia invariant sweep saw an "active" line with zero
endurance and aborted an otherwise healthy run with an
:class:`InvariantViolation`.  The fix retires such lines in
:meth:`MaxWE.replace_batch` after the swr/rescue assignment settles.

Repro (pre-fix this raised; now it must complete cleanly)::

    python -m repro.cli simulate --attack repeated --sparing max-we \
        --paranoia full --regions 64 --lines-per-region 4 \
        --engine fluid-batched

Pinned for both fluid engines, and the guarded run must stay
bit-identical to the unguarded one (checks never mutate).
"""

import numpy as np
import pytest

from repro.attacks.repeated import RepeatedAddressAttack
from repro.core.maxwe import MaxWE
from repro.endurance.emap import EnduranceMap
from repro.sim.lifetime import simulate_lifetime

ENGINES = ("fluid-batched", "fluid-exact")


def exhaustion_map(regions: int = 64, lines_per_region: int = 4) -> EnduranceMap:
    """Low-endurance map so the streaming attack exhausts region 0 fast."""
    rng = np.random.default_rng(19)
    cells = rng.uniform(50.0, 500.0, size=regions * lines_per_region)
    return EnduranceMap(cells, regions=regions)


class TestMaxWEExhaustionUnderFullParanoia:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_streaming_exhaustion_completes_cleanly(self, engine):
        """The pre-fix failure mode: InvariantViolation mid-exhaustion."""
        result = simulate_lifetime(
            exhaustion_map(),
            RepeatedAddressAttack(target=0),
            MaxWE(0.1, 0.9),
            rng=11,
            engine=engine,
            record_timeline=False,
            paranoia="full",
        )
        # The run must actually reach spare exhaustion, not fail early
        # for some unrelated reason -- otherwise the regression is not
        # being exercised at all.
        assert result.replacements > 0
        assert result.writes_served > 0

    @pytest.mark.parametrize("engine", ENGINES)
    def test_guarded_exhaustion_is_bit_identical_to_unguarded(self, engine):
        results = {}
        for paranoia in ("off", "full"):
            results[paranoia] = simulate_lifetime(
                exhaustion_map(),
                RepeatedAddressAttack(target=0),
                MaxWE(0.1, 0.9),
                rng=11,
                engine=engine,
                record_timeline=False,
                paranoia=paranoia,
            )
        off, full = results["off"], results["full"]
        assert full.writes_served == off.writes_served
        assert full.deaths == off.deaths
        assert full.replacements == off.replacements
        assert full.failure_reason == off.failure_reason
