"""Crash-dump bundle tests: write, load, replay, static check, CLI."""

import threading

import numpy as np
import pytest

from repro.sim.config import ExperimentConfig
from repro.sim.faults import FAULT_SPEC_ENV, install
from repro.sim.runner import SimTask
from repro.verify import snapshot
from repro.verify.__main__ import main as verify_main
from repro.verify.invariants import InvariantViolation
from repro.verify.snapshot import (
    DEBUG_DIR_ENV,
    Bundle,
    bundle_root,
    list_bundles,
    load_bundle,
    replay,
    static_check,
    suppress_bundles,
    task_context,
    write_error_bundle,
    write_violation_bundle,
)

SMALL_CONFIG = ExperimentConfig(regions=64, lines_per_region=2, seed=2019)


@pytest.fixture(autouse=True)
def _bundles_in_tmp(tmp_path, monkeypatch):
    """Bundles land in the test's tmp dir; no injector leaks between tests."""
    monkeypatch.setenv(DEBUG_DIR_ENV, str(tmp_path / "debug"))
    monkeypatch.delenv(FAULT_SPEC_ENV, raising=False)
    install(None)
    yield
    install(None)


def fresh_violation() -> InvariantViolation:
    violation = InvariantViolation(
        "death-count",
        7,
        "engine death counter (3) disagrees with the verdict-stream ledger (2)",
        details={"deaths": 3, "served": 12.5},
        repro={"seed": "5", "engine": "fluid-batched"},
    )
    violation.arrays = {
        "backing": np.arange(4),
        "current_death": np.full(4, 40.0),
        "budget": np.full(4, 10.0),
        "in_service": np.ones(4, dtype=bool),
        "dead_mask": np.zeros(6, dtype=bool),
    }
    return violation


class TestBundleRoot:
    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(DEBUG_DIR_ENV, str(tmp_path / "elsewhere"))
        assert bundle_root() == tmp_path / "elsewhere"

    def test_empty_env_disables(self, monkeypatch):
        monkeypatch.setenv(DEBUG_DIR_ENV, "")
        assert bundle_root() is None
        assert write_violation_bundle(fresh_violation()) is None

    def test_suppression_disables(self):
        with suppress_bundles():
            assert bundle_root() is None
            assert write_violation_bundle(fresh_violation()) is None


class TestWriteAndLoad:
    def test_violation_round_trips(self):
        violation = fresh_violation()
        directory = write_violation_bundle(violation)
        assert directory is not None
        assert violation.bundle_path == str(directory)
        bundle = load_bundle(directory)
        assert bundle.kind == "violation"
        assert bundle.meta["invariant"] == "death-count"
        assert bundle.meta["round"] == 7
        assert bundle.meta["details"]["deaths"] == 3
        assert bundle.meta["repro"]["seed"] == "5"
        np.testing.assert_array_equal(bundle.arrays["backing"], np.arange(4))

    def test_write_is_idempotent_per_violation(self):
        violation = fresh_violation()
        first = write_violation_bundle(violation)
        second = write_violation_bundle(violation)
        assert first == second
        assert len(list_bundles()) == 1

    def test_colliding_names_get_suffixes(self):
        first = write_violation_bundle(fresh_violation())
        second = write_violation_bundle(fresh_violation())
        assert first != second
        assert second.name.startswith(first.name)
        assert len(list_bundles()) == 2

    def test_task_context_is_recorded(self):
        payload = {"attack": "uaa", "seed": 5}
        with task_context(payload, {"paranoia": "full"}):
            directory = write_violation_bundle(fresh_violation())
        bundle = load_bundle(directory)
        assert bundle.meta["task"] == payload
        assert bundle.meta["task_options"]["paranoia"] == "full"

    def test_bundle_store_is_bounded_oldest_first(self, monkeypatch):
        """A violation storm must not grow .repro-debug/ without bound:
        past the cap, the oldest bundles are evicted (same policy as the
        cache quarantine)."""
        import os

        monkeypatch.setenv(snapshot.DEBUG_CAP_ENV, "3")
        written = []
        for index in range(6):
            directory = write_violation_bundle(fresh_violation())
            os.utime(directory, (index, index))
            written.append(directory)
        kept = list_bundles()
        assert len(kept) == 3
        assert set(kept) == set(written[-3:])  # newest three survive

    def test_bundle_cap_spares_error_bundles_too(self, monkeypatch):
        import os

        monkeypatch.setenv(snapshot.DEBUG_CAP_ENV, "2")
        for index in range(4):
            directory = write_error_bundle(RuntimeError(f"boom {index}"), key=str(index))
            os.utime(directory, (index, index))
        assert len(list_bundles()) == 2

    def test_active_fault_spec_is_recorded(self):
        install("corrupt-state=1,seed=3")
        try:
            directory = write_violation_bundle(fresh_violation())
        finally:
            install(None)
        assert "corrupt-state=1" in load_bundle(directory).meta["fault_spec"]

    def test_error_bundle(self):
        directory = write_error_bundle(
            ValueError("weights do not sum to 1"), key="task-abc"
        )
        bundle = load_bundle(directory)
        assert bundle.kind == "error"
        assert bundle.meta["error"] == "ValueError"
        assert bundle.meta["task_key"] == "task-abc"
        assert any("ValueError" in line for line in bundle.meta["traceback"])
        assert not bundle.replayable

    def test_task_context_is_thread_local(self):
        """Another thread's pinned task must not leak into this thread's
        bundles -- the job service runs dispatcher threads executing
        tasks concurrently with everything else in the process."""
        pinned = threading.Event()
        release = threading.Event()

        def dispatcher():
            with task_context({"config": {"regions": 64}}, {"paranoia": "off"}):
                pinned.set()
                release.wait(timeout=30)

        worker = threading.Thread(target=dispatcher, daemon=True)
        worker.start()
        assert pinned.wait(timeout=30)
        try:
            directory = write_error_bundle(RuntimeError("boom"), key="main-thread")
            bundle = load_bundle(directory)
            assert bundle.meta["task"] is None
            assert not bundle.replayable
        finally:
            release.set()
            worker.join(timeout=30)

    def test_suppression_is_thread_local(self):
        """A replay suppressing bundles on one thread must not silence
        bundle writes from tasks running on other threads."""
        suppressing = threading.Event()
        release = threading.Event()

        def replayer():
            with suppress_bundles():
                suppressing.set()
                release.wait(timeout=30)

        worker = threading.Thread(target=replayer, daemon=True)
        worker.start()
        assert suppressing.wait(timeout=30)
        try:
            assert bundle_root() is not None
            assert write_error_bundle(RuntimeError("boom"), key="k") is not None
        finally:
            release.set()
            worker.join(timeout=30)

    def test_load_rejects_non_bundles(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="meta.json"):
            load_bundle(tmp_path)


def corrupted_task_bundle():
    """Run a SimTask under injected corruption; returns its bundle path."""
    task = SimTask(
        attack="uaa",
        sparing="max-we",
        config=SMALL_CONFIG,
        paranoia="full",
    )
    install("corrupt-state=1,seed=1")
    try:
        with pytest.raises(InvariantViolation) as excinfo:
            task.execute()
    finally:
        install(None)
    assert excinfo.value.bundle_path is not None
    return excinfo.value.bundle_path


class TestReplay:
    def test_task_violation_bundle_is_replayable_and_reproduces(self):
        path = corrupted_task_bundle()
        bundle = load_bundle(path)
        assert bundle.replayable
        assert "corrupt-state=1" in bundle.meta["fault_spec"]
        report = replay(path)
        assert report.reproduced
        assert report.violation is not None
        assert report.violation.invariant == bundle.meta["invariant"]

    def test_replay_leaves_no_new_bundles(self):
        path = corrupted_task_bundle()
        before = len(list_bundles())
        replay(path)
        assert len(list_bundles()) == before

    def test_replay_restores_the_previous_injector(self):
        path = corrupted_task_bundle()
        from repro.sim.faults import active_injector

        assert active_injector() is None
        replay(path)
        assert active_injector() is None

    def test_standalone_bundle_is_not_replayable(self):
        directory = write_violation_bundle(fresh_violation())
        report = replay(directory)
        assert not report.reproduced
        assert "no declarative task payload" in report.notes


class TestStaticCheck:
    def test_captured_corrupt_state_fails_statically(self):
        bundle = load_bundle(corrupted_task_bundle())
        assert bundle.arrays, "violation bundles must carry state arrays"
        assert static_check(bundle) != []

    def test_consistent_state_passes(self):
        arrays = {
            "backing": np.arange(4),
            "current_death": np.full(4, np.inf),
            "budget": np.full(4, 10.0),
            "in_service": np.ones(4, dtype=bool),
            "dead_mask": np.zeros(6, dtype=bool),
            "weights": np.full(4, 0.25),
            "endurance": np.full(6, 10.0),
        }
        bundle = Bundle(
            path=None,
            meta={"details": {"served": 0.0, "v_now": 0.0, "deaths": 0}},
            arrays=arrays,
        )
        assert static_check(bundle) == []

    def test_arrayless_bundle_is_reported(self):
        bundle = Bundle(path=None, meta={}, arrays={})
        failures = static_check(bundle)
        assert len(failures) == 1 and "no state arrays" in failures[0]


class TestVerifyCli:
    def test_list_empty(self, capsys):
        assert verify_main(["list"]) == 0
        assert "no bundles" in capsys.readouterr().out

    def test_list_shows_bundles(self, capsys):
        corrupted_task_bundle()
        assert verify_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "[violation]" in out and "replayable" in out

    def test_replay_exit_codes(self, capsys):
        path = corrupted_task_bundle()
        assert verify_main(["replay", str(path)]) == 0
        assert "REPRODUCED" in capsys.readouterr().out

    def test_replay_of_standalone_bundle_fails(self, capsys):
        directory = write_violation_bundle(fresh_violation())
        assert verify_main(["replay", str(directory)]) == 1

    def test_check_flags_corrupt_state(self, capsys):
        path = corrupted_task_bundle()
        assert verify_main(["check", str(path)]) == 1
        assert "FAIL" in capsys.readouterr().out
