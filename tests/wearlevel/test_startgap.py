"""Tests for Start-Gap wear-leveling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.base import AccessProfile
from repro.wearlevel.startgap import StartGap


def make_scheme(slots=9, gap_interval=4):
    scheme = StartGap(gap_interval=gap_interval)
    scheme.attach(np.ones(slots), rng=1)
    return scheme


class TestTranslation:
    def test_initial_mapping_is_identity(self):
        scheme = make_scheme()
        assert [scheme.translate(i) for i in range(scheme.logical_lines)] == list(
            range(8)
        )

    def test_bijective_initially(self):
        scheme = make_scheme()
        physical = [scheme.translate(i) for i in range(scheme.logical_lines)]
        assert len(set(physical)) == scheme.logical_lines

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=30, deadline=None)
    def test_bijective_after_any_number_of_writes(self, writes):
        scheme = make_scheme(slots=9, gap_interval=3)
        for index in range(writes):
            scheme.record_write(index % scheme.logical_lines)
        physical = [scheme.translate(i) for i in range(scheme.logical_lines)]
        assert len(set(physical)) == scheme.logical_lines
        assert all(0 <= p < scheme.slots for p in physical)

    def test_out_of_range_rejected(self):
        scheme = make_scheme()
        with pytest.raises(IndexError):
            scheme.translate(scheme.logical_lines)

    def test_too_few_slots_rejected(self):
        scheme = StartGap()
        with pytest.raises(ValueError, match="at least 2"):
            scheme.attach(np.ones(1))


class TestGapMovement:
    def test_gap_moves_every_interval(self):
        scheme = make_scheme(gap_interval=4)
        ops = []
        for index in range(8):
            ops.extend(scheme.record_write(0))
        # 8 writes / interval 4 = 2 gap movements, each costing 1 write.
        assert len(ops) == 2
        assert all(extra == 1 for _, extra in ops)

    def test_mapping_rotates_after_full_cycle(self):
        scheme = make_scheme(slots=4, gap_interval=1)
        initial = [scheme.translate(i) for i in range(3)]
        # One full gap cycle: the gap visits all 4 slots.
        for _ in range(4):
            scheme.record_write(0)
        rotated = [scheme.translate(i) for i in range(3)]
        assert rotated != initial

    def test_every_physical_slot_hosts_every_logical_line_eventually(self):
        scheme = make_scheme(slots=5, gap_interval=1)
        hosts = set()
        for _ in range(5 * 5 * 2):
            hosts.add(scheme.translate(0))
            scheme.record_write(0)
        assert hosts == set(range(5))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            StartGap(gap_interval=0)


class TestWeights:
    def test_uniform_with_overhead(self):
        scheme = make_scheme(gap_interval=100)
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        np.testing.assert_allclose(dist.weights, dist.weights[0])
        assert dist.useful_fraction == pytest.approx(100 / 101)

    def test_concentrated_also_uniform(self):
        scheme = make_scheme()
        dist = scheme.wear_weights(AccessProfile(kind="concentrated"))
        np.testing.assert_allclose(dist.weights, dist.weights[0])
