"""Tests for the endurance-oblivious randomizers: TLSR and PCM-S."""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.security_refresh import TLSR


class TestTLSR:
    def make(self, slots=16, lines_per_region=4, interval=2):
        scheme = TLSR(lines_per_region=lines_per_region, refresh_interval=interval)
        scheme.attach(np.ones(slots), rng=1)
        return scheme

    def test_translation_bijective_over_time(self):
        scheme = self.make()
        for index in range(500):
            scheme.record_write(index % 16)
            physical = [scheme.translate(i) for i in range(16)]
            assert sorted(physical) == list(range(16))

    def test_refresh_steps_cost_two_writes(self):
        scheme = self.make(interval=1)
        total_ops = []
        for index in range(64):
            total_ops.extend(scheme.record_write(index % 16))
        assert total_ops, "refresh must have produced remap traffic"
        assert all(extra == 1 for _, extra in total_ops)
        assert len(total_ops) % 2 == 0  # swaps touch pairs

    def test_no_refresh_before_interval(self):
        scheme = self.make(interval=100)
        assert scheme.record_write(0) == []

    def test_mapping_actually_randomizes(self):
        scheme = self.make(interval=1)
        for index in range(400):
            scheme.record_write(index % 16)
        assert [scheme.translate(i) for i in range(16)] != list(range(16))

    def test_weights_uniform_with_overhead(self):
        scheme = self.make(interval=64)
        for kind in ("uniform", "concentrated"):
            dist = scheme.wear_weights(AccessProfile(kind=kind))
            np.testing.assert_allclose(dist.weights, dist.weights[0])
            assert dist.useful_fraction == pytest.approx(1.0 / (1.0 + 2.0 / 64))

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            TLSR(refresh_interval=0)


class TestPCMS:
    def make(self, slots=12, lines_per_region=3, interval=5):
        scheme = PCMS(lines_per_region=lines_per_region, swap_interval=interval)
        scheme.attach(np.ones(slots), rng=2)
        return scheme

    def test_swap_fires_at_interval(self):
        scheme = self.make(interval=5)
        ops = []
        for index in range(5):
            ops.extend(scheme.record_write(index))
        # Either a real swap (6 ops) or the self-swap corner (0 ops).
        assert len(ops) in (0, 6)

    def test_translation_bijective_over_time(self):
        scheme = self.make(interval=2)
        for index in range(200):
            scheme.record_write(index % 12)
        assert sorted(scheme.translate(i) for i in range(12)) == list(range(12))

    def test_weights_uniform_with_region_swap_overhead(self):
        scheme = self.make(lines_per_region=3, interval=30)
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        np.testing.assert_allclose(dist.weights, dist.weights[0])
        assert dist.useful_fraction == pytest.approx(1.0 / (1.0 + 2.0 * 3 / 30))

    def test_single_region_never_swaps(self):
        scheme = PCMS(lines_per_region=4, swap_interval=1)
        scheme.attach(np.ones(4), rng=1)
        assert scheme.record_write(0) == []
