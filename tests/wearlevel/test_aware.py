"""Tests for the endurance-aware schemes: BWL, WAWL, Toss-up."""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.wearlevel.bwl import BWL
from repro.wearlevel.tossup import TossUpWL
from repro.wearlevel.wawl import WAWL


class TestBWL:
    def make(self, endurance=None, trigger=0.5):
        scheme = BWL(lines_per_region=1, trigger_fraction=trigger)
        if endurance is None:
            endurance = np.array([4.0, 8.0, 16.0, 32.0])
        scheme.attach(endurance, rng=1)
        return scheme

    def test_bias_exponent_half(self):
        scheme = self.make()
        dist = scheme.wear_weights(AccessProfile(kind="concentrated"))
        expected = np.sqrt(scheme.slot_endurance)
        np.testing.assert_allclose(
            dist.weights / dist.weights.sum(), expected / expected.sum()
        )

    def test_no_overhead_under_uniform(self):
        dist = self.make().wear_weights(AccessProfile(kind="uniform"))
        assert dist.useful_fraction == 1.0

    def test_hot_region_migrates_to_most_remaining_life(self):
        scheme = self.make(trigger=0.25)
        # Hammer logical region 0 (endurance 4; threshold = 1 write).
        ops = scheme.record_write(0)
        assert ops, "threshold crossing must trigger a migration"
        # Hot data should now live on the strongest region (endurance 32).
        assert scheme.translate(0) == 3

    def test_no_migration_below_threshold(self):
        scheme = self.make(trigger=10.0)
        assert scheme.record_write(0) == []

    def test_invalid_trigger(self):
        with pytest.raises(ValueError):
            BWL(trigger_fraction=0.0)


class TestWAWL:
    def make(self, interval=8):
        scheme = WAWL(lines_per_region=1, interval_scale=interval)
        scheme.attach(np.array([2.0, 4.0, 8.0, 16.0]), rng=3)
        return scheme

    def test_bias_exponent_two(self):
        scheme = self.make()
        dist = scheme.wear_weights(AccessProfile(kind="concentrated"))
        expected = scheme.slot_endurance**2
        np.testing.assert_allclose(
            dist.weights / dist.weights.sum(), expected / expected.sum()
        )

    def test_dwell_budget_proportional_to_endurance(self):
        scheme = self.make(interval=8)
        budgets = scheme._budget
        assert budgets is not None
        np.testing.assert_allclose(
            budgets / budgets[0], scheme.slot_endurance / scheme.slot_endurance[0]
        )

    def test_host_selection_prefers_strong_regions(self):
        scheme = self.make()
        assert scheme._rng is not None
        choices = [scheme._choose_host() for _ in range(2000)]
        counts = np.bincount(choices, minlength=4)
        # Region 3 has 16/30 of the probability mass; region 0 has 2/30.
        assert counts[3] > 5 * counts[0]

    def test_remap_after_budget_consumed(self):
        scheme = self.make(interval=1)
        moved = False
        for _ in range(50):
            scheme.record_write(0)
            if scheme.translate(0) != 0:
                moved = True
                break
        assert moved

    def test_no_overhead_under_uniform(self):
        dist = self.make().wear_weights(AccessProfile(kind="uniform"))
        assert dist.useful_fraction == 1.0

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            WAWL(interval_scale=0)


class TestTossUp:
    def make(self):
        scheme = TossUpWL(lines_per_region=1)
        scheme.attach(np.array([1.0, 2.0, 3.0, 9.0]), rng=4)
        return scheme

    def test_bonds_weakest_with_strongest(self):
        scheme = self.make()
        assert scheme.bonded_partner(0) == 3  # endurance 1 <-> 9
        assert scheme.bonded_partner(1) == 2  # endurance 2 <-> 3
        assert scheme.bonded_partner(3) == 0

    def test_uniform_wear_proportional_within_bond(self):
        scheme = self.make()
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        weights = dist.weights
        # Bond (0, 3): slot 3 takes 9x the wear of slot 0.
        assert weights[3] / weights[0] == pytest.approx(9.0)
        # Bond totals are equal (each bond receives two lines' traffic).
        assert weights[0] + weights[3] == pytest.approx(weights[1] + weights[2])

    def test_wear_fraction_balanced_within_bond(self):
        """Both members of a bond exhaust simultaneously: w_i/e_i equal."""
        scheme = self.make()
        weights = scheme.wear_weights(AccessProfile(kind="uniform")).weights
        endurance = scheme.slot_endurance
        assert weights[0] / endurance[0] == pytest.approx(weights[3] / endurance[3])

    def test_translate_tosses_within_bond(self):
        scheme = self.make()
        landings = {scheme.translate(0) for _ in range(200)}
        assert landings == {0, 3}

    def test_no_remap_cost(self):
        assert self.make().record_write(0) == []

    def test_odd_region_count_leaves_middle_unbonded(self):
        scheme = TossUpWL(lines_per_region=1)
        scheme.attach(np.array([1.0, 5.0, 9.0]), rng=1)
        assert scheme.bonded_partner(1) == 1
