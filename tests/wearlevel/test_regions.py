"""Tests for the shared region-permutation machinery."""

import numpy as np
import pytest

from repro.wearlevel._regions import RegionMappedScheme
from repro.wearlevel.pcms import PCMS


def make_scheme(slots=12, lines_per_region=3):
    scheme = PCMS(lines_per_region=lines_per_region, swap_interval=10**9)
    scheme.attach(np.arange(1.0, slots + 1.0), rng=1)
    return scheme


class TestStructure:
    def test_region_count(self):
        assert make_scheme().region_count == 4

    def test_indivisible_rejected(self):
        scheme = PCMS(lines_per_region=5)
        with pytest.raises(ValueError, match="multiple"):
            scheme.attach(np.ones(12))

    def test_region_endurance_metric_is_min(self):
        scheme = make_scheme()
        np.testing.assert_allclose(
            scheme.region_endurance_metric(), [1.0, 4.0, 7.0, 10.0]
        )


class TestSwaps:
    def test_translate_initial_identity(self):
        scheme = make_scheme()
        assert [scheme.translate(i) for i in range(12)] == list(range(12))

    def test_swap_exchanges_hosts(self):
        scheme = make_scheme()
        ops = scheme._swap_logical_regions(0, 2)
        # Logical region 0 now lives in physical region 2 and vice versa.
        assert scheme.translate(0) == 6
        assert scheme.translate(1) == 7
        assert scheme.translate(6) == 0

    def test_swap_cost_one_write_per_line_each_side(self):
        scheme = make_scheme()
        ops = scheme._swap_logical_regions(0, 2)
        assert len(ops) == 6  # 3 lines x 2 regions
        assert all(extra == 1 for _, extra in ops)
        touched = sorted(slot for slot, _ in ops)
        assert touched == [0, 1, 2, 6, 7, 8]

    def test_self_swap_is_free(self):
        scheme = make_scheme()
        assert scheme._swap_logical_regions(1, 1) == []

    def test_inverse_lookup(self):
        scheme = make_scheme()
        scheme._swap_logical_regions(0, 3)
        assert scheme.logical_region_of_physical(3) == 0
        assert scheme.logical_region_of_physical(0) == 3

    def test_permutation_copy_is_isolated(self):
        scheme = make_scheme()
        perm = scheme.permutation
        perm[0] = 99
        assert scheme.translate(0) == 0

    def test_translate_out_of_range(self):
        with pytest.raises(IndexError):
            make_scheme().translate(12)


def test_figure2_accounting_via_user_write():
    """A swap triggered by a write to A costs 1 write to A's old host and 2
    to the new one (1 data move + the redirected user write) -- Figure 2."""
    scheme = make_scheme(slots=4, lines_per_region=2)
    costs = {0: 0, 1: 0, 2: 0, 3: 0}
    ops = scheme._swap_logical_regions(0, 1)
    for slot, extra in ops:
        costs[slot] += extra
    # The user write that triggered the swap now lands on the new host.
    costs[scheme.translate(0)] += 1
    assert costs[0] == 1  # old host: data moved out
    assert costs[2] == 2  # new host: data moved in + user write
