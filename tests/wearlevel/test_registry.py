"""Tests for the wear-leveling factory."""

import pytest

from repro.wearlevel import PAPER_SCHEMES, make_scheme
from repro.wearlevel.bwl import BWL
from repro.wearlevel.none import NoWearLeveling
from repro.wearlevel.startgap import StartGap


class TestMakeScheme:
    @pytest.mark.parametrize(
        "name", ["none", "start-gap", "tlsr", "pcm-s", "bwl", "wawl", "toss-up"]
    )
    def test_all_names_construct(self, name):
        scheme = make_scheme(name)
        assert scheme.name == name

    def test_paper_set(self):
        assert PAPER_SCHEMES == ("tlsr", "pcm-s", "bwl", "wawl")

    def test_kwargs_forwarded(self):
        scheme = make_scheme("bwl", lines_per_region=4)
        assert isinstance(scheme, BWL)
        assert scheme.lines_per_region == 4

    def test_line_granularity_schemes_tolerate_region_kwarg(self):
        assert isinstance(make_scheme("none", lines_per_region=4), NoWearLeveling)
        assert isinstance(make_scheme("start-gap", lines_per_region=4), StartGap)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown wear-leveling scheme"):
            make_scheme("magic")
