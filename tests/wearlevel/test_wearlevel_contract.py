"""Contract tests: every wear-leveler honours the WearLeveler interface.

Parametrized over the whole scheme zoo: translation stays a function into
the slot range, remap side effects reference real slots with positive
costs, and the fluid view is a valid distribution for every profile kind.
"""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.wearlevel import make_scheme
from repro.wearlevel.composite import CompositeWearLeveler
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.startgap import StartGap

SLOTS = 24
LINES_PER_REGION = 4


def build_schemes():
    names = ("none", "start-gap", "tlsr", "pcm-s", "bwl", "wawl", "toss-up")
    schemes = {
        name: make_scheme(name, lines_per_region=LINES_PER_REGION) for name in names
    }
    schemes["composite"] = CompositeWearLeveler(
        PCMS(lines_per_region=LINES_PER_REGION, swap_interval=8),
        lambda: StartGap(gap_interval=4),
        LINES_PER_REGION,
    )
    return schemes


@pytest.fixture(params=sorted(build_schemes()), ids=sorted(build_schemes()))
def scheme(request):
    instance = build_schemes()[request.param]
    endurance = np.linspace(5.0, 120.0, SLOTS)
    instance.attach(endurance, rng=2)
    return instance


def logical_space(scheme) -> int:
    return getattr(scheme, "logical_lines", scheme.slots)


class TestWearLevelerContract:
    def test_translation_in_range(self, scheme):
        for logical in range(logical_space(scheme)):
            physical = scheme.translate(logical)
            assert 0 <= physical < SLOTS

    def test_out_of_range_translation_rejected(self, scheme):
        with pytest.raises(IndexError):
            scheme.translate(logical_space(scheme))

    def test_record_write_side_effects_are_valid(self, scheme):
        space = logical_space(scheme)
        for index in range(400):
            for slot, extra in scheme.record_write(index % space):
                assert 0 <= slot < SLOTS
                assert extra >= 1

    def test_translation_remains_injective_under_traffic(self, scheme):
        space = logical_space(scheme)
        rng = np.random.default_rng(3)
        for index in range(300):
            scheme.record_write(int(rng.integers(0, space)))
        if scheme.name == "toss-up":
            return  # toss-up translation is intentionally randomized
        physical = [scheme.translate(i) for i in range(space)]
        assert len(set(physical)) == space

    @pytest.mark.parametrize("kind", ["uniform", "concentrated"])
    def test_wear_weights_valid_distribution(self, scheme, kind):
        dist = scheme.wear_weights(AccessProfile(kind=kind))
        assert dist.weights.shape == (SLOTS,)
        assert np.all(dist.weights >= 0)
        assert dist.weights.sum() > 0
        assert 0.0 < dist.useful_fraction <= 1.0

    def test_wear_weights_skewed_profile(self, scheme):
        weights = np.linspace(1.0, 3.0, SLOTS)
        dist = scheme.wear_weights(AccessProfile(kind="skewed", weights=weights))
        assert np.all(np.isfinite(dist.weights))

    def test_describe_is_nonempty(self, scheme):
        assert scheme.describe()

    def test_uniform_profile_gives_uniform_wear(self, scheme):
        if scheme.name == "toss-up":
            # Toss-up redistributes even uniform traffic within bonds by
            # design (consistent wear fraction, not uniform wear).
            return
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        np.testing.assert_allclose(dist.weights, dist.weights[0])
