"""Empirical validation of the fluid stationary models.

The fluid engine trusts each scheme's declared stationary wear
distribution.  These tests drive the *exact mechanisms* with long write
streams on small devices (endurance effectively infinite, so no deaths
interfere), accumulate the realized per-slot wear, and compare it to the
declared model -- closing the loop between `wear_weights` and
`record_write`/`translate`.
"""

import itertools

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.security_refresh import TLSR
from repro.wearlevel.tossup import TossUpWL
from repro.wearlevel.wawl import WAWL


def realized_wear(scheme, attack, slots, writes, rng=1):
    """Drive the exact mechanism; return accumulated per-slot wear."""
    wear = np.zeros(slots)
    user_lines = getattr(scheme, "logical_lines", slots)
    stream = attack.stream(user_lines, rng)
    for request in itertools.islice(stream, writes):
        wear[scheme.translate(request.address)] += 1.0
        for slot, extra in scheme.record_write(request.address):
            wear[slot] += extra
    return wear


def normalized(vector):
    return vector / vector.sum()


class TestObliviousSchemesAreUniform:
    @pytest.mark.parametrize(
        "make",
        [
            lambda: TLSR(lines_per_region=4, refresh_interval=4),
            lambda: PCMS(lines_per_region=4, swap_interval=16),
        ],
        ids=["tlsr", "pcms"],
    )
    def test_concentrated_traffic_spreads_uniformly(self, make):
        slots = 32
        scheme = make()
        scheme.attach(np.linspace(1.0, 50.0, slots), rng=3)
        wear = realized_wear(
            scheme, BirthdayParadoxAttack(burst_length=64), slots, 60_000, rng=3
        )
        shares = normalized(wear)
        # Uniform within 3x between the least- and most-worn slot (the
        # mechanism's randomness leaves finite-sample ripple).
        assert shares.max() / shares.min() < 3.0
        # And close to the declared uniform model in L1.
        declared = scheme.wear_weights(AccessProfile(kind="concentrated"))
        l1 = np.abs(shares - normalized(declared.weights)).sum()
        assert l1 < 0.35

    def test_uniform_traffic_is_uniform(self):
        slots = 32
        scheme = TLSR(lines_per_region=4, refresh_interval=8)
        scheme.attach(np.linspace(1.0, 50.0, slots), rng=3)
        wear = realized_wear(
            scheme, UniformAddressAttack(random_data=False), slots, 40_000, rng=3
        )
        shares = normalized(wear)
        assert shares.max() / shares.min() < 1.3


class TestWAWLQuadraticBias:
    def test_concentrated_wear_grows_superlinearly_with_endurance(self):
        """The mechanism (selection ∝ e, dwell ∝ e) must concentrate the
        attack superlinearly on strong regions -- the e^2 stationary model
        up to finite-sample noise.  The quadratic regime requires the hot
        phase to span many dwell episodes (burst >> remap interval); with
        short bursts the dwell term saturates at the burst length and the
        realized exponent degrades toward 1 -- which the model treats as
        out of scope (the fluid docs state the interval << lifetime
        assumption)."""
        slots = 16
        endurance = np.repeat([1.0, 2.0, 4.0, 8.0], 4)
        scheme = WAWL(lines_per_region=4, interval_scale=32)
        scheme.attach(endurance, rng=5)
        wear = realized_wear(
            scheme, BirthdayParadoxAttack(burst_length=2048), slots, 200_000, rng=5
        )
        region_wear = wear.reshape(4, 4).sum(axis=1)
        region_endurance = np.array([1.0, 2.0, 4.0, 8.0])
        # Fit wear ~ e^beta by log-log regression.
        beta = np.polyfit(np.log(region_endurance), np.log(region_wear), 1)[0]
        assert 1.4 < beta < 2.6  # the model says 2

    def test_strongest_region_dominates(self):
        slots = 16
        endurance = np.repeat([1.0, 2.0, 4.0, 8.0], 4)
        scheme = WAWL(lines_per_region=4, interval_scale=32)
        scheme.attach(endurance, rng=6)
        wear = realized_wear(
            scheme, BirthdayParadoxAttack(burst_length=2048), slots, 160_000, rng=6
        )
        region_wear = wear.reshape(4, 4).sum(axis=1)
        assert region_wear[3] > 10 * region_wear[0]

    def test_short_bursts_degrade_the_bias(self):
        """The documented boundary of the fluid model, exhibited: bursts
        comparable to the remap interval flatten the exponent."""
        slots = 16
        endurance = np.repeat([1.0, 2.0, 4.0, 8.0], 4)

        def beta_for(burst):
            scheme = WAWL(lines_per_region=4, interval_scale=32)
            scheme.attach(endurance, rng=5)
            wear = realized_wear(
                scheme, BirthdayParadoxAttack(burst_length=burst), slots, 120_000, rng=5
            )
            region_wear = wear.reshape(4, 4).sum(axis=1)
            return np.polyfit(np.log([1.0, 2.0, 4.0, 8.0]), np.log(region_wear), 1)[0]

        assert beta_for(32) < beta_for(2048)


class TestTossUpPairwiseBias:
    def test_uniform_traffic_realizes_endurance_proportional_wear(self):
        slots = 8
        endurance = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0])
        scheme = TossUpWL(lines_per_region=1)
        scheme.attach(endurance, rng=7)
        wear = realized_wear(
            scheme, UniformAddressAttack(random_data=False), slots, 80_000, rng=7
        )
        declared = scheme.wear_weights(AccessProfile(kind="uniform"))
        l1 = np.abs(normalized(wear) - normalized(declared.weights)).sum()
        assert l1 < 0.1

    def test_wear_fraction_balanced_within_bond(self):
        slots = 4
        endurance = np.array([1.0, 3.0, 5.0, 15.0])
        scheme = TossUpWL(lines_per_region=1)
        scheme.attach(endurance, rng=8)
        wear = realized_wear(
            scheme, UniformAddressAttack(random_data=False), slots, 60_000, rng=8
        )
        # Bond (0, 3): wear ratio should track endurance ratio 15:1.
        assert wear[3] / wear[0] == pytest.approx(15.0, rel=0.25)
