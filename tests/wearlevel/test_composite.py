"""Tests for the composite (two-level) wear-leveler."""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.wearlevel.composite import CompositeWearLeveler
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.startgap import StartGap
from repro.wearlevel.wawl import WAWL


def make_composite(slots=16, lines_per_region=4, outer=None, inner=None):
    outer = outer if outer is not None else PCMS(
        lines_per_region=lines_per_region, swap_interval=8
    )
    inner_factory = inner if inner is not None else (
        lambda: StartGap(gap_interval=4)
    )
    scheme = CompositeWearLeveler(outer, inner_factory, lines_per_region)
    scheme.attach(np.arange(1.0, slots + 1.0), rng=1)
    return scheme


class TestConstruction:
    def test_one_inner_per_region(self):
        scheme = make_composite()
        assert len(scheme.inner) == 4

    def test_granularity_mismatch_rejected(self):
        outer = PCMS(lines_per_region=2)
        with pytest.raises(ValueError, match="regions"):
            CompositeWearLeveler(outer, StartGap, lines_per_region=4)

    def test_logical_lines_account_for_inner_sacrifice(self):
        scheme = make_composite()
        # Start-Gap gives up one slot per region: 4 regions x 3 lines.
        assert scheme.logical_lines == 12


class TestTranslation:
    def test_bijective_over_logical_space(self):
        scheme = make_composite()
        physical = [scheme.translate(i) for i in range(scheme.logical_lines)]
        assert len(set(physical)) == scheme.logical_lines
        assert all(0 <= p < 16 for p in physical)

    def test_bijective_after_traffic(self):
        scheme = make_composite()
        for index in range(500):
            scheme.record_write(index % scheme.logical_lines)
        physical = [scheme.translate(i) for i in range(scheme.logical_lines)]
        assert len(set(physical)) == scheme.logical_lines

    def test_out_of_range_rejected(self):
        scheme = make_composite()
        with pytest.raises(IndexError):
            scheme.translate(scheme.logical_lines)

    def test_both_levels_produce_side_effects(self):
        scheme = make_composite()
        ops = []
        for index in range(200):
            ops.extend(scheme.record_write(index % scheme.logical_lines))
        assert ops  # gap moves and/or region swaps occurred
        assert all(0 <= slot < 16 for slot, _ in ops)


class TestFluidComposition:
    def test_uniform_stays_uniform(self):
        scheme = make_composite()
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        np.testing.assert_allclose(dist.weights, dist.weights[0])

    def test_useful_fractions_multiply(self):
        scheme = make_composite()
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        outer_useful = scheme.outer.wear_weights(
            AccessProfile(kind="uniform")
        ).useful_fraction
        inner_useful = scheme.inner[0].wear_weights(
            AccessProfile(kind="uniform")
        ).useful_fraction
        assert dist.useful_fraction == pytest.approx(outer_useful * inner_useful)

    def test_outer_bias_preserved_within_region_shaping(self):
        """WAWL outer over Start-Gap inner: region shares follow e^2, and
        lines within a region share their region's mass evenly."""
        outer = WAWL(lines_per_region=2, interval_scale=64)
        scheme = CompositeWearLeveler(
            outer, lambda: StartGap(gap_interval=8), lines_per_region=2
        )
        endurance = np.array([1.0, 1.0, 2.0, 2.0, 4.0, 4.0, 8.0, 8.0])
        scheme.attach(endurance, rng=2)
        dist = scheme.wear_weights(AccessProfile(kind="concentrated"))
        shares = dist.weights.reshape(4, 2).sum(axis=1)
        expected = np.array([1.0, 4.0, 16.0, 64.0])
        np.testing.assert_allclose(shares / shares.sum(), expected / expected.sum())
        # Within each region, Start-Gap levels the two lines evenly.
        np.testing.assert_allclose(dist.weights[0], dist.weights[1])

    def test_describe_names_both_levels(self):
        assert "pcm-s" in make_composite().describe()
        assert "start-gap" in make_composite().describe()
