"""Tests for the wear-leveling base contract and stationary blending rule."""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.wearlevel.base import WearDistribution
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.wawl import WAWL


class TestWearDistribution:
    def test_valid(self):
        dist = WearDistribution(np.array([0.5, 0.5]), useful_fraction=0.9)
        assert dist.useful_fraction == 0.9

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            WearDistribution(np.array([1.0, -0.1]))

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            WearDistribution(np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WearDistribution(np.array([]))

    def test_rejects_zero_useful_fraction(self):
        with pytest.raises(ValueError):
            WearDistribution(np.ones(2), useful_fraction=0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            WearDistribution(np.ones(2), useful_fraction=1.2)


class TestStationaryBlending:
    """The permutation-invariance rule at the heart of the fluid model."""

    def setup_method(self):
        self.endurance = np.array([1.0, 2.0, 4.0, 8.0] * 4)

    def test_uniform_traffic_stays_uniform_even_for_aware_schemes(self):
        """Wear-leveling is a permutation: uniform in, uniform out (Sec 5.2.1)."""
        scheme = WAWL(lines_per_region=1)
        scheme.attach(self.endurance, rng=1)
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        np.testing.assert_allclose(dist.weights, dist.weights[0])

    def test_concentrated_traffic_takes_full_bias(self):
        scheme = WAWL(lines_per_region=1)
        scheme.attach(self.endurance, rng=1)
        dist = scheme.wear_weights(AccessProfile(kind="concentrated"))
        expected = self.endurance**2
        np.testing.assert_allclose(
            dist.weights / dist.weights.sum(), expected / expected.sum()
        )

    def test_oblivious_scheme_spreads_concentrated_uniformly(self):
        scheme = PCMS(lines_per_region=1)
        scheme.attach(self.endurance, rng=1)
        dist = scheme.wear_weights(AccessProfile(kind="concentrated"))
        np.testing.assert_allclose(dist.weights, dist.weights[0])

    def test_skewed_floor_plus_excess(self):
        """A skewed profile splits into a uniform floor plus biased excess."""
        scheme = WAWL(lines_per_region=1)
        scheme.attach(self.endurance, rng=1)
        weights = np.full(16, 1.0)
        weights[0] = 17.0  # floor = 16/32 of mass, excess = 16/32
        profile = AccessProfile(kind="skewed", weights=weights)
        dist = scheme.wear_weights(profile)
        bias = self.endurance**2 / (self.endurance**2).sum()
        expected = 0.5 * np.full(16, 1.0 / 16) + 0.5 * bias
        np.testing.assert_allclose(dist.weights / dist.weights.sum(), expected)

    def test_use_before_attach_rejected(self):
        scheme = PCMS()
        with pytest.raises(RuntimeError, match="attach"):
            scheme.wear_weights(AccessProfile(kind="uniform"))

    def test_attach_rejects_bad_endurance(self):
        scheme = PCMS()
        with pytest.raises(ValueError):
            scheme.attach(np.array([1.0, -1.0]))
        with pytest.raises(ValueError):
            scheme.attach(np.array([]))
