"""Tests for the identity wear-leveler."""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.wearlevel.none import NoWearLeveling


@pytest.fixture
def scheme():
    instance = NoWearLeveling()
    instance.attach(np.ones(8), rng=1)
    return instance


class TestTranslation:
    def test_identity(self, scheme):
        assert [scheme.translate(i) for i in range(8)] == list(range(8))

    def test_out_of_range(self, scheme):
        with pytest.raises(IndexError):
            scheme.translate(8)

    def test_no_remap_side_effects(self, scheme):
        assert scheme.record_write(0) == []


class TestWeights:
    def test_uniform(self, scheme):
        dist = scheme.wear_weights(AccessProfile(kind="uniform"))
        np.testing.assert_allclose(dist.weights, 1.0 / 8)
        assert dist.useful_fraction == 1.0

    def test_skewed_passthrough(self, scheme):
        weights = np.arange(1.0, 9.0)
        dist = scheme.wear_weights(AccessProfile(kind="skewed", weights=weights))
        np.testing.assert_allclose(dist.weights, weights / weights.sum())

    def test_concentrated_lands_on_one_slot(self, scheme):
        dist = scheme.wear_weights(AccessProfile(kind="concentrated"))
        assert np.count_nonzero(dist.weights > 0.5) == 1

    def test_concentrated_victim_deterministic_per_seed(self):
        a = NoWearLeveling()
        a.attach(np.ones(64), rng=9)
        b = NoWearLeveling()
        b.attach(np.ones(64), rng=9)
        dist_a = a.wear_weights(AccessProfile(kind="concentrated"))
        dist_b = b.wear_weights(AccessProfile(kind="concentrated"))
        np.testing.assert_array_equal(dist_a.weights, dist_b.weights)

    def test_background_fraction_spread(self, scheme):
        dist = scheme.wear_weights(
            AccessProfile(kind="concentrated", hot_fraction=0.5)
        )
        assert dist.weights.min() == pytest.approx(0.5 / 8)
        assert dist.weights.max() == pytest.approx(0.5 + 0.5 / 8)
