"""BENCH_runner -- serial vs parallel throughput of the simulation runner.

Times one fixed sweep (the Figure-7 task grid on a mid-size device) twice
through :class:`~repro.sim.runner.SimRunner`: serially (``jobs=1``) and
over every CPU, with the cache disabled so the measurement is honest.
Asserts parallel results stay bit-identical to serial, then emits
``BENCH_runner.json`` at the repo root (and a copy under
``benchmarks/results/``) to seed the performance trajectory:

    PYTHONPATH=src python benchmarks/bench_runner.py

The pytest wrapper runs the same harness so ``pytest benchmarks/`` keeps
the number fresh.
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

from repro.sim.config import ExperimentConfig
from repro.sim.runner import SimRunner, SimTask

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_bench  # noqa: E402


def _phases(stats) -> dict:
    """Per-phase totals from a leg's metrics snapshot, for the payload."""
    timings = (stats.metrics or {}).get("timings", {})
    return {
        name: {
            "calls": int(timing["count"]),
            "total_seconds": round(float(timing["sum"]), 4),
        }
        for name, timing in timings.items()
    }

#: Fixed measurement sweep: Figure 7's grid on a mid-size device.
BENCH_CONFIG = ExperimentConfig(regions=1024, lines_per_region=4, seed=2019)
BENCH_WEARLEVELERS = ("tlsr", "pcm-s", "bwl", "wawl")
BENCH_SWR_FRACTIONS = (0.0, 0.2, 0.6, 0.8, 0.9, 1.0)


def bench_tasks() -> list[SimTask]:
    """The fixed 24-task sweep every measurement uses."""
    return [
        SimTask(
            attack="bpa",
            sparing="max-we",
            wearlevel=wl_name,
            p=BENCH_CONFIG.spare_fraction,
            swr=swr_fraction,
            config=BENCH_CONFIG,
            label=f"{wl_name}/swr={swr_fraction:.0%}",
        )
        for wl_name in BENCH_WEARLEVELERS
        for swr_fraction in BENCH_SWR_FRACTIONS
    ]


def run_bench(jobs: int | None = None) -> dict:
    """Measure the sweep serially and with ``jobs`` workers (default: all
    CPUs); returns the BENCH_runner payload.

    On a single-CPU box the parallel leg is skipped (a process pool can
    only lose there) and recorded as ``null`` with an explanatory note,
    so the payload never reports a fake "parallel" measurement.
    """
    cpus = os.cpu_count() or 1
    tasks = bench_tasks()
    serial_results, serial = SimRunner(jobs=1).run_detailed(tasks)

    payload = {
        "bench": "runner",
        "description": "serial vs parallel sims/sec on the fixed Figure-7 "
        "task grid (24 BPA simulations, cache disabled)",
        "platform": platform.platform(),
        "cpus": cpus,
        "config": {
            "regions": BENCH_CONFIG.regions,
            "lines_per_region": BENCH_CONFIG.lines_per_region,
            "q": BENCH_CONFIG.q,
            "endurance_model": BENCH_CONFIG.endurance_model,
            "seed": BENCH_CONFIG.seed,
        },
        "tasks": len(tasks),
        "serial": {
            "jobs": 1,
            "wall_seconds": round(serial.wall_seconds, 4),
            "sims_per_second": round(serial.sims_per_second, 3),
            "phases": _phases(serial),
        },
    }

    if cpus == 1:
        payload["parallel"] = None
        payload["speedup"] = None
        payload["note"] = (
            "parallel leg skipped: os.cpu_count() == 1, a process pool "
            "cannot beat the serial loop on this box"
        )
        payload["results_identical"] = True
        return payload

    parallel_results, parallel = SimRunner(jobs=jobs or 0).run_detailed(tasks)
    mismatched = [
        task.label
        for task, a, b in zip(tasks, serial_results, parallel_results)
        if a.normalized_lifetime != b.normalized_lifetime
    ]
    if mismatched:
        raise AssertionError(f"parallel diverged from serial on {mismatched}")

    payload["parallel"] = {
        "jobs": parallel.jobs,
        "wall_seconds": round(parallel.wall_seconds, 4),
        "sims_per_second": round(parallel.sims_per_second, 3),
        "phases": _phases(parallel),
        "queue_seconds": round(parallel.queue_seconds, 4),
        "harvest_seconds": round(parallel.harvest_seconds, 4),
    }
    payload["speedup"] = (
        round(parallel.sims_per_second / serial.sims_per_second, 3)
        if serial.sims_per_second
        else None
    )
    payload["results_identical"] = True
    return payload


def emit(payload: dict) -> Path:
    """Write the payload under benchmarks/results/ with a root copy."""
    return emit_bench("runner", payload)


def test_runner_throughput_bench():
    """Pytest entry point: parallel must match serial and not be
    pathologically slower; emits BENCH_runner.json as a side effect."""
    payload = run_bench()
    emit(payload)
    assert payload["results_identical"]
    assert payload["serial"]["sims_per_second"] > 0
    # On a multi-core box the pool should never lose badly to serial;
    # keep the bound loose so CI boxes with 2 cores still pass.  On a
    # single-CPU box the parallel leg is skipped entirely.
    if payload["cpus"] >= 2:
        assert payload["speedup"] > 0.5
    else:
        assert payload["parallel"] is None and "skipped" in payload["note"]


def main() -> int:
    payload = run_bench()
    target = emit(payload)
    print(json.dumps(payload, indent=2))
    print(f"[saved to {target}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
