"""EXT-BENIGN -- wear-leveling works as designed on benign workloads.

The paper's Section 2.2.1 premise, measured: endurance-variation-aware
wear-leveling was built for traffic with cold/hot structure, and on the
workload-suite archetypes it delivers -- concentrated and skewed benign
traffic reaches several times the unleveled lifetime under WAWL.  UAA's
distinguishing property is precisely that this machinery has nothing to
grab: the streaming archetype (uniform sweeps) gains nothing from any
scheme.  Devices run unspared so the wear-leveler's own contribution is
isolated.
"""

import pytest

from repro.attacks.suite import WORKLOAD_NAMES, workload
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.util.tables import render_table
from repro.wearlevel import make_scheme


def run_benign_matrix(config):
    emap = config.make_emap()
    matrix = {}
    for name in WORKLOAD_NAMES:
        row = {}
        for wl_name in ("none", "tlsr", "wawl"):
            wl = make_scheme(wl_name, lines_per_region=1)
            result = simulate_lifetime(
                emap, workload(name), NoSparing(), wearleveler=wl, rng=config.seed
            )
            row[wl_name] = result.normalized_lifetime
        matrix[name] = row
    return matrix


def test_ext_benign_workloads(benchmark, experiment_config, emit_table):
    matrix = benchmark(run_benign_matrix, experiment_config)

    table = render_table(
        ["workload", "no WL", "tlsr", "wawl", "wawl gain"],
        [
            [
                name,
                row["none"],
                row["tlsr"],
                row["wawl"],
                row["wawl"] / max(row["none"], 1e-12),
            ]
            for name, row in matrix.items()
        ],
        title="EXT-BENIGN: wear-leveling on benign workloads (no sparing)",
    )
    emit_table("ext_benign_workloads", table)

    # Concentrated benign traffic (journaling) is rescued dramatically.
    journaling = matrix["journaling"]
    assert journaling["wawl"] > 100 * journaling["none"]
    assert journaling["tlsr"] > 100 * journaling["none"]

    # Skewed traffic gains too, and the endurance-aware scheme gains more.
    web = matrix["web-cache"]
    assert web["wawl"] > web["none"]
    assert web["wawl"] >= web["tlsr"] * 0.95

    # Uniform traffic gains nothing: the UAA premise.
    streaming = matrix["streaming"]
    assert streaming["wawl"] == pytest.approx(streaming["none"], rel=0.05)
    assert streaming["tlsr"] <= streaming["none"] * 1.01  # remap tax, if anything
