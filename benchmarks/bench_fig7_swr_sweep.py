"""FIG7 -- Figure 7 / Section 5.2.2: lifetime under BPA vs SWR share.

Regenerates the sweep behind the paper's second parameter choice.  Paper
anchor points (percent of ideal, at 0% SWRs / all-dynamic spares):
TLSR 42.7, PCM-S 42.8, BWL 53.5, WAWL 72.5; and "when 90.0% of the spare
lines are used as SWRs, the lifetime with BWL and WAWL is only reduced by
1.1%".  Shape requirements: endurance-aware schemes above oblivious ones
at every point; the 90% point close to the 0% point.
"""

import pytest

from repro.sim.experiments import swr_fraction_sweep
from repro.util.tables import render_table

PAPER_AT_ZERO = {"tlsr": 0.427, "pcm-s": 0.428, "bwl": 0.535, "wawl": 0.725}


def test_fig7_swr_sweep(benchmark, experiment_config, emit_table):
    sweeps = benchmark(swr_fraction_sweep, experiment_config)
    fractions = [fraction for fraction, _ in next(iter(sweeps.values()))]

    rows = []
    for name, series in sweeps.items():
        rows.append(
            [name]
            + [result.normalized_lifetime for _, result in series]
            + [PAPER_AT_ZERO[name]]
        )
    table = render_table(
        ["scheme"] + [f"{fraction:.0%}" for fraction in fractions] + ["paper@0%"],
        rows,
        title="FIG7: Max-WE lifetime under BPA vs SWR share of the spare space",
    )
    emit_table("fig7_swr_sweep", table)

    by_scheme = {
        name: dict(
            (fraction, result.normalized_lifetime) for fraction, result in series
        )
        for name, series in sweeps.items()
    }

    # Ordering at every SWR share: aware schemes beat oblivious ones.
    for fraction in fractions:
        assert by_scheme["wawl"][fraction] > by_scheme["tlsr"][fraction]
        assert by_scheme["bwl"][fraction] > by_scheme["tlsr"][fraction]

    # The two oblivious randomizers track each other (paper: 42.7 vs 42.8).
    assert by_scheme["pcm-s"][0.0] == pytest.approx(by_scheme["tlsr"][0.0], rel=0.1)

    # Factor bands at the 0% anchor.
    assert by_scheme["tlsr"][0.0] == pytest.approx(0.427, abs=0.08)
    assert by_scheme["bwl"][0.0] == pytest.approx(0.535, abs=0.09)
    assert by_scheme["wawl"][0.0] == pytest.approx(0.725, abs=0.08)

    # The paper's takeaway: 90% SWRs costs little lifetime.
    for name in ("tlsr", "pcm-s", "bwl"):
        assert by_scheme[name][0.9] >= 0.90 * by_scheme[name][0.0]
    assert by_scheme["wawl"][0.9] >= 0.85 * by_scheme["wawl"][0.0]
