"""EXT-SALV -- Section 2.2.2 quantified: salvaging cannot resist UAA.

The paper dismisses salvaging techniques in two sentences ("hundreds of
errors may occur simultaneously in one line, and prior work is incapable
to correct so many errors"; FREE-p/PAYG "simply interpret process
variation as non-uniform error rate").  This extension bench runs the
full ladder under UAA: no protection, ECP-6, PAYG, FREE-p, and Max-WE at
matched overhead -- making the related-work argument a measured result.
"""

import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.salvage import ECP, FreeP, PayAsYouGo
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.util.tables import render_table


def run_salvaging_ladder(config):
    emap = config.make_emap()
    attack = UniformAddressAttack()
    schemes = [
        ("no-protection", NoSparing(), "--"),
        ("ecp-6", ECP(pointers=6), "11.9% metadata"),
        ("payg", PayAsYouGo(entries_per_line=1.0), "~2% metadata"),
        ("free-p", FreeP(reserve_fraction=0.1), "10% reserve"),
        ("max-we", MaxWE(0.1, 0.9), "10% spares + 0.016% tables"),
    ]
    results = {}
    for name, scheme, overhead in schemes:
        result = simulate_lifetime(emap, attack, scheme, rng=config.seed)
        results[name] = (result.normalized_lifetime, overhead)
    return results


def test_ext_salvaging(benchmark, experiment_config, emit_table):
    results = benchmark(run_salvaging_ladder, experiment_config)
    baseline = results["no-protection"][0]

    table = render_table(
        ["scheme", "lifetime", "vs no protection", "overhead"],
        [
            [name, lifetime, lifetime / baseline, overhead]
            for name, (lifetime, overhead) in results.items()
        ],
        title="EXT-SALV: salvaging vs spare-line replacement under UAA",
    )
    emit_table("ext_salvaging", table)

    lifetimes = {name: lifetime for name, (lifetime, _) in results.items()}

    # ECP's whole six-pointer budget buys only a marginal extension.
    assert lifetimes["ecp-6"] < 1.25 * lifetimes["no-protection"]
    # Pooling helps, endurance-obliviousness still caps FREE-p at PS level.
    assert lifetimes["ecp-6"] < lifetimes["payg"] < lifetimes["free-p"]
    # Max-WE dominates every salvaging technique at comparable overhead.
    assert lifetimes["max-we"] > 1.5 * lifetimes["free-p"]
    assert lifetimes["max-we"] / lifetimes["no-protection"] == pytest.approx(
        9.7, rel=0.15
    )
