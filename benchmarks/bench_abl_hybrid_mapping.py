"""ABL-HYBRID -- the hybrid-mapping trade DESIGN.md calls out.

Section 5.2.2 picks 90% SWRs by looking at lifetime alone; Section 5.3.2
computes storage at that point alone.  This ablation puts the two axes
together: for SWR shares from all-dynamic (0%) to all-region-mapped
(100%), it reports the BPA lifetime (averaged across the paper's
wear-levelers) *and* the mapping storage, exposing the Pareto argument
behind the paper's choice -- 90% keeps ~99% of the attainable lifetime at
~15% of the line-level mapping cost.
"""

import pytest

from repro.core.overhead import mapping_overhead_report, paper_overhead_geometry
from repro.sim.experiments import swr_fraction_sweep
from repro.util.stats import geometric_mean
from repro.util.tables import render_table

SWR_SHARES = (0.0, 0.2, 0.6, 0.8, 0.9, 1.0)


def run_hybrid_trade(config):
    sweeps = swr_fraction_sweep(config, swr_fractions=SWR_SHARES)
    geometry = paper_overhead_geometry()
    points = []
    for index, share in enumerate(SWR_SHARES):
        lifetimes = [series[index][1].normalized_lifetime for series in sweeps.values()]
        overhead = mapping_overhead_report(geometry, config.spare_fraction, share)
        points.append(
            (
                share,
                geometric_mean(lifetimes),
                overhead.hybrid_mib,
                overhead.reduction,
            )
        )
    return points


def test_abl_hybrid_mapping(benchmark, experiment_config, emit_table):
    points = benchmark(run_hybrid_trade, experiment_config)

    table = render_table(
        ["SWR share", "BPA lifetime (gmean)", "mapping (MB)", "saving vs line-level"],
        [
            [f"{share:.0%}", lifetime, storage, reduction]
            for share, lifetime, storage, reduction in points
        ],
        title="ABL-HYBRID: lifetime vs mapping storage across the SWR share",
    )
    emit_table("abl_hybrid_mapping", table)

    by_share = {share: (lifetime, storage) for share, lifetime, storage, _ in points}

    # Storage falls monotonically as more of the spare space is region-mapped.
    storages = [storage for _, _, storage, _ in points]
    assert storages == sorted(storages, reverse=True)

    # The paper's operating point: 90% keeps >=90% of the best lifetime...
    best_lifetime = max(lifetime for _, lifetime, _, _ in points)
    assert by_share[0.9][0] >= 0.90 * best_lifetime
    # ...at <=20% of the all-dynamic mapping cost.
    assert by_share[0.9][1] <= 0.20 * by_share[0.0][1]
