"""FIG2 -- Figure 2 / Section 3.3.1: remapping incurs extra writes.

The paper's example: the write targets logical line A (weak); the
wear-leveler swaps A with B and redirects the write, costing 1 write to
A's old host and 2 to B's -- remapping under UAA *accelerates* wear.
This bench drives a real region swap through the exact machinery and
verifies the 1 + 2 accounting, then measures the aggregate wear inflation
TLSR's refresh causes under uniform traffic.
"""

import numpy as np
import pytest

from repro.attacks.base import AccessProfile
from repro.util.tables import render_table
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.security_refresh import TLSR


def run_fig2():
    # Exact two-region swap with the triggering user write redirected.
    scheme = PCMS(lines_per_region=1, swap_interval=10**9)
    scheme.attach(np.array([10.0, 20.0]), rng=1)
    wear = {0: 0, 1: 0}
    for slot, extra in scheme._swap_logical_regions(0, 1):
        wear[slot] += extra
    wear[scheme.translate(0)] += 1  # the redirected user write

    # Aggregate inflation: TLSR refresh keeps running under uniform traffic.
    tlsr = TLSR(lines_per_region=1, refresh_interval=64)
    tlsr.attach(np.ones(256), rng=1)
    dist = tlsr.wear_weights(AccessProfile(kind="uniform"))
    inflation = 1.0 / dist.useful_fraction
    return wear, inflation


def test_fig2_remap_cost(benchmark, emit_table):
    wear, inflation = benchmark(run_fig2)

    table = render_table(
        ["line", "writes from one swap", "paper (Fig. 2)"],
        [["A (old host)", wear[0], 1], ["B (new host)", wear[1], 2]],
        title=(
            "FIG2: write cost of one remap swap; TLSR wear inflation under "
            f"UAA = {inflation:.4f}x (refresh interval 64)"
        ),
    )
    emit_table("fig2_remap_cost", table)

    assert wear[0] == 1
    assert wear[1] == 2
    # Interval-triggered randomization keeps paying this cost under UAA.
    assert inflation == pytest.approx(1.0 + 2.0 / 64.0)
