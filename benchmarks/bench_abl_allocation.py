"""ABL-MATCH -- ablation of Max-WE's two allocation ingredients.

DESIGN.md calls out the design choices worth ablating: what does
*weak-priority* spare selection buy over random/strong-priority, and what
does *weak-strong matching* buy over identity (weak-with-weak) or random
pairing?  The paper motivates both qualitatively (Section 4.1); this
bench quantifies each under UAA at the paper's 10%-spare operating point.
"""

import pytest

from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.lifetime import simulate_lifetime
from repro.util.tables import render_table


def run_ablation(config):
    emap = config.make_emap()
    attack = UniformAddressAttack()

    variants = {
        "paper (weak-priority + weak-strong)": dict(),
        "matching: identity": dict(matching="identity"),
        "matching: random": dict(matching="random"),
        "selection: random": dict(spare_selection="random"),
        "selection: strong-priority": dict(spare_selection="strong-priority"),
    }
    lifetimes = {}
    for label, kwargs in variants.items():
        scheme = MaxWE(config.spare_fraction, config.swr_fraction, **kwargs)
        result = simulate_lifetime(emap, attack, scheme, rng=config.seed)
        lifetimes[label] = result.normalized_lifetime
    return lifetimes


def test_abl_allocation(benchmark, experiment_config, emit_table):
    lifetimes = benchmark(run_ablation, experiment_config)
    paper = lifetimes["paper (weak-priority + weak-strong)"]

    table = render_table(
        ["variant", "normalized lifetime", "vs paper"],
        [
            [label, lifetime, lifetime / paper]
            for label, lifetime in lifetimes.items()
        ],
        title="ABL-MATCH: Max-WE allocation ablation under UAA (10% spares)",
    )
    emit_table("abl_allocation", table)

    # Each paper ingredient must strictly help.
    assert paper > lifetimes["matching: identity"]
    assert paper >= lifetimes["matching: random"]
    assert paper > lifetimes["selection: random"]
    assert paper > lifetimes["selection: strong-priority"]

    # Weak-priority is the bigger lever: wasting strong regions as spares
    # is far worse than merely pairing badly.
    assert lifetimes["selection: strong-priority"] < lifetimes["matching: identity"]
