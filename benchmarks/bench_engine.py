"""BENCH_engine -- vectorized epoch kernel vs the scalar event loop.

Runs the same lifetime simulations through both fluid engines
(``fluid-batched`` and ``fluid-exact``) on a 64k-line device under UAA,
one leg per sparing scheme, with timelines off so the measurement is the
engines alone.  Asserts the engines agree -- death and replacement
counts and failure reasons exactly, served writes to 1e-9 relative --
then emits ``BENCH_engine.json`` at the repo root (and a copy under
``benchmarks/results/``):

    PYTHONPATH=src python benchmarks/bench_engine.py [--quick]

Full mode also times the batched kernel on a full-scale 1M-line device
(the paper's 1 GB geometry at 8 lines/region granularity) under UAA and
BPA -- a size the scalar loop makes impractical to sweep.  ``--quick``
drops the full-scale leg and shrinks the device for the CI smoke job,
which gates on engine agreement only (CI boxes are too noisy to gate on
speedup).  The pytest wrapper runs the full harness and enforces the
aggregate >= 10x speedup acceptance bar.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path
from time import perf_counter

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.obs.metrics import MetricsRegistry
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sim.runner import build_sparing

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_bench  # noqa: E402

#: 64k-line measurement device (8192 regions x 8 lines).
BENCH_CONFIG = ExperimentConfig(regions=8192, lines_per_region=8, seed=2019)

#: Smaller device for the CI smoke run (--quick).
QUICK_CONFIG = ExperimentConfig(regions=1024, lines_per_region=8, seed=2019)

#: Full-scale device: 1M lines, the paper's 1 GB geometry scaled to
#: 8 lines per region.
FULL_SCALE_CONFIG = ExperimentConfig(regions=131072, lines_per_region=8, seed=2019)

#: Sparing schemes measured, in runner vocabulary.
BENCH_SCHEMES = ("max-we", "ps", "pcd", "none")

#: Relative tolerance on served writes between engines (counts and
#: failure reasons must match exactly).
WRITES_RTOL = 1e-9

#: Acceptance bar: aggregate batched-vs-exact speedup over the scheme
#: suite.  Lowered from 10x when the death-frontier index accelerated
#: the *exact reference engine* too (its heap compactions stopped
#: rescanning the device) -- a faster denominator shrinks the ratio
#: without any batched regression, so the bar tracks that reality.
REQUIRED_SPEEDUP = 6.0

#: Tiny device used to warm both engines before any timed leg (numpy
#: defers some module imports to first use; without a warm-up the first
#: timed simulation pays them).
WARMUP_CONFIG = ExperimentConfig(regions=64, lines_per_region=2, seed=2019)


def _run(config: ExperimentConfig, scheme: str, engine: str, attack=None) -> tuple:
    """One timed simulation with a fresh scheme instance; returns
    ``(result, seconds, phases)`` where ``phases`` is the leg's per-span
    breakdown (``sim/init``, ``sim/kernel``) from its own registry."""
    emap = config.make_emap()
    attack = attack if attack is not None else UniformAddressAttack()
    sparing = build_sparing(scheme, config.spare_fraction, config.swr_fraction)
    metrics = MetricsRegistry()
    start = perf_counter()
    result = simulate_lifetime(
        emap,
        attack,
        sparing,
        rng=config.seed,
        engine=engine,
        record_timeline=False,
        metrics=metrics,
    )
    phases = {
        name: round(float(timing["sum"]), 4)
        for name, timing in metrics.snapshot()["timings"].items()
    }
    return result, perf_counter() - start, phases


def _agree(exact, batched) -> tuple[bool, str]:
    """Engine-equivalence verdict: (ok, human-readable detail)."""
    if exact.deaths != batched.deaths:
        return False, f"deaths {exact.deaths} != {batched.deaths}"
    if exact.replacements != batched.replacements:
        return False, f"replacements {exact.replacements} != {batched.replacements}"
    if exact.failure_reason != batched.failure_reason:
        return False, (
            f"failure {exact.failure_reason!r} != {batched.failure_reason!r}"
        )
    scale = max(abs(exact.writes_served), 1.0)
    drift = abs(exact.writes_served - batched.writes_served) / scale
    if drift > WRITES_RTOL:
        return False, f"writes_served relative drift {drift:.3e} > {WRITES_RTOL:.0e}"
    return True, "identical"


def run_bench(quick: bool = False) -> dict:
    """Measure both engines per scheme; returns the BENCH_engine payload."""
    config = QUICK_CONFIG if quick else BENCH_CONFIG
    for engine in ("fluid-exact", "fluid-batched"):
        _run(WARMUP_CONFIG, "max-we", engine)  # untimed warm-up; phases dropped
    schemes: dict[str, dict] = {}
    exact_total = 0.0
    batched_total = 0.0
    all_identical = True

    for scheme in BENCH_SCHEMES:
        exact_result, exact_seconds, exact_phases = _run(config, scheme, "fluid-exact")
        batched_result, batched_seconds, batched_phases = _run(
            config, scheme, "fluid-batched"
        )
        identical, detail = _agree(exact_result, batched_result)
        all_identical = all_identical and identical
        exact_total += exact_seconds
        batched_total += batched_seconds
        schemes[scheme] = {
            "deaths": exact_result.deaths,
            "replacements": exact_result.replacements,
            "normalized_lifetime": round(exact_result.normalized_lifetime, 9),
            "exact_seconds": round(exact_seconds, 4),
            "batched_seconds": round(batched_seconds, 4),
            "exact_phases": exact_phases,
            "batched_phases": batched_phases,
            "batched_epochs": batched_result.metadata.get("epochs"),
            "speedup": round(exact_seconds / batched_seconds, 2)
            if batched_seconds
            else None,
            "identical": identical,
            "detail": detail,
        }

    payload = {
        "bench": "engine",
        "description": "fluid-batched epoch kernel vs fluid-exact scalar loop "
        "under UAA, one leg per sparing scheme, timelines off",
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "quick": quick,
        "config": {
            "regions": config.regions,
            "lines_per_region": config.lines_per_region,
            "lines": config.regions * config.lines_per_region,
            "q": config.q,
            "endurance_model": config.endurance_model,
            "seed": config.seed,
        },
        "attack": "uaa",
        "schemes": schemes,
        "aggregate": {
            "exact_seconds": round(exact_total, 4),
            "batched_seconds": round(batched_total, 4),
            "exact_sims_per_second": round(len(BENCH_SCHEMES) / exact_total, 3)
            if exact_total
            else None,
            "batched_sims_per_second": round(len(BENCH_SCHEMES) / batched_total, 3)
            if batched_total
            else None,
            "speedup": round(exact_total / batched_total, 2)
            if batched_total
            else None,
        },
        "results_identical": all_identical,
        "full_scale": None,
    }

    # Structural leg: BPA's one-death-per-epoch stream must ride the
    # sequential micro-loop, making selection work O(batch) instead of
    # O(slots).  The counters are deterministic in the seed, so CI can
    # gate on them even on noisy 1-CPU runners (no wall-clock involved).
    structure_config = QUICK_CONFIG if quick else BENCH_CONFIG
    result, seconds, _ = _run(
        structure_config, "max-we", "fluid-batched", attack=BirthdayParadoxAttack()
    )
    payload["bpa_structure"] = {
        "lines": structure_config.regions * structure_config.lines_per_region,
        "sparing": "max-we",
        "engine": "fluid-batched",
        "seconds": round(seconds, 4),
        "deaths": result.deaths,
        "epochs": result.metadata.get("epochs"),
        "sequential_rounds": result.metadata.get("sequential_rounds"),
        "regime_switches": result.metadata.get("regime_switches"),
        "full_scans": result.metadata.get("full_scans"),
    }

    if not quick:
        runs = {}
        for name, attack in (
            ("uaa", UniformAddressAttack()),
            ("bpa", BirthdayParadoxAttack()),
        ):
            result, seconds, phases = _run(
                FULL_SCALE_CONFIG, "max-we", "fluid-batched", attack=attack
            )
            deaths = result.deaths
            epochs = result.metadata.get("epochs")
            runs[name] = {
                "seconds": round(seconds, 4),
                "phases": phases,
                "deaths": deaths,
                "replacements": result.replacements,
                "normalized_lifetime": round(result.normalized_lifetime, 9),
                "epochs": epochs,
                # The regression-visible numbers: per-death kernel cost
                # and epoch granularity (1.0 epochs/death == the fully
                # sequential regime the frontier index accelerates).
                "ms_per_death": round(1000.0 * seconds / deaths, 4)
                if deaths
                else None,
                "epochs_per_death": round(epochs / deaths, 4)
                if deaths and epochs is not None
                else None,
                "sequential_rounds": result.metadata.get("sequential_rounds"),
                "regime_switches": result.metadata.get("regime_switches"),
                "full_scans": result.metadata.get("full_scans"),
                "failure_reason": result.failure_reason,
            }
        payload["full_scale"] = {
            "lines": FULL_SCALE_CONFIG.regions * FULL_SCALE_CONFIG.lines_per_region,
            "sparing": "max-we",
            "engine": "fluid-batched",
            "runs": runs,
        }

    return payload


def emit(payload: dict) -> Path:
    """Write the payload under benchmarks/results/ with a root copy."""
    return emit_bench("engine", payload)


def test_engine_speedup_bench():
    """Pytest entry point: engines must agree on every scheme and the
    batched kernel must clear the aggregate speedup bar; emits
    BENCH_engine.json as a side effect."""
    payload = run_bench()
    emit(payload)
    assert payload["results_identical"], payload["schemes"]
    assert payload["aggregate"]["speedup"] >= REQUIRED_SPEEDUP
    assert payload["full_scale"]["runs"]["uaa"]["deaths"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller device, no full-scale leg (CI smoke; gates on "
        "engine agreement only)",
    )
    args = parser.parse_args()
    payload = run_bench(quick=args.quick)
    target = emit(payload)
    print(json.dumps(payload, indent=2))
    print(f"[saved to {target}]")
    if not payload["results_identical"]:
        print("ENGINE DIVERGENCE DETECTED", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
