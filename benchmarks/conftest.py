"""Shared helpers for the benchmark harness.

Every bench regenerates one figure or table of the paper's evaluation,
asserts its shape claims, and *emits* the series: printed to the terminal
(visible with ``pytest benchmarks/ -s`` and in failure reports) and saved
under ``benchmarks/results/`` so EXPERIMENTS.md can be audited against
fresh runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.sim.config import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent / "results"


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    """The paper's evaluation configuration (scaled; see DESIGN.md)."""
    return ExperimentConfig()


@pytest.fixture(scope="session")
def emit_table():
    """Print a reproduction table and persist it under benchmarks/results/."""

    def _emit(experiment_id: str, table: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(table + "\n")
        print(f"\n{table}\n[saved to {path}]")

    return _emit
