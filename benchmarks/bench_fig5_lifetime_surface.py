"""FIG5 -- Figure 5 / Section 4.3: analytic lifetime comparison surface.

Regenerates the Max-WE vs PCD/PS vs PS-worst surfaces over the paper's
grid (0.1 <= p <= 0.3, 10 <= q <= 100) and checks the figure's claims:
Max-WE dominates everywhere, and the Section 4.3 spot values at
(p=0.1, q=50) are 38.1% / 22.2% / 20.8%.
"""

import pytest

from repro.analysis.surfaces import lifetime_surface
from repro.util.tables import render_table

PAPER_SPOT = {"max-we": 0.381, "pcd-ps": 0.222, "ps-worst": 0.208}


def test_fig5_lifetime_surface(benchmark, emit_table):
    surface = benchmark(lifetime_surface)

    rows = []
    for i, p in enumerate(surface.p_values):
        for j, q in enumerate(surface.q_values):
            rows.append(
                [
                    f"{p:.2f}",
                    f"{q:.0f}",
                    float(surface.maxwe[i, j]),
                    float(surface.pcd_ps[i, j]),
                    float(surface.ps_worst[i, j]),
                ]
            )
    table = render_table(
        ["p", "q", "max-we", "pcd-ps", "ps-worst"],
        rows,
        title="FIG5: normalized analytic lifetimes (Eq. 6-8) on the paper grid",
    )
    emit_table("fig5_lifetime_surface", table)

    assert surface.maxwe_dominates()
    spot = surface.at(0.1, 50.0)
    for scheme, expected in PAPER_SPOT.items():
        assert spot[scheme] == pytest.approx(expected, abs=0.001)
