"""BENCH_events -- bounded EventLog append throughput at the 10k bound.

``EventLog.record`` used to evict with ``del list[0]`` once the bound
was hit -- O(n) per append, quadratic over a multi-million-event
simulation.  The fix stores events in ``deque(maxlen=...)``, whose
eviction is O(1).  This micro-benchmark measures both layers:

* **storage op** -- the raw bounded-append primitive in isolation
  (``list.append`` + ``del [0]`` vs ``deque.append`` at the 10k bound),
  which is the operation the fix replaces and where the >=10x win is;
* **record()** -- the full public call (event construction + counter +
  append), where eviction is one term among several, so the end-to-end
  win is smaller but still real.

Run with ``PYTHONPATH=src python benchmarks/bench_events.py``; emits
``BENCH_events.json`` at the repo root and under ``benchmarks/results/``.
The pytest entry asserts the deque storage op beats the old list
eviction by >=10x at the 10k bound.
"""

from __future__ import annotations

import json
import platform
from collections import deque
from pathlib import Path
from time import perf_counter

from repro.util.events import EventLog

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_bench  # noqa: E402

#: The default EventLog retention bound; eviction cost scales with it.
BOUND = 10_000
#: Appends measured per leg -- every one of them evicts (log pre-filled).
APPENDS = 50_000


def _bench_list_eviction() -> float:
    """Seconds per bounded append with the pre-fix list storage."""
    events: list = [None] * BOUND
    start = perf_counter()
    for index in range(APPENDS):
        events.append(index)
        if len(events) > BOUND:
            del events[0]
    return (perf_counter() - start) / APPENDS


def _bench_deque_eviction() -> float:
    """Seconds per bounded append with the deque storage."""
    events: deque = deque([None] * BOUND, maxlen=BOUND)
    start = perf_counter()
    for index in range(APPENDS):
        events.append(index)
    return (perf_counter() - start) / APPENDS


def _bench_record() -> float:
    """Seconds per full ``EventLog.record`` call at the bound."""
    log = EventLog(max_events=BOUND)
    for index in range(BOUND):
        log.record("warmup", index)
    start = perf_counter()
    for index in range(APPENDS):
        log.record("line-worn-out", index, line=index)
    return (perf_counter() - start) / APPENDS


def run_bench() -> dict:
    """Measure both layers; returns the BENCH_events payload."""
    list_op = min(_bench_list_eviction() for _ in range(3))
    deque_op = min(_bench_deque_eviction() for _ in range(3))
    record = min(_bench_record() for _ in range(3))
    return {
        "bench": "events",
        "description": "bounded EventLog append cost at the 10k bound: "
        "raw storage op (list append+del[0] vs deque(maxlen)) and the "
        "full record() call on the fixed implementation",
        "platform": platform.platform(),
        "bound": BOUND,
        "appends_per_leg": APPENDS,
        "storage_op": {
            "list_ns_per_append": round(list_op * 1e9, 1),
            "deque_ns_per_append": round(deque_op * 1e9, 1),
            "speedup": round(list_op / deque_op, 1) if deque_op else None,
        },
        "record": {
            "ns_per_call": round(record * 1e9, 1),
        },
    }


def emit(payload: dict) -> Path:
    """Write the payload under benchmarks/results/ with a root copy."""
    return emit_bench("events", payload)


def test_event_append_bench():
    """Pytest entry point: the deque storage op must beat the old list
    eviction by >=10x at the 10k bound; emits BENCH_events.json."""
    payload = run_bench()
    emit(payload)
    assert payload["storage_op"]["speedup"] >= 10.0
    # The full record() call includes event construction + counting, so
    # just pin that it stays within the same order of magnitude as the
    # unbounded-append cost rather than the old O(n) eviction cost.
    assert payload["record"]["ns_per_call"] < payload["storage_op"]["list_ns_per_append"] * 5


def main() -> int:
    payload = run_bench()
    target = emit(payload)
    print(json.dumps(payload, indent=2))
    print(f"[saved to {target}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
