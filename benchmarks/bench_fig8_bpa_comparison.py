"""FIG8 -- Figure 8 / Section 5.3.1: sparing schemes under BPA.

Regenerates the head-to-head bar chart: Max-WE vs PCD/PS vs PS-worst
under the Birthday Paradox Attack across the four wear-leveling
baselines, summarized by the geometric mean.  Paper gmeans: Max-WE 47.4%,
PCD/PS 41.2%, PS-worst 25.6% -- i.e. Max-WE beats PCD/PS by 14.8% and
PS-worst by 85.0%.
"""

import pytest

from repro.sim.experiments import bpa_scheme_comparison
from repro.util.asciiplot import bar_chart
from repro.util.stats import geometric_mean
from repro.util.tables import render_table

PAPER_GMEANS = {"max-we": 0.474, "pcd-ps": 0.412, "ps-worst": 0.256}


def test_fig8_bpa_comparison(benchmark, experiment_config, emit_table):
    comparison = benchmark(bpa_scheme_comparison, experiment_config)
    wearlevelers = list(next(iter(comparison.values())).keys())

    gmeans = {}
    rows = []
    for name, row in comparison.items():
        lifetimes = [row[wl].normalized_lifetime for wl in wearlevelers]
        gmeans[name] = geometric_mean(lifetimes)
        rows.append([name] + lifetimes + [gmeans[name], PAPER_GMEANS[name]])
    table = render_table(
        ["scheme"] + wearlevelers + ["gmean", "paper gmean"],
        rows,
        title="FIG8: sparing schemes under BPA (10% spares, 90% SWRs)",
    )
    chart = bar_chart(
        {f"{name} (gmean)": value for name, value in gmeans.items()},
        title="FIG8 gmeans",
    )
    emit_table("fig8_bpa_comparison", table + "\n\n" + chart)

    # Who wins: Max-WE > PCD/PS > PS-worst, per wear-leveler and in gmean.
    assert gmeans["max-we"] > gmeans["pcd-ps"] > gmeans["ps-worst"]
    for wl in wearlevelers:
        assert (
            comparison["max-we"][wl].normalized_lifetime
            >= 0.9 * comparison["pcd-ps"][wl].normalized_lifetime
        )
        assert (
            comparison["max-we"][wl].normalized_lifetime
            > comparison["ps-worst"][wl].normalized_lifetime
        )

    # Factor bands around the paper's gmeans.
    assert gmeans["max-we"] == pytest.approx(PAPER_GMEANS["max-we"], abs=0.06)
    assert gmeans["pcd-ps"] == pytest.approx(PAPER_GMEANS["pcd-ps"], abs=0.09)
    assert gmeans["ps-worst"] == pytest.approx(PAPER_GMEANS["ps-worst"], abs=0.09)
