"""ABL-ORACLE -- Max-WE against the clairvoyant offline optimum.

An ablation DESIGN.md calls out beyond the paper: with the full endurance
map and the attack known in advance, how much lifetime does *any*
spare-line replacement scheme leave on the table?  Two oracle bounds
(see :mod:`repro.analysis.oracle`) bracket the answer, and the comparison
exposes a structural fact: under the hardware's integral one-spare-per-
rescue constraint, Max-WE's weak-priority pool is the right choice and
the scheme achieves the integral optimum exactly -- while the fractional
relaxation (spares divisible across slots) would prefer the *strongest*
lines as spares and roughly double the lifetime, pointing at what a
finer-grained (sub-line) sparing architecture could buy.
"""

import pytest

from repro.analysis.oracle import (
    fractional_oracle_lifetime,
    greedy_oracle_lifetime,
)
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.ps import PS
from repro.util.tables import render_table


def run_oracle_comparison(config):
    emap = config.make_emap()
    attack = UniformAddressAttack()
    p = config.spare_fraction

    maxwe = simulate_lifetime(emap, attack, MaxWE(p, config.swr_fraction), rng=config.seed)
    ps_worst = simulate_lifetime(emap, attack, PS.worst_case(p), rng=config.seed)
    return {
        "ps-worst (simulated)": ps_worst.normalized_lifetime,
        "max-we (simulated)": maxwe.normalized_lifetime,
        "integral oracle, weak pool": greedy_oracle_lifetime(emap, p, spare_selection="weakest"),
        "integral oracle, strong pool": greedy_oracle_lifetime(emap, p, spare_selection="strongest"),
        "fractional oracle": fractional_oracle_lifetime(emap, p),
    }


def test_abl_oracle(benchmark, experiment_config, emit_table):
    lifetimes = benchmark(run_oracle_comparison, experiment_config)

    table = render_table(
        ["allocator", "normalized lifetime"],
        [[name, value] for name, value in lifetimes.items()],
        title="ABL-ORACLE: Max-WE vs clairvoyant bounds under UAA (10% spares)",
    )
    emit_table("abl_oracle", table)

    # Max-WE achieves the integral optimum for its pool class.
    assert lifetimes["max-we (simulated)"] == pytest.approx(
        lifetimes["integral oracle, weak pool"], rel=0.02
    )
    # The integral inversion: weak pool beats strong pool...
    assert (
        lifetimes["integral oracle, weak pool"]
        > lifetimes["integral oracle, strong pool"]
    )
    # ...and the strong-pool integral oracle degenerates to PS-worst.
    assert lifetimes["integral oracle, strong pool"] == pytest.approx(
        lifetimes["ps-worst (simulated)"], rel=0.02
    )
    # The fractional relaxation shows the sub-line-sparing headroom.
    assert lifetimes["fractional oracle"] > 1.5 * lifetimes["max-we (simulated)"]
