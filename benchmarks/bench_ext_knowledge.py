"""EXT-KNOWLEDGE -- what attacker knowledge is worth, and what defuses it.

The paper's threat model gives the *defender* the endurance distribution
(manufacture-time data) and denies it to the attacker (Section 3.1).
This extension bench prices that asymmetry: it runs the ladder of
attacker capabilities -- blind single-address, blind uniform (UAA),
birthday-paradox (BPA), and a full endurance-map leak (targeted) --
against an undefended device and against the paper's full stack
(Max-WE + WAWL), measuring how much each increment of knowledge buys the
attacker in each regime.
"""

import pytest

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.targeted import TargetedWeakLineAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.util.tables import render_table
from repro.wearlevel import make_scheme


def run_knowledge_ladder(config):
    emap = config.make_emap()
    # The optimal leak exploit against a fail-at-first-death device:
    # hammer exactly the known weakest line.
    leak = TargetedWeakLineAttack.from_endurance_map(emap, 1.0 / emap.lines)
    attacks = {
        "repeated (blind, one address)": RepeatedAddressAttack(target=0),
        "uaa (blind, uniform)": UniformAddressAttack(),
        "bpa (mapping-aware bursts)": BirthdayParadoxAttack(),
        "targeted (endurance map leak)": leak,
    }
    table = {}
    for name, attack in attacks.items():
        undefended = simulate_lifetime(emap, attack, NoSparing(), rng=config.seed)
        defended = simulate_lifetime(
            emap,
            attack,
            MaxWE(config.spare_fraction, config.swr_fraction),
            wearleveler=make_scheme("wawl", lines_per_region=1),
            rng=config.seed,
        )
        table[name] = (
            undefended.normalized_lifetime,
            defended.normalized_lifetime,
        )
    return table


def test_ext_knowledge(benchmark, experiment_config, emit_table):
    ladder = benchmark(run_knowledge_ladder, experiment_config)

    table = render_table(
        ["attacker capability", "undefended", "max-we + wawl"],
        [[name, *values] for name, values in ladder.items()],
        title="EXT-KNOWLEDGE: attacker knowledge vs defence (normalized lifetime)",
    )
    emit_table("ext_knowledge", table)

    undefended = {name: values[0] for name, values in ladder.items()}
    defended = {name: values[1] for name, values in ladder.items()}

    # Undefended: each increment of knowledge hurts more -- the map leak
    # is the worst case, far below even UAA.
    assert (
        undefended["targeted (endurance map leak)"]
        < undefended["repeated (blind, one address)"] + 1e-9
    )
    assert undefended["targeted (endurance map leak)"] < 0.2 * undefended["uaa (blind, uniform)"]

    # Defended: the full stack compresses the whole ladder into a narrow,
    # high band -- knowledge of the endurance map buys the attacker
    # nothing once the address mapping is randomized.
    defended_values = list(defended.values())
    assert min(defended_values) > 0.3
    assert max(defended_values) / min(defended_values) < 2.5

    # And the defence never does worse than the undefended device.
    for name in ladder:
        assert defended[name] > undefended[name]
