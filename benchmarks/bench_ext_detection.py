"""EXT-DETECT -- online attack detection latency and false positives.

An extension beyond the paper's passive defence: a controller-side
classifier watching the write stream (see :mod:`repro.detect`).  The
bench measures, per workload, whether the alarm latches and after how
many writes -- the attacks must all be caught within a handful of
windows, the benign workloads must never trip it.
"""

import itertools

from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import HotColdWorkload, ZipfWorkload
from repro.detect.monitor import AttackClassifier, WriteRateMonitor
from repro.util.tables import render_table

USER_LINES = 1 << 14
WRITES = 16_384
WINDOW = 1024

WORKLOADS = {
    "uaa": (UniformAddressAttack(random_data=False), True),
    "bpa": (BirthdayParadoxAttack(burst_length=4096), True),
    "repeated": (RepeatedAddressAttack(target=3), True),
    "zipf (benign)": (ZipfWorkload(exponent=1.1), False),
    "hot/cold (benign)": (HotColdWorkload(), False),
}


def run_detection():
    outcomes = {}
    for name, (attack, _) in WORKLOADS.items():
        classifier = AttackClassifier(WriteRateMonitor(window=WINDOW))
        stream = attack.stream(USER_LINES, rng=1)
        for request in itertools.islice(stream, WRITES):
            classifier.observe(request.address)
        outcomes[name] = (
            classifier.alarmed,
            classifier.alarmed_at,
            classifier.last_verdict.value,
        )
    return outcomes


def test_ext_detection(benchmark, emit_table):
    outcomes = benchmark(run_detection)

    table = render_table(
        ["workload", "alarmed", "latency (writes)", "verdict", "expected"],
        [
            [
                name,
                str(alarmed),
                "-" if latency is None else latency,
                verdict,
                "attack" if WORKLOADS[name][1] else "benign",
            ]
            for name, (alarmed, latency, verdict) in outcomes.items()
        ],
        title="EXT-DETECT: streaming classifier over 16k writes (1k window)",
    )
    emit_table("ext_detection", table)

    for name, (attack, is_attack) in WORKLOADS.items():
        alarmed, latency, _ = outcomes[name]
        assert alarmed == is_attack, f"{name}: alarmed={alarmed}"
        if is_attack:
            # Caught within the hysteresis budget: 3 windows + slack.
            assert latency is not None and latency <= 4 * WINDOW
