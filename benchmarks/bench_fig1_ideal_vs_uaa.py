"""FIG1 -- Figure 1 / Section 3.1: ideal lifetime versus lifetime under UAA.

Regenerates the paper's opening result: with the evaluation endurance
distribution, uniform sequential writes (UAA) wear the device out at a
small fraction of the ideal lifetime -- 4.1% measured / 3.9% analytic in
the paper.  The bench reports the analytic Eq. 3-5 quantities alongside
the simulated unprotected lifetime, for both the linear model and the
Zhang-Li power-law model.
"""

import pytest

from repro.analysis.lifetime import uaa_fraction
from repro.attacks.uaa import UniformAddressAttack
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.util.tables import render_table

PAPER_MEASURED = 0.041
PAPER_ANALYTIC = 2.0 / 51.0


def run_fig1(config: ExperimentConfig):
    rows = []
    for family in ("linear", "zhang-li"):
        emap = config.with_(endurance_model=family).make_emap()
        result = simulate_lifetime(emap, UniformAddressAttack(), NoSparing(), rng=config.seed)
        rows.append((family, result.normalized_lifetime, emap.q_ratio))
    return rows


def test_fig1_ideal_vs_uaa(benchmark, experiment_config, emit_table):
    rows = benchmark(run_fig1, experiment_config)
    lifetimes = {family: lifetime for family, lifetime, _ in rows}

    table = render_table(
        ["endurance model", "L_UAA / L_Ideal", "q = EH/EL", "paper"],
        [
            [family, lifetime, q, f"{PAPER_MEASURED:.1%} meas / {PAPER_ANALYTIC:.1%} analytic"]
            for family, lifetime, q in rows
        ],
        title="FIG1: lifetime under UAA, unprotected device",
    )
    emit_table("fig1_ideal_vs_uaa", table)

    # The headline: UAA crushes lifetime to a few percent of ideal.
    assert lifetimes["linear"] == pytest.approx(PAPER_ANALYTIC, rel=0.02)
    assert 0.02 <= lifetimes["zhang-li"] <= 0.07  # paper: 4.1%
