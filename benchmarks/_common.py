"""Shared plumbing for the BENCH_* harnesses.

Every bench emits one JSON payload.  The canonical copy lives under
``benchmarks/results/`` (the directory CI uploads as an artifact and
``benchmarks/trajectory.py`` aggregates); a convenience copy is placed
at the repo root so ``BENCH_*.json`` stays greppable next to README.md.
The payload is serialized exactly once -- the root file is a byte copy,
not an independent dump, so the two can never drift.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULTS_DIR = Path(__file__).resolve().parent / "results"

__all__ = ["REPO_ROOT", "RESULTS_DIR", "emit_bench"]


def emit_bench(name: str, payload: dict) -> Path:
    """Write ``BENCH_<name>.json`` once under ``benchmarks/results/`` and
    copy it to the repo root; returns the root path."""
    filename = f"BENCH_{name}.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    canonical = RESULTS_DIR / filename
    canonical.write_text(json.dumps(payload, indent=2) + "\n")
    target = REPO_ROOT / filename
    shutil.copyfile(canonical, target)
    return target
