"""EXT-WR -- Section 3.3.2: write-reduction techniques under attack.

The paper argues (without numbers) that DRAM buffering, Flip-N-Write and
compression are all defeated by adversarial inputs.  This extension bench
makes the argument quantitative: for each technique it measures the wear
metric under benign traffic and under the crafting adversary, and asserts
the adversary erases (or inverts) the technique's benefit.
"""

import itertools

import numpy as np
import pytest

from repro.attacks.patterns import PATTERN_5555, PATTERN_ZERO
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import HotColdWorkload
from repro.util.tables import render_table
from repro.writereduce.compression import FrequentPatternCompressor
from repro.writereduce.dram_buffer import DRAMBuffer
from repro.writereduce.flipnwrite import FlipNWrite

USER_LINES = 4096
BUFFER_LINES = 256
WRITES = 20_000


def run_ext_wr():
    # DRAM buffer: NVM writes per user write.
    rates = {}
    # Hot set sized to fit the buffer -- the scenario the buffer exists for.
    hot_cold = HotColdWorkload(
        hot_fraction_of_lines=0.04, hot_fraction_of_writes=0.95
    )
    for label, attack in (
        ("hot/cold", hot_cold),
        ("uaa", UniformAddressAttack(random_data=False)),
    ):
        buffer = DRAMBuffer(BUFFER_LINES)
        for request in itertools.islice(attack.stream(USER_LINES, rng=1), WRITES):
            buffer.write(request.address)
        rates[label] = buffer.nvm_write_rate()

    # Flip-N-Write: cell flips per write.
    rng = np.random.default_rng(2)
    benign_word = FlipNWrite()
    for _ in range(2000):
        benign_word.write(int(rng.integers(0, 2**64, dtype=np.uint64)))
    attacked_word = FlipNWrite()
    attacked_word.write(PATTERN_ZERO)
    for index in range(2000):
        attacked_word.write(PATTERN_5555 if index % 2 == 0 else PATTERN_ZERO)
    flips = {
        "benign": benign_word.flips_per_write(),
        "attack": attacked_word.flips_per_write(),
        "worst": attacked_word.worst_case_flips(),
    }

    # Compression: stored bits over raw bits.
    compressor = FrequentPatternCompressor()
    benign_words = [0, 255, 42, 0x7777777777777777, 65535] * 400
    random_words = [
        int(v) for v in rng.integers(2**48, 2**64, size=2000, dtype=np.uint64)
    ]
    ratios = {
        "benign": compressor.compression_ratio(benign_words),
        "attack": compressor.compression_ratio(random_words),
    }
    return rates, flips, ratios


def test_ext_write_reduction(benchmark, emit_table):
    rates, flips, ratios = benchmark(run_ext_wr)

    table = render_table(
        ["technique", "metric", "benign", "under attack"],
        [
            ["DRAM buffer (256 lines)", "NVM writes / user write", rates["hot/cold"], rates["uaa"]],
            ["Flip-N-Write (64b)", "cell flips / write", flips["benign"], flips["attack"]],
            ["FPC compression", "stored bits / raw bits", ratios["benign"], ratios["attack"]],
        ],
        title="EXT-WR: write-reduction techniques, benign vs adversarial traffic",
    )
    emit_table("ext_write_reduction", table)

    # DRAM buffer: great on hot/cold, inert under UAA.
    assert rates["hot/cold"] < 0.2
    assert rates["uaa"] > 0.95

    # Flip-N-Write: the adversary pins the codec at half the word width
    # (32 data flips) every write -- the worst case up to the tag bit.
    assert flips["attack"] >= 0.99 * 32
    assert flips["attack"] > flips["benign"]

    # Compression: benign data shrinks; adversarial data costs extra.
    assert ratios["benign"] < 0.5
    assert ratios["attack"] > 1.0
