"""FIG6 -- Figure 6 / Section 5.2.1: lifetime under UAA vs spare capacity.

Regenerates the sweep behind the paper's first parameter choice.  Paper
series (percent of ideal): 0% -> 4.1, 1% -> 14.0, 10% -> 43.1,
20% -> 57.9, 30% -> 74.1, 40% -> 86.9, 50% -> 87.4.  Shape requirements:
monotone increase, steep early gains, diminishing returns past ~30%.
"""

import pytest

from repro.sim.experiments import spare_fraction_sweep
from repro.util.asciiplot import line_plot
from repro.util.tables import render_table

PAPER_SERIES = {
    0.0: 0.041,
    0.01: 0.14,
    0.1: 0.431,
    0.2: 0.579,
    0.3: 0.741,
    0.4: 0.869,
    0.5: 0.874,
}


def test_fig6_spare_sweep(benchmark, experiment_config, emit_table):
    sweep = benchmark(spare_fraction_sweep, experiment_config)
    measured = {fraction: result.normalized_lifetime for fraction, result in sweep}

    fractions = sorted(measured)
    table = render_table(
        ["spare %", "measured", "paper"],
        [
            [f"{fraction:.0%}", measured[fraction], PAPER_SERIES[fraction]]
            for fraction in fractions
        ],
        title="FIG6: Max-WE lifetime under UAA vs spare-line capacity",
    )
    plot = line_plot(
        fractions,
        {
            "measured": [measured[fraction] for fraction in fractions],
            "paper": [PAPER_SERIES[fraction] for fraction in fractions],
        },
        title="FIG6 curve (o = measured, x = paper)",
    )
    emit_table("fig6_spare_sweep", table + "\n\n" + plot)

    # Shape: monotone increasing with diminishing returns.
    ordered = [measured[fraction] for fraction in sorted(measured)]
    assert ordered == sorted(ordered)
    assert (measured[0.2] - measured[0.1]) > (measured[0.5] - measured[0.4])

    # Factor bands around the paper's series.
    assert measured[0.0] == pytest.approx(PAPER_SERIES[0.0], abs=0.006)
    assert 0.33 <= measured[0.1] <= 0.48       # paper 43.1 (analytic 38.1)
    assert 0.50 <= measured[0.2] <= 0.70       # paper 57.9
    assert 0.65 <= measured[0.3] <= 0.85       # paper 74.1
    assert 0.78 <= measured[0.5] <= 0.95       # paper 87.4

    # The paper's takeaway: 10% spares buys roughly a 10x lifetime.
    assert measured[0.1] / measured[0.0] == pytest.approx(10.0, rel=0.15)
