"""TAB-UAA -- Section 5.3.1's text table: lifetimes under UAA, 10% spares.

Paper numbers (percent of ideal / improvement over no protection):
no-protection 4.1% / 1X, PS-worst 28.5% / 6.9X, PCD-PS 30.6% / 7.4X,
Max-WE 43.1% / 9.5X; and Max-WE beats PCD/PS by 40.7% and PS-worst by
51.1%.  The analytic counterparts (the linear model the simulation is
calibrated on) are 3.9 / 20.8 / 22.2 / 38.1.
"""

import pytest

from repro.sim.experiments import uaa_scheme_comparison
from repro.util.tables import render_table

PAPER = {
    "no-protection": (0.041, 1.0),
    "ps-worst": (0.285, 6.9),
    "pcd-ps": (0.306, 7.4),
    "max-we": (0.431, 9.5),
}


def test_tab_uaa_lifetime(benchmark, experiment_config, emit_table):
    results = benchmark(uaa_scheme_comparison, experiment_config)
    baseline = results["no-protection"]

    rows = []
    for name in ("no-protection", "ps-worst", "pcd-ps", "max-we"):
        lifetime = results[name].normalized_lifetime
        factor = results[name].improvement_over(baseline)
        paper_lifetime, paper_factor = PAPER[name]
        rows.append([name, lifetime, factor, paper_lifetime, paper_factor])
    table = render_table(
        ["scheme", "measured", "improvement", "paper", "paper impr."],
        rows,
        title="TAB-UAA: lifetimes under UAA (Section 5.3.1, 10% spares)",
    )
    emit_table("tab_uaa_lifetime", table)

    lifetimes = {name: r.normalized_lifetime for name, r in results.items()}

    # The ladder and the improvement factors.
    assert (
        lifetimes["max-we"]
        > lifetimes["pcd-ps"]
        > lifetimes["ps-worst"]
        > lifetimes["no-protection"]
    )
    assert results["max-we"].improvement_over(baseline) == pytest.approx(9.5, rel=0.1)
    assert results["pcd-ps"].improvement_over(baseline) == pytest.approx(7.4, rel=0.3)
    assert results["ps-worst"].improvement_over(baseline) == pytest.approx(6.9, rel=0.3)

    # Max-WE's margins over the baselines (paper: +40.7% / +51.1%).
    assert lifetimes["max-we"] / lifetimes["pcd-ps"] - 1.0 == pytest.approx(
        0.407, abs=0.35
    )
    assert lifetimes["max-we"] / lifetimes["ps-worst"] - 1.0 == pytest.approx(
        0.511, abs=0.4
    )
