"""EXT-MIX -- how much attack bandwidth does UAA need?

The paper evaluates the pure attack; deployments see the attacker's
writes diluted in benign traffic.  This extension sweeps the attack's
share of the write stream (UAA mixed into a database-style benign
workload) against the full defence, mapping the transition from the
benign-dominated regime to the paper's Section 5 operating point --
i.e. the residual lifetime as a function of how much of the channel the
attacker can claim.
"""

import pytest

from repro.attacks.mixed import MixedTraffic
from repro.attacks.suite import workload
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.lifetime import simulate_lifetime
from repro.util.tables import render_table
from repro.wearlevel import make_scheme

ATTACK_SHARES = (0.0, 0.1, 0.25, 0.5, 0.75, 1.0)


def run_mix_sweep(config):
    emap = config.make_emap()
    lifetimes = {}
    for share in ATTACK_SHARES:
        traffic = MixedTraffic(
            attack=UniformAddressAttack(),
            background=workload("database"),
            attack_share=share,
        )
        result = simulate_lifetime(
            emap,
            traffic,
            MaxWE(config.spare_fraction, config.swr_fraction),
            wearleveler=make_scheme("wawl", lines_per_region=1),
            rng=config.seed,
        )
        lifetimes[share] = result.normalized_lifetime
    return lifetimes


def test_ext_mixed_traffic(benchmark, experiment_config, emit_table):
    lifetimes = benchmark(run_mix_sweep, experiment_config)

    table = render_table(
        ["attack share", "normalized lifetime"],
        [[f"{share:.0%}", lifetime] for share, lifetime in sorted(lifetimes.items())],
        title="EXT-MIX: UAA diluted in database traffic (Max-WE + WAWL)",
    )
    emit_table("ext_mixed_traffic", table)

    # The pure-attack endpoint reproduces the Section 5 operating point.
    assert lifetimes[1.0] == pytest.approx(0.38, abs=0.06)
    assert lifetimes[0.0] > lifetimes[1.0]

    # Beyond a quarter of the channel, more attack share strictly costs
    # lifetime.  (Below that the sweep is non-monotone: a small uniform
    # component *flattens* the database workload's skew, which WAWL's
    # endurance-quadratic steering otherwise over-concentrates on the
    # strongest regions -- a real interaction, visible in the table.)
    declining = [lifetimes[share] for share in (0.25, 0.5, 0.75, 1.0)]
    assert declining == sorted(declining, reverse=True)

    # Half the channel already does most of the achievable damage,
    # measured from the sweep's best point.
    best = max(lifetimes.values())
    assert best - lifetimes[0.5] > 0.3 * (best - lifetimes[1.0])
