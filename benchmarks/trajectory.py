"""Merge every BENCH_*.json into one per-PR perf trend table.

Each bench harness emits a JSON payload with its own shape; this tool
flattens the headline numbers of each into a uniform row set and prints
a table (plus optional JSON/Markdown), so the bench trajectory across
PRs is one command instead of four files to eyeball:

    PYTHONPATH=src python benchmarks/trajectory.py [--dir DIR] [--json] [--markdown]

Rows are extracted defensively -- a bench that predates a field (or a
payload from an older PR) simply contributes fewer rows, never an
error, so the tool can be pointed at historical checkouts with --dir.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Iterator, Optional

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def _get(payload: dict, *path, default=None):
    node = payload
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return default
        node = node[key]
    return node


def _row(bench: str, metric: str, value, unit: str, detail: str = "") -> dict:
    return {
        "bench": bench,
        "metric": metric,
        "value": value,
        "unit": unit,
        "detail": detail,
    }


def _engine_rows(payload: dict) -> Iterator[dict]:
    agg = payload.get("aggregate") or {}
    if agg.get("speedup") is not None:
        yield _row("engine", "batched_vs_exact", agg["speedup"], "x",
                   "aggregate over scheme suite")
    if agg.get("batched_sims_per_second") is not None:
        yield _row("engine", "batched_throughput",
                   agg["batched_sims_per_second"], "sims/s")
    for name, run in (_get(payload, "full_scale", "runs") or {}).items():
        if run.get("seconds") is not None:
            yield _row("engine", f"full_scale_{name}", run["seconds"], "s",
                       f"{run.get('deaths')} deaths")
        if run.get("ms_per_death") is not None:
            yield _row("engine", f"full_scale_{name}_per_death",
                       run["ms_per_death"], "ms/death",
                       f"{run.get('epochs_per_death')} epochs/death")
    structure = payload.get("bpa_structure") or {}
    if structure.get("sequential_rounds") is not None:
        yield _row("engine", "bpa_sequential_rounds",
                   structure["sequential_rounds"], "epochs",
                   f"{structure.get('full_scans')} full scans, "
                   f"{structure.get('deaths')} deaths")
    if payload.get("results_identical") is not None:
        yield _row("engine", "results_identical",
                   payload["results_identical"], "bool")


def _ensemble_rows(payload: dict) -> Iterator[dict]:
    headline = payload.get("headline") or {}
    if headline.get("speedup") is not None:
        yield _row("ensemble", "stacked_vs_per_task", headline["speedup"], "x",
                   f"cell {headline.get('cell')}")
    if headline.get("ensemble_ms_per_replica") is not None:
        yield _row("ensemble", "ms_per_replica",
                   headline["ensemble_ms_per_replica"], "ms")
    if payload.get("results_identical") is not None:
        yield _row("ensemble", "results_identical",
                   payload["results_identical"], "bool")


def _events_rows(payload: dict) -> Iterator[dict]:
    record = payload.get("record") or {}
    if record.get("ns_per_call") is not None:
        yield _row("events", "record", record["ns_per_call"], "ns/call")


def _runner_rows(payload: dict) -> Iterator[dict]:
    if payload.get("speedup") is not None:
        yield _row("runner", "parallel_vs_serial", payload["speedup"], "x",
                   f"{_get(payload, 'tasks')} tasks")
    if payload.get("results_identical") is not None:
        yield _row("runner", "results_identical",
                   payload["results_identical"], "bool")


_EXTRACTORS = {
    "engine": _engine_rows,
    "ensemble": _ensemble_rows,
    "events": _events_rows,
    "runner": _runner_rows,
}


def collect(directory: Path) -> list[dict]:
    """Flatten every readable BENCH_*.json under ``directory``."""
    rows: list[dict] = []
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        bench = payload.get("bench") or path.stem.removeprefix("BENCH_")
        extractor = _EXTRACTORS.get(bench)
        if extractor is None:
            # Unknown bench: still surface its identity bit if present.
            if payload.get("results_identical") is not None:
                rows.append(_row(bench, "results_identical",
                                 payload["results_identical"], "bool"))
            continue
        for row in extractor(payload):
            row["quick"] = bool(payload.get("quick", False))
            rows.append(row)
    return rows


def render_table(rows: list[dict]) -> str:
    headers = ("bench", "metric", "value", "unit", "detail")
    table = [headers] + [
        tuple(str(row.get(h, "")) for h in headers) for row in rows
    ]
    widths = [max(len(line[col]) for line in table) for col in range(len(headers))]
    out = []
    for index, line in enumerate(table):
        out.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)).rstrip())
        if index == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)


def render_markdown(rows: list[dict]) -> str:
    headers = ("bench", "metric", "value", "unit", "detail")
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(row.get(h, "")) for h in headers) + " |")
    return "\n".join(out)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dir", type=Path, default=RESULTS_DIR,
        help="directory holding BENCH_*.json (default: benchmarks/results/)",
    )
    parser.add_argument("--json", action="store_true",
                        help="emit the flattened rows as JSON")
    parser.add_argument("--markdown", action="store_true",
                        help="emit a Markdown table (for PR descriptions)")
    args = parser.parse_args(argv)
    rows = collect(args.dir)
    if not rows:
        print(f"no BENCH_*.json found under {args.dir}")
        return 1
    if args.json:
        print(json.dumps(rows, indent=2))
    elif args.markdown:
        print(render_markdown(rows))
    else:
        print(render_table(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
