"""ABL-Q -- simulated counterpart of Figure 5: sensitivity to variation q.

Figure 5 compares the schemes *analytically* over the variation degree
``q = EH/EL``; this ablation reruns the Section 5.3.1 simulation at
q in {10, 25, 50, 100} and checks that the simulated curves track the
Eq. 5-8 closed forms across the whole range -- the strongest evidence
that engine and analysis describe the same system.
"""

import pytest

from repro.analysis.lifetime import (
    maxwe_normalized,
    pcd_ps_normalized,
    uaa_fraction,
)
from repro.attacks.uaa import UniformAddressAttack
from repro.core.maxwe import MaxWE
from repro.sim.config import ExperimentConfig
from repro.sim.lifetime import simulate_lifetime
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.util.tables import render_table

Q_VALUES = (10.0, 25.0, 50.0, 100.0)


def run_q_sweep(base_config):
    rows = []
    for q in Q_VALUES:
        config = base_config.with_(q=q)
        emap = config.make_emap()
        attack = UniformAddressAttack()
        nothing = simulate_lifetime(emap, attack, NoSparing(), rng=config.seed)
        pcd = simulate_lifetime(emap, attack, PCD(0.1), rng=config.seed)
        maxwe = simulate_lifetime(emap, attack, MaxWE(0.1, 0.9), rng=config.seed)
        rows.append(
            (
                q,
                nothing.normalized_lifetime,
                pcd.normalized_lifetime,
                maxwe.normalized_lifetime,
            )
        )
    return rows


def test_abl_q_sensitivity(benchmark, experiment_config, emit_table):
    rows = benchmark(run_q_sweep, experiment_config)

    table = render_table(
        ["q", "none sim", "none Eq.5", "pcd sim", "pcd Eq.7", "max-we sim", "max-we Eq.6"],
        [
            [
                f"{q:g}",
                none,
                uaa_fraction(q),
                pcd,
                pcd_ps_normalized(0.1, q),
                maxwe,
                maxwe_normalized(0.1, q),
            ]
            for q, none, pcd, maxwe in rows
        ],
        title="ABL-Q: simulated vs closed-form lifetimes across variation degrees",
    )
    emit_table("abl_q_sensitivity", table)

    for q, none, pcd, maxwe in rows:
        assert none == pytest.approx(uaa_fraction(q), rel=0.03)
        assert pcd == pytest.approx(pcd_ps_normalized(0.1, q), rel=0.06)
        assert maxwe == pytest.approx(maxwe_normalized(0.1, q), rel=0.06)
        assert maxwe > pcd > none

    # More variation hurts the unprotected device monotonically.
    unprotected = [none for _, none, _, _ in rows]
    assert unprotected == sorted(unprotected, reverse=True)
