"""TAB-OVH -- Sections 4.4 and 5.3.2: mapping-table storage overhead.

Paper numbers for a 1 GB NVM with 2048 regions, 10% spares, 90% SWRs:
Max-WE hybrid mapping about 0.16 MB versus about 1.1 MB for traditional
all-line-level mapping -- 15% of the traditional cost (an 85% reduction)
and 0.016% of the device capacity.
"""

import pytest

from repro.core.overhead import mapping_overhead_report, paper_overhead_geometry
from repro.util.tables import render_table


def run_overhead():
    geometry = paper_overhead_geometry()
    sweep = {
        swr: mapping_overhead_report(geometry, 0.1, swr)
        for swr in (0.0, 0.5, 0.9, 1.0)
    }
    return sweep


def test_tab_mapping_overhead(benchmark, emit_table):
    sweep = benchmark(run_overhead)
    report = sweep[0.9]

    rows = [
        [
            f"{swr:.0%}",
            entry.hybrid_mib,
            entry.line_level_mib,
            entry.reduction,
            entry.mapping_fraction_of_capacity,
        ]
        for swr, entry in sorted(sweep.items())
    ]
    table = render_table(
        ["SWR share", "Max-WE (MB)", "line-level (MB)", "reduction", "of capacity"],
        rows,
        title=(
            "TAB-OVH: mapping-table overhead, 1 GB / 2048 regions / 10% spares "
            "(paper @90%: 0.16 MB vs 1.1 MB, 85%, 0.016%)"
        ),
    )
    emit_table("tab_mapping_overhead", table)

    assert report.hybrid_mib == pytest.approx(0.16, abs=0.01)
    assert report.line_level_mib == pytest.approx(1.1, abs=0.01)
    assert report.reduction == pytest.approx(0.85, abs=0.015)
    assert report.mapping_fraction_of_capacity == pytest.approx(0.00016, abs=0.00003)

    # More SWRs, more savings; 0% SWRs degenerates to line-level cost.
    reductions = [sweep[swr].reduction for swr in (0.0, 0.5, 0.9, 1.0)]
    assert reductions == sorted(reductions)
    assert sweep[0.0].hybrid_bits == sweep[0.0].line_level_bits
