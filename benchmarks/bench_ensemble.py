"""BENCH_ensemble -- trial-stacked ensemble engine vs per-task dispatch.

Runs the same Monte-Carlo lifetime studies twice -- once with every
replica dispatched as its own ``fluid-batched`` task (the historical
path) and once through the ``fluid-ensemble`` engine that advances a
whole chunk of replicas per kernel pass -- across a replicas x scheme
grid on the 64k-line benchmark device under UAA.  Asserts every
per-replica result is *bit-identical* between the two dispatches, then
emits ``BENCH_ensemble.json`` at the repo root (and a copy under
``benchmarks/results/``):

    PYTHONPATH=src python benchmarks/bench_ensemble.py [--quick]

Methodology: the box this runs on drifts between slow and fast phases,
so each (scheme, replicas) cell measures its two legs *interleaved* and
keeps the minimum over ``--reps`` repetitions per leg -- comparing two
mins taken seconds apart, not a fast-phase leg against a slow-phase one.
Results are deterministic, so repetitions change timings only.

The headline cell -- 256 replicas of Max-WE(0.1, 0.9) -- carries the
acceptance bar: the ensemble engine must be >= 5x faster than per-task
dispatch.  ``--quick`` shrinks the device and the grid for the CI smoke
job, which gates on bit-identity only (CI boxes are too noisy to gate
on speedup).
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import platform
from pathlib import Path
from time import perf_counter

import numpy as np

from repro.attacks.uaa import UniformAddressAttack
from repro.obs.metrics import MetricsRegistry
from repro.sim.config import ExperimentConfig
from repro.sim.montecarlo import monte_carlo_lifetime
from repro.sim.runner import build_sparing

import sys

sys.path.insert(0, str(Path(__file__).resolve().parent))

from _common import emit_bench  # noqa: E402

#: 64k-line measurement device (8192 regions x 8 lines).
BENCH_CONFIG = ExperimentConfig(regions=8192, lines_per_region=8, seed=2019)

#: Smaller device for the CI smoke run (--quick).
QUICK_CONFIG = ExperimentConfig(regions=1024, lines_per_region=8, seed=2019)

#: Sparing schemes on the grid, in runner vocabulary.
BENCH_SCHEMES = ("max-we", "ps", "pcd", "none")

#: Replica counts on the grid; the largest is the headline cell.
BENCH_REPLICAS = (32, 256)
QUICK_REPLICAS = (8, 16)

#: Acceptance bar: ensemble speedup over per-task dispatch at the
#: headline cell (256 replicas of Max-WE on the 64k-line device).
REQUIRED_SPEEDUP = 5.0

#: Engine phase spans worth surfacing in the per-leg breakdown.
PHASE_SPANS = (
    "sim/init",
    "sim/kernel",
    "sim/endurance",
    "sim/components",
    "runner/total",
)


def _study(engine, config, replicas, scheme, trials_per_task=None):
    """One timed Monte-Carlo study; returns ``(study, seconds, phases)``."""
    sparing_factory = functools.partial(
        build_sparing, scheme, config.spare_fraction, config.swr_fraction
    )
    metrics = MetricsRegistry()
    start = perf_counter()
    study = monte_carlo_lifetime(
        UniformAddressAttack,
        sparing_factory,
        config=config,
        replicas=replicas,
        engine=engine,
        trials_per_task=trials_per_task,
        metrics=metrics,
        jobs=1,
    )
    seconds = perf_counter() - start
    timings = metrics.snapshot()["timings"]
    phases = {
        name: round(float(timings[name]["sum"]), 4)
        for name in PHASE_SPANS
        if name in timings
    }
    return study, seconds, phases


def _identical(per_task, ensemble) -> tuple[bool, str]:
    """Bit-identity verdict across every replica of the two studies."""
    if not np.array_equal(per_task.lifetimes, ensemble.lifetimes):
        drift = np.max(np.abs(per_task.lifetimes - ensemble.lifetimes))
        return False, f"lifetimes differ (max abs drift {drift:.3e})"
    for index, (solo, stacked) in enumerate(
        zip(per_task.results, ensemble.results)
    ):
        if solo.writes_served != stacked.writes_served:
            return False, f"replica {index}: writes_served differs"
        if solo.deaths != stacked.deaths:
            return False, f"replica {index}: deaths differ"
        if solo.replacements != stacked.replacements:
            return False, f"replica {index}: replacements differ"
        if solo.failure_reason != stacked.failure_reason:
            return False, f"replica {index}: failure_reason differs"
    return True, "identical"


def _measure_cell(config, scheme, replicas, reps):
    """Interleaved min-of-``reps`` measurement of one grid cell."""
    best = {"per-task": None, "ensemble": None}
    studies = {}
    for _ in range(reps):
        for leg, engine in (
            ("per-task", "fluid-batched"),
            ("ensemble", "fluid-ensemble"),
        ):
            study, seconds, phases = _study(engine, config, replicas, scheme)
            if best[leg] is None or seconds < best[leg][0]:
                best[leg] = (seconds, phases)
            studies[leg] = study  # deterministic: any rep's results do
    per_task_seconds, per_task_phases = best["per-task"]
    ensemble_seconds, ensemble_phases = best["ensemble"]
    identical, detail = _identical(studies["per-task"], studies["ensemble"])
    return {
        "replicas": replicas,
        "scheme": scheme,
        "mean_lifetime": round(studies["per-task"].mean, 9),
        "per_task_seconds": round(per_task_seconds, 4),
        "ensemble_seconds": round(ensemble_seconds, 4),
        "per_task_ms_per_replica": round(1000.0 * per_task_seconds / replicas, 3),
        "ensemble_ms_per_replica": round(1000.0 * ensemble_seconds / replicas, 3),
        "per_task_phases": per_task_phases,
        "ensemble_phases": ensemble_phases,
        "speedup": round(per_task_seconds / ensemble_seconds, 2)
        if ensemble_seconds
        else None,
        "identical": identical,
        "detail": detail,
    }


def run_bench(quick: bool = False, reps: int = 2) -> dict:
    """Measure the grid; returns the BENCH_ensemble payload."""
    config = QUICK_CONFIG if quick else BENCH_CONFIG
    replica_counts = QUICK_REPLICAS if quick else BENCH_REPLICAS
    warmup = ExperimentConfig(regions=64, lines_per_region=2, seed=2019)
    for engine in ("fluid-batched", "fluid-ensemble"):
        _study(engine, warmup, 4, "max-we")  # untimed warm-up

    cells = {}
    all_identical = True
    for replicas in replica_counts:
        for scheme in BENCH_SCHEMES:
            cell = _measure_cell(config, scheme, replicas, reps)
            cells[f"{scheme}@{replicas}"] = cell
            all_identical = all_identical and cell["identical"]

    headline = cells[f"max-we@{replica_counts[-1]}"]
    return {
        "bench": "ensemble",
        "description": "fluid-ensemble trial-stacked Monte-Carlo dispatch vs "
        "per-task fluid-batched dispatch under UAA, interleaved min-of-reps "
        "per (scheme, replicas) cell",
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "quick": quick,
        "reps": reps,
        "config": {
            "regions": config.regions,
            "lines_per_region": config.lines_per_region,
            "lines": config.regions * config.lines_per_region,
            "q": config.q,
            "endurance_model": config.endurance_model,
            "seed": config.seed,
        },
        "attack": "uaa",
        "cells": cells,
        "headline": {
            "cell": f"max-we@{replica_counts[-1]}",
            "speedup": headline["speedup"],
            "per_task_ms_per_replica": headline["per_task_ms_per_replica"],
            "ensemble_ms_per_replica": headline["ensemble_ms_per_replica"],
            "required_speedup": REQUIRED_SPEEDUP,
        },
        "results_identical": all_identical,
    }


def emit(payload: dict) -> Path:
    """Write the payload under benchmarks/results/ with a root copy."""
    return emit_bench("ensemble", payload)


def test_ensemble_speedup_bench():
    """Pytest entry point: every grid cell must be bit-identical between
    dispatches and the headline cell must clear the speedup bar; emits
    BENCH_ensemble.json as a side effect."""
    payload = run_bench()
    emit(payload)
    assert payload["results_identical"], payload["cells"]
    assert payload["headline"]["speedup"] >= REQUIRED_SPEEDUP


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller device and grid (CI smoke; gates on bit-identity only)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=2,
        help="interleaved repetitions per leg; the minimum is reported",
    )
    args = parser.parse_args()
    payload = run_bench(quick=args.quick, reps=args.reps)
    target = emit(payload)
    print(json.dumps(payload, indent=2))
    print(f"[saved to {target}]")
    if not payload["results_identical"]:
        print("DISPATCH DIVERGENCE DETECTED", flush=True)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
