"""The chaos conductor: live topology, scripted faults, convergence check.

:class:`ChaosConductor` runs one :class:`~repro.chaos.scenario.Scenario`
end to end:

1. compute the **clean reference** -- a fault-free, serial, in-process
   :func:`~repro.sim.batch.run_batch` body per tenant batch (the
   conductor strips any ambient ``REPRO_FAULT_SPEC`` first; faults
   apply only to the system under test);
2. start ``python -m repro.service`` as a subprocess on a scratch state
   dir, with the scenario's fault spec in its environment;
3. submit every tenant's batch;
4. execute the step list -- seeded-jittered delays, then SIGKILL /
   SIGTERM / restart / probe actions against the live process;
5. ensure a final incarnation is listening, wait for every job to
   converge, and assert each served body is **byte-identical** to its
   clean reference;
6. evaluate the scenario's ``expect`` block against the final metrics
   manifest (counter floors, drain exit codes, orphaned-lease gauge).

Everything observed lands in a :class:`ChaosReport` plus ``chaos.*``
counters on the conductor's own registry, so ``--metrics-out`` emits a
manifest carrying both the chaos bookkeeping and the final service
counters (``fabric.coordinator_restarts`` et al.).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, sleep
from typing import Callable, Dict, List, Optional

from repro.chaos.scenario import SERVICE_FLAGS, Scenario
from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import build_manifest, write_metrics
from repro.service.client import ServiceClient, ServiceError
from repro.sim.batch import run_batch
from repro.sim.config import ExperimentConfig
from repro.sim.faults import FAULT_SPEC_ENV

#: Seconds a fresh incarnation gets to answer its health probe.
STARTUP_DEADLINE_SECONDS: float = 30.0

#: Read timeout used when *sampling* an event stream (the stream of an
#: unfinished job never closes; a short timeout turns "no more events
#: right now" into a clean return instead of a hang).
SAMPLE_READ_TIMEOUT_SECONDS: float = 0.4


@dataclass
class ChaosReport:
    """Everything one scenario run observed, plus the verdict."""

    scenario: str
    ok: bool = False
    failures: List[str] = field(default_factory=list)
    jobs: List[dict] = field(default_factory=list)
    exit_codes: List[dict] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    chaos: Dict[str, float] = field(default_factory=dict)
    state_dir: str = ""

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "failures": list(self.failures),
            "jobs": list(self.jobs),
            "exit_codes": list(self.exit_codes),
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "chaos": dict(self.chaos),
            "state_dir": self.state_dir,
        }


def _free_port() -> int:
    """A currently-free TCP port (kept stable across restarts)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class ChaosConductor:
    """Run one scenario against a live service topology."""

    def __init__(
        self,
        scenario: Scenario,
        *,
        root: "str | Path | None" = None,
        python: str = sys.executable,
        registry: Optional[MetricsRegistry] = None,
        echo: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.scenario = scenario
        self.python = python
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._echo = echo or (lambda line: None)
        self._root = Path(root) if root is not None else None
        self._scratch: Optional[tempfile.TemporaryDirectory] = None
        self._process: Optional[subprocess.Popen] = None
        self._logs: List[object] = []
        self._generation = 0
        self._port = 0
        self._state_dir: Optional[Path] = None
        self._job_ids: List[dict] = []  # {"job_id", "tenant_index"}
        self._exit_codes: List[dict] = []
        # Counters are per-process and die with their incarnation, so
        # the report sums them across incarnations.  Each incarnation
        # gets a ``--metrics-out`` file the service writes on graceful
        # exit (exact for drains); for abrupt deaths the conductor falls
        # back to the last snapshot it sampled over HTTP just before
        # sending the kill.  (A kill -9 still loses whatever merged
        # after that sample -- exactly what a real crash loses.)
        self._dead_counters: Dict[str, float] = {}
        self._dead_gauges: Dict[str, float] = {}
        self._live_sample: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Public entry
    # ------------------------------------------------------------------

    def run(self) -> ChaosReport:
        """Execute the scenario; never raises for an *assertion* failure
        (those land in the report), only for harness-level breakage."""
        scenario = self.scenario
        report = ChaosReport(scenario=scenario.name)
        # The conductor's own process must stay fault-free: the clean
        # reference below and any in-process batch work would otherwise
        # inherit ambient faults meant for the system under test.
        inherited_spec = os.environ.pop(FAULT_SPEC_ENV, None)
        if self._root is None:
            self._scratch = tempfile.TemporaryDirectory(prefix="repro-chaos-")
            self._root = Path(self._scratch.name)
        self._state_dir = self._root / "state"
        report.state_dir = str(self._state_dir)
        self._port = _free_port()
        deadline = monotonic() + scenario.deadline
        try:
            self._echo(f"[chaos] scenario {scenario.name!r} (seed {scenario.seed})")
            references = self._clean_references()
            self._start_incarnation()
            self._wait_healthy(report)
            if report.failures:
                return self._finish(report)
            self._submit_all(report)
            if report.failures:
                return self._finish(report)
            self._execute_steps(report, deadline)
            self._ensure_running(report)
            if report.failures:
                return self._finish(report)
            self._converge(report, references, deadline)
            self._evaluate_expectations(report)
            return self._finish(report)
        finally:
            self._teardown()
            if inherited_spec is not None:
                os.environ[FAULT_SPEC_ENV] = inherited_spec

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------

    def _client(self, *, read_timeout: Optional[float] = None) -> ServiceClient:
        return ServiceClient(
            port=self._port,
            timeout=30.0,
            connect_timeout=5.0,
            read_timeout=read_timeout,
            retries=3,
        )

    def _start_incarnation(self) -> None:
        generation = self._generation
        self._generation += 1
        log_path = self._root / f"service-{generation}.log"
        log = open(log_path, "ab")
        self._logs.append(log)
        command = [
            self.python, "-m", "repro.service",
            "--port", str(self._port),
            "--state-dir", str(self._state_dir),
            "--metrics-out", str(self._manifest_path(generation)),
        ]
        for name, flag in SERVICE_FLAGS.items():
            if name in self.scenario.service:
                command += [flag, str(self.scenario.service[name])]
        env = dict(os.environ)
        if self.scenario.faults:
            env[FAULT_SPEC_ENV] = self.scenario.faults
        else:
            env.pop(FAULT_SPEC_ENV, None)
        self._process = subprocess.Popen(
            command, stdout=log, stderr=subprocess.STDOUT, env=env
        )
        self._echo(
            f"[chaos] incarnation {generation} up "
            f"(pid {self._process.pid}, port {self._port})"
        )

    def _wait_healthy(self, report: ChaosReport) -> None:
        client = self._client()
        start = monotonic()
        while monotonic() - start < STARTUP_DEADLINE_SECONDS:
            code = self._process.poll()
            if code is not None:
                report.failures.append(
                    f"incarnation {self._generation - 1} exited {code} "
                    f"before becoming healthy"
                )
                return
            if client.healthz():
                return
            sleep(0.2)
        report.failures.append(
            f"incarnation {self._generation - 1} never became healthy"
        )

    def _manifest_path(self, generation: int) -> Path:
        return self._root / f"manifest-{generation}.jsonl"

    def _record_exit(self, cause: str) -> int:
        code = self._process.wait()
        generation = self._generation - 1
        self._exit_codes.append(
            {"generation": generation, "cause": cause, "exit_code": code}
        )
        # The incarnation's exit-time manifest file (exact, written on
        # graceful shutdown) beats whatever we last sampled over HTTP.
        counters, gauges = self._read_manifest_file(generation)
        if counters is None:
            counters = self._live_sample
        for name, value in counters.items():
            self._dead_counters[name] = self._dead_counters.get(name, 0) + value
        if gauges:
            self._dead_gauges.update(gauges)
        self._live_sample = {}
        return code

    def _read_manifest_file(
        self, generation: int
    ) -> "tuple[Optional[Dict[str, float]], Dict[str, float]]":
        """Parse the counters/gauges a dead incarnation left on disk."""
        counters: Optional[Dict[str, float]] = None
        gauges: Dict[str, float] = {}
        try:
            lines = self._manifest_path(generation).read_text().splitlines()
        except OSError:
            return None, gauges  # abrupt death: no manifest was written
        for line in lines:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("kind") == "counter":
                if counters is None:
                    counters = {}
                counters[record["name"]] = record["value"]
            elif record.get("kind") == "gauge":
                gauges[record["name"]] = record["value"]
        return counters, gauges

    def _sample_counters(self) -> None:
        """Best-effort snapshot of the live incarnation's counters."""
        probe = ServiceClient(
            port=self._port, timeout=2.0, connect_timeout=1.0, retries=0
        )
        try:
            manifest = probe.metrics()
        except (OSError, ServiceError, ValueError):
            return
        self._live_sample = dict(manifest.get("counters", {}))

    def _ensure_running(self, report: ChaosReport) -> None:
        """A converging topology needs *someone* listening at the end."""
        if self._process.poll() is None:
            return
        self.metrics.inc("chaos.restarts")
        self._start_incarnation()
        self._wait_healthy(report)

    def _teardown(self) -> None:
        if self._process is not None and self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait()
        for log in self._logs:
            try:
                log.close()
            except OSError:
                pass
        if self._scratch is not None:
            self._scratch.cleanup()
            self._scratch = None

    # ------------------------------------------------------------------
    # Reference + submission
    # ------------------------------------------------------------------

    def _clean_references(self) -> Dict[int, str]:
        """Fault-free serial ``run_batch`` body per distinct tenant batch."""
        scenario = self.scenario
        engine = str(scenario.service.get("engine", "fluid-batched"))
        references: Dict[int, str] = {}
        bodies: Dict[str, str] = {}
        for index in range(scenario.tenants):
            specs = scenario.tenant_specs(index)
            key = json.dumps(specs, sort_keys=True)
            if key not in bodies:
                bodies[key] = run_batch(
                    specs, ExperimentConfig(**scenario.config), engine=engine
                ).to_json()
            references[index] = bodies[key]
        self._echo(
            f"[chaos] clean reference computed "
            f"({len(bodies)} distinct batch(es), {scenario.tenants} tenant(s))"
        )
        return references

    def _submit_all(self, report: ChaosReport) -> None:
        client = self._client()
        for index in range(self.scenario.tenants):
            try:
                document = client.submit(
                    self.scenario.tenant_specs(index),
                    self.scenario.config,
                    tenant=self.scenario.tenant_name(index),
                )
            except (OSError, ServiceError) as error:
                report.failures.append(
                    f"submit for tenant {index} failed: {error}"
                )
                return
            self._job_ids.append(
                {"job_id": document["job_id"], "tenant_index": index}
            )
            self.metrics.inc("chaos.jobs")
        self._echo(f"[chaos] submitted {len(self._job_ids)} job(s)")

    # ------------------------------------------------------------------
    # Step execution
    # ------------------------------------------------------------------

    def _execute_steps(self, report: ChaosReport, deadline: float) -> None:
        for index, step in enumerate(self.scenario.steps):
            delay = self.scenario.step_delay(index)
            if delay:
                sleep(min(delay, max(deadline - monotonic(), 0.0)))
            self.metrics.inc("chaos.steps")
            self._echo(f"[chaos] step {index}: {step.action}")
            if step.action == "sleep":
                continue
            if step.action == "sigkill":
                if self._process.poll() is None:
                    self._sample_counters()
                    os.kill(self._process.pid, signal.SIGKILL)
                    self.metrics.inc("chaos.kills")
                self._record_exit("sigkill")
            elif step.action == "sigterm":
                if self._process.poll() is None:
                    self._sample_counters()
                    self._process.send_signal(signal.SIGTERM)
                    self.metrics.inc("chaos.sigterms")
            elif step.action == "await-exit":
                # Keep sampling while the drain runs: work finishing
                # during it merges counters the exit would otherwise lose.
                stop = monotonic() + step.timeout
                while self._process.poll() is None and monotonic() < stop:
                    self._sample_counters()
                    sleep(0.1)
                if self._process.poll() is None:
                    report.failures.append(
                        f"step {index}: incarnation {self._generation - 1} "
                        f"still alive {step.timeout:g}s after signal"
                    )
                    return
                self._record_exit("await-exit")
            elif step.action == "restart":
                if self._process.poll() is None:
                    # A restart of a live process is an implicit kill -9:
                    # the scenario wants a fresh incarnation *now*.
                    self._sample_counters()
                    os.kill(self._process.pid, signal.SIGKILL)
                    self.metrics.inc("chaos.kills")
                    self._record_exit("restart-kill")
                self.metrics.inc("chaos.restarts")
                self._start_incarnation()
                self._wait_healthy(report)
                if report.failures:
                    return
            elif step.action == "await-events":
                if not self._await_events(step.count, step.timeout, deadline):
                    report.failures.append(
                        f"step {index}: fewer than {step.count} result "
                        f"event(s) after {step.timeout:g}s"
                    )
                    return
            elif step.action == "submit-probe":
                self._submit_probe()

    def _await_events(
        self, count: int, timeout: float, deadline: float
    ) -> bool:
        """Block until >= ``count`` per-spec ``result`` events streamed
        across all submitted jobs (the signal that work is genuinely
        mid-flight, mirroring the service smoke's kill trigger)."""
        sampler = self._client(read_timeout=SAMPLE_READ_TIMEOUT_SECONDS)
        stop = min(monotonic() + timeout, deadline)
        while monotonic() < stop:
            total = 0
            for entry in self._job_ids:
                total += self._result_events(sampler, entry["job_id"])
                if total >= count:
                    return True
            sleep(0.2)
        return False

    @staticmethod
    def _result_events(sampler: ServiceClient, job_id: str) -> int:
        """How many ``result`` events the job has emitted so far."""
        total = 0
        try:
            for event in sampler.stream_events(job_id):
                if event.get("event") == "result":
                    total += 1
        except (OSError, ServiceError):
            pass  # short read timeout / restart gap: count what we saw
        return total

    def _submit_probe(self) -> None:
        """One extra submission whose *outcome* is the observation.

        During a drain it should see 503 (+ Retry-After); against a dead
        process, a connection error; against a healthy successor it is
        simply admitted (and, sharing tenant 0's batch, coalesces)."""
        probe = ServiceClient(
            port=self._port, timeout=5.0, connect_timeout=2.0, retries=0
        )
        try:
            document = probe.submit(
                self.scenario.tenant_specs(0),
                self.scenario.config,
                tenant="chaos-probe",
            )
        except ServiceError as error:
            if error.status == 503:
                self.metrics.inc("chaos.probes_503")
                self._echo(
                    "[chaos] probe rejected 503 "
                    f"(Retry-After {error.retry_after})"
                )
            else:
                self.metrics.inc("chaos.probes_rejected")
            return
        except OSError:
            self.metrics.inc("chaos.probes_refused")
            return
        self.metrics.inc("chaos.probes_accepted")
        self._job_ids.append(
            {"job_id": document["job_id"], "tenant_index": 0}
        )

    # ------------------------------------------------------------------
    # Convergence + verdict
    # ------------------------------------------------------------------

    def _converge(
        self,
        report: ChaosReport,
        references: Dict[int, str],
        deadline: float,
    ) -> None:
        client = self._client()
        for entry in self._job_ids:
            job_id = entry["job_id"]
            budget = max(deadline - monotonic(), 1.0)
            try:
                document = client.wait(job_id, timeout=budget)
            except TimeoutError:
                report.failures.append(f"job {job_id} never converged")
                report.jobs.append({**entry, "status": "timeout", "match": False})
                continue
            except (OSError, ServiceError) as error:
                report.failures.append(f"job {job_id} unreachable: {error}")
                report.jobs.append({**entry, "status": "lost", "match": False})
                continue
            if document["status"] != "done":
                report.failures.append(
                    f"job {job_id} ended {document['status']}: "
                    f"{document.get('error')}"
                )
                report.jobs.append(
                    {**entry, "status": document["status"], "match": False}
                )
                continue
            body = client.results(job_id)
            match = body == references[entry["tenant_index"]]
            report.jobs.append({**entry, "status": "done", "match": match})
            if match:
                self.metrics.inc("chaos.matches")
            else:
                self.metrics.inc("chaos.mismatches")
                report.failures.append(
                    f"job {job_id} body is NOT byte-identical to the "
                    f"clean reference"
                )
        try:
            manifest = client.metrics()
            live = dict(manifest.get("counters", {}))
            live_gauges = dict(manifest.get("gauges", {}))
        except (OSError, ServiceError) as error:
            live, live_gauges = dict(self._live_sample), {}
            report.failures.append(f"final manifest unreachable: {error}")
        # Whole-experiment counters: dead incarnations' totals plus the
        # survivor's manifest (each incarnation counts from zero).
        # Gauges are last-observation-wins: an idle final incarnation
        # (everything already converged) inherits its predecessors'.
        report.counters = dict(self._dead_counters)
        for name, value in live.items():
            report.counters[name] = report.counters.get(name, 0) + value
        report.gauges = {**self._dead_gauges, **live_gauges}

    def _evaluate_expectations(self, report: ChaosReport) -> None:
        expect = self.scenario.expect
        for name, floor in dict(expect.get("min_counters", {})).items():
            have = report.counters.get(name, 0)
            if have < floor:
                report.failures.append(
                    f"counter {name} = {have:g}, expected >= {floor:g}"
                )
        if expect.get("drain_exit_zero"):
            drained = [
                entry for entry in self._exit_codes
                if entry["cause"] == "await-exit"
            ]
            if not drained:
                report.failures.append(
                    "expect.drain_exit_zero set but no incarnation was "
                    "drained (no await-exit step ran)"
                )
            for entry in drained:
                if entry["exit_code"] != 0:
                    report.failures.append(
                        f"drained incarnation {entry['generation']} exited "
                        f"{entry['exit_code']}, expected 0"
                    )
        ceiling = expect.get("max_active_leases")
        if ceiling is not None:
            value = report.gauges.get("fabric.active_leases")
            if value is None:
                report.failures.append(
                    "fabric.active_leases gauge missing from the final "
                    "manifest (no fabric batch ran to completion?)"
                )
            elif value > ceiling:
                report.failures.append(
                    f"fabric.active_leases = {value:g} -- orphaned leases "
                    f"survived recovery (expected <= {ceiling:g})"
                )

    def _finish(self, report: ChaosReport) -> ChaosReport:
        report.exit_codes = list(self._exit_codes)
        report.ok = not report.failures
        self.metrics.inc("chaos.scenarios")
        if not report.ok:
            self.metrics.inc("chaos.failures", len(report.failures))
        self.metrics.gauge("chaos.converged", 1.0 if report.ok else 0.0)
        # Fold the final service counters into the conductor registry so
        # a --metrics-out manifest carries chaos.* AND the control-plane
        # story (fabric.coordinator_restarts, service.drains, ...).
        self.metrics.merge_snapshot(
            {"counters": report.counters, "gauges": report.gauges}
        )
        report.chaos = {
            name: value
            for name, value in self.metrics.snapshot()["counters"].items()
            if name.startswith("chaos.")
        }
        self._echo(
            f"[chaos] {report.scenario}: "
            + ("OK" if report.ok else f"FAILED ({len(report.failures)})")
        )
        return report

    # ------------------------------------------------------------------
    # Manifest output
    # ------------------------------------------------------------------

    def write_manifest(self, path: "str | Path", report: ChaosReport) -> Path:
        """Emit the conductor's metrics manifest (JSONL, torn-write safe)."""
        snapshot = self.metrics.snapshot()
        manifest = build_manifest(
            self.metrics,
            command="chaos",
            config=self.scenario.to_dict(),
            extra={
                "scenario": report.scenario,
                "ok": report.ok,
                "counters": snapshot["counters"],
                "gauges": snapshot["gauges"],
            },
        )
        return write_metrics(path, self.metrics, manifest)
