"""Scripted chaos harness for the control plane.

Runs declarative fault scenarios -- kill, drain, and restart any
component at seeded instants while tenants' batches are in flight --
against a *live* ``python -m repro.service`` topology, then asserts the
survivors' result bodies are byte-identical to a fault-free serial
:func:`~repro.sim.batch.run_batch` of the same specs.

* :mod:`repro.chaos.scenario` -- the JSON scenario grammar, validation,
  and the builtin scenario library.
* :mod:`repro.chaos.conductor` -- the conductor that provisions the
  topology, executes steps, and produces a :class:`ChaosReport`.
* ``python -m repro.chaos`` -- CLI entry (see :mod:`repro.chaos.__main__`).

The determinism guarantee under test: every simulated result is a pure
function of (spec, config, seed), and every crash-recovery path in the
stack (coordinator ledger replay, worker reconnect, service resume,
drain) preserves that function -- so *when* a component dies must never
change *what* the batch computes.
"""

from repro.chaos.conductor import ChaosConductor, ChaosReport
from repro.chaos.scenario import (
    BUILTIN_SCENARIOS,
    Scenario,
    ScenarioError,
    Step,
    builtin_scenario,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "ChaosConductor",
    "ChaosReport",
    "Scenario",
    "ScenarioError",
    "Step",
    "builtin_scenario",
]
