"""``python -m repro.chaos`` -- run scripted chaos scenarios.

Examples::

    python -m repro.chaos --list
    python -m repro.chaos --builtin coordinator-kill
    python -m repro.chaos --builtin combined --metrics-out chaos.jsonl
    python -m repro.chaos --scenario my-scenario.json --state-dir /tmp/x
    python -m repro.chaos --all

Exit status is 0 when every scenario converged (all result bodies
byte-identical to the fault-free reference and every ``expect``
assertion held), 1 otherwise.  ``--show`` prints a builtin's JSON --
the starting point for writing custom scenario files.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.chaos.conductor import ChaosConductor
from repro.chaos.scenario import (
    BUILTIN_SCENARIOS,
    Scenario,
    ScenarioError,
    builtin_scenario,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="scripted chaos harness for the service/fabric control plane",
    )
    what = parser.add_mutually_exclusive_group(required=True)
    what.add_argument(
        "--builtin", choices=sorted(BUILTIN_SCENARIOS),
        help="run one builtin scenario",
    )
    what.add_argument(
        "--scenario", metavar="FILE", help="run a scenario JSON file"
    )
    what.add_argument(
        "--all", action="store_true", help="run every builtin scenario"
    )
    what.add_argument(
        "--list", action="store_true", help="list builtin scenarios"
    )
    what.add_argument(
        "--show", metavar="NAME", choices=sorted(BUILTIN_SCENARIOS),
        help="print a builtin scenario's JSON and exit",
    )
    parser.add_argument(
        "--state-dir", default=None,
        help="scratch root (default: fresh temp dir, removed afterwards)",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the conductor's metrics manifest (JSONL) here",
    )
    parser.add_argument(
        "--report-out", default=None,
        help="write the full JSON report(s) here",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for name, payload in sorted(BUILTIN_SCENARIOS.items()):
            scenario = Scenario.from_dict(payload)
            print(
                f"{name}: {scenario.tenants} tenant(s), "
                f"{len(scenario.steps)} step(s), "
                f"backend {scenario.service.get('backend', 'pool')}"
                + (f", faults '{scenario.faults}'" if scenario.faults else "")
            )
        return 0
    if args.show:
        print(json.dumps(BUILTIN_SCENARIOS[args.show], indent=2))
        return 0

    try:
        if args.all:
            scenarios = [builtin_scenario(name) for name in sorted(BUILTIN_SCENARIOS)]
        elif args.builtin:
            scenarios = [builtin_scenario(args.builtin)]
        else:
            scenarios = [Scenario.load(args.scenario)]
    except ScenarioError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    echo = (lambda line: None) if args.quiet else lambda line: print(line, flush=True)
    reports: List[dict] = []
    ok = True
    for scenario in scenarios:
        conductor = ChaosConductor(scenario, root=args.state_dir, echo=echo)
        report = conductor.run()
        reports.append(report.to_dict())
        ok = ok and report.ok
        for failure in report.failures:
            print(f"[chaos] FAIL {scenario.name}: {failure}", file=sys.stderr)
        if args.metrics_out:
            path = args.metrics_out
            if len(scenarios) > 1:
                # One manifest per scenario: name-suffix the stem.
                from pathlib import Path

                base = Path(args.metrics_out)
                path = base.with_name(f"{base.stem}-{scenario.name}{base.suffix}")
            conductor.write_manifest(path, report)
    if args.report_out:
        from pathlib import Path

        Path(args.report_out).write_text(json.dumps(reports, indent=2) + "\n")
    print(
        f"[chaos] {sum(1 for r in reports if r['ok'])}/{len(reports)} "
        f"scenario(s) converged"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
