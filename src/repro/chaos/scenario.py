"""Declarative chaos scenarios: grammar, validation, builtin library.

A scenario is a plain JSON object (loadable from a file via
:meth:`Scenario.load`) describing one chaos experiment end to end::

    {
      "name": "coordinator-kill",
      "seed": 101,
      "tenants": 2,
      "p_stride": 0.001,
      "specs": [{"label": "s0", "attack": "bpa", "p": 0.02}, ...],
      "config": {"regions": 2048, "lines_per_region": 16},
      "faults": "coordinator-crash=0.35,seed=101",
      "service": {"backend": "fabric", "jobs": 2, "dispatchers": 1},
      "steps": [
        {"action": "await-events", "count": 2},
        {"action": "sigkill", "after": 0.2},
        {"action": "restart"}
      ],
      "expect": {"min_counters": {"fabric.coordinator_restarts": 1}}
    }

Fields
------
``tenants`` / ``p_stride``
    Each tenant ``i`` submits the ``specs`` template with every spec's
    ``p`` shifted by ``i * p_stride`` -- a stride of 0 makes every
    tenant submit the *same* batch (exercising dedup/coalescing under
    chaos), a positive stride gives each tenant a distinct batch.
``faults``
    A :mod:`repro.sim.faults` spec string exported to the service
    process as ``REPRO_FAULT_SPEC``.  This is how *intra-process*
    chaos rides along: ``coordinator-crash`` / ``service-kill`` /
    ``crash`` roll deterministically inside the service while the
    step list drives *process-level* kills from outside.  The
    conductor itself always computes its clean reference with faults
    off, whatever the ambient environment says.
``steps``
    Executed in order; each step waits its (seeded-jittered) ``after``
    delay first.  Actions: ``sleep``, ``sigkill``, ``sigterm``,
    ``await-exit``, ``restart``, ``await-events`` (block until at
    least ``count`` per-spec ``result`` events have streamed across
    all submitted jobs), ``submit-probe`` (one extra submission whose
    outcome -- accepted / 503 / connection refused -- is recorded,
    never asserted fatal).
``expect``
    Post-convergence assertions on top of the always-on byte-identity
    check: ``min_counters`` (manifest counter floors),
    ``drain_exit_zero`` (every SIGTERMed incarnation must exit 0),
    ``max_active_leases`` (ceiling on the ``fabric.active_leases``
    gauge -- 0 means no orphaned leases survived recovery).

Determinism: the only randomness is the seeded jitter on step delays
(``sha256(seed, step index)``), so a scenario file replays the same
schedule every run; the faults inside the service are deterministic
per (seed, task key, attempt) by construction.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

#: Step actions the conductor knows how to execute.
ACTIONS: Tuple[str, ...] = (
    "sleep",
    "sigkill",
    "sigterm",
    "await-exit",
    "restart",
    "await-events",
    "submit-probe",
)

#: ``service`` keys -> ``python -m repro.service`` flags.
SERVICE_FLAGS: Dict[str, str] = {
    "backend": "--backend",
    "jobs": "--jobs",
    "dispatchers": "--dispatchers",
    "engine": "--engine",
    "max_queued": "--max-queued",
    "max_concurrent": "--max-concurrent",
    "drain_timeout": "--drain-timeout",
}

_EXPECT_KEYS = {"min_counters", "drain_exit_zero", "max_active_leases"}
_SCENARIO_KEYS = {
    "name", "seed", "tenants", "p_stride", "specs", "config", "faults",
    "service", "steps", "expect", "jitter", "deadline",
}
_STEP_KEYS = {"action", "after", "count", "timeout"}


class ScenarioError(ValueError):
    """A scenario document failed validation."""


@dataclass(frozen=True)
class Step:
    """One scheduled action against the live topology."""

    action: str
    after: float = 0.0
    count: int = 0
    timeout: float = 60.0

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ScenarioError(
                f"unknown action {self.action!r}; choose from {ACTIONS}"
            )
        if self.after < 0:
            raise ScenarioError(f"step 'after' must be >= 0, got {self.after}")
        if self.timeout <= 0:
            raise ScenarioError(f"step 'timeout' must be > 0, got {self.timeout}")
        if self.action == "await-events" and self.count < 1:
            raise ScenarioError("'await-events' needs a 'count' >= 1")

    @classmethod
    def from_dict(cls, payload: dict) -> "Step":
        if not isinstance(payload, dict):
            raise ScenarioError(f"step must be an object, got {payload!r}")
        unknown = set(payload) - _STEP_KEYS
        if unknown:
            raise ScenarioError(f"unknown step fields {sorted(unknown)}")
        if "action" not in payload:
            raise ScenarioError(f"step missing 'action': {payload!r}")
        try:
            return cls(
                action=str(payload["action"]),
                after=float(payload.get("after", 0.0)),
                count=int(payload.get("count", 0)),
                timeout=float(payload.get("timeout", 60.0)),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, ScenarioError):
                raise
            raise ScenarioError(f"bad step {payload!r}: {error}") from error

    def to_dict(self) -> dict:
        payload: dict = {"action": self.action}
        if self.after:
            payload["after"] = self.after
        if self.count:
            payload["count"] = self.count
        if self.timeout != 60.0:
            payload["timeout"] = self.timeout
        return payload


@dataclass(frozen=True)
class Scenario:
    """One validated chaos experiment (see module docstring)."""

    name: str
    specs: Tuple[dict, ...]
    config: Dict[str, object] = field(default_factory=dict)
    steps: Tuple[Step, ...] = ()
    seed: int = 0
    tenants: int = 1
    p_stride: float = 0.0
    faults: str = ""
    service: Dict[str, object] = field(default_factory=dict)
    expect: Dict[str, object] = field(default_factory=dict)
    jitter: float = 0.2
    deadline: float = 180.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenario needs a non-empty 'name'")
        if not self.specs:
            raise ScenarioError("scenario needs a non-empty 'specs' list")
        if self.tenants < 1:
            raise ScenarioError(f"'tenants' must be >= 1, got {self.tenants}")
        if self.p_stride < 0:
            raise ScenarioError(f"'p_stride' must be >= 0, got {self.p_stride}")
        if not 0 <= self.jitter <= 1:
            raise ScenarioError(f"'jitter' must be in [0, 1], got {self.jitter}")
        if self.deadline <= 0:
            raise ScenarioError(f"'deadline' must be > 0, got {self.deadline}")
        unknown = set(self.service) - set(SERVICE_FLAGS)
        if unknown:
            raise ScenarioError(
                f"unknown service fields {sorted(unknown)}; "
                f"choose from {sorted(SERVICE_FLAGS)}"
            )
        unknown = set(self.expect) - _EXPECT_KEYS
        if unknown:
            raise ScenarioError(
                f"unknown expect fields {sorted(unknown)}; "
                f"choose from {sorted(_EXPECT_KEYS)}"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    def step_delay(self, index: int) -> float:
        """The seeded-jittered pre-delay of step ``index``.

        ``after * (1 + jitter * u)`` with ``u`` drawn deterministically
        from ``sha256(seed, index)`` -- replaying a scenario replays its
        exact schedule, while distinct seeds explore distinct timings.
        """
        base = self.steps[index].after
        if base <= 0 or self.jitter <= 0:
            return max(base, 0.0)
        digest = hashlib.sha256(f"{self.seed}:step:{index}".encode()).digest()
        u = int.from_bytes(digest[:8], "little") / 2**64
        return base * (1.0 + self.jitter * u)

    def tenant_name(self, index: int) -> str:
        return f"tenant-{index}"

    def tenant_specs(self, index: int) -> List[dict]:
        """The specs tenant ``index`` submits (``p`` shifted by stride)."""
        shift = index * self.p_stride
        out = []
        for spec in self.specs:
            spec = dict(spec)
            if shift and "p" in spec:
                spec["p"] = spec["p"] + shift
            out.append(spec)
        return out

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    @classmethod
    def from_dict(cls, payload: dict) -> "Scenario":
        if not isinstance(payload, dict):
            raise ScenarioError("scenario must be a JSON object")
        unknown = set(payload) - _SCENARIO_KEYS
        if unknown:
            raise ScenarioError(f"unknown scenario fields {sorted(unknown)}")
        raw_steps = payload.get("steps", [])
        if not isinstance(raw_steps, list):
            raise ScenarioError("'steps' must be a list")
        raw_specs = payload.get("specs", [])
        if not isinstance(raw_specs, list):
            raise ScenarioError("'specs' must be a list")
        try:
            return cls(
                name=str(payload.get("name", "")),
                specs=tuple(dict(spec) for spec in raw_specs),
                config=dict(payload.get("config", {})),
                steps=tuple(Step.from_dict(step) for step in raw_steps),
                seed=int(payload.get("seed", 0)),
                tenants=int(payload.get("tenants", 1)),
                p_stride=float(payload.get("p_stride", 0.0)),
                faults=str(payload.get("faults", "")),
                service=dict(payload.get("service", {})),
                expect=dict(payload.get("expect", {})),
                jitter=float(payload.get("jitter", 0.2)),
                deadline=float(payload.get("deadline", 180.0)),
            )
        except (TypeError, ValueError) as error:
            if isinstance(error, ScenarioError):
                raise
            raise ScenarioError(f"bad scenario: {error}") from error

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "tenants": self.tenants,
            "p_stride": self.p_stride,
            "specs": [dict(spec) for spec in self.specs],
            "config": dict(self.config),
            "faults": self.faults,
            "service": dict(self.service),
            "steps": [step.to_dict() for step in self.steps],
            "expect": dict(self.expect),
            "jitter": self.jitter,
            "deadline": self.deadline,
        }

    @classmethod
    def load(cls, path: "str | Path") -> "Scenario":
        """Parse a scenario JSON file."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise ScenarioError(f"cannot load scenario {path}: {error}") from error
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Builtin scenario library
# ----------------------------------------------------------------------

def _sweep(count: int, start: float = 0.02, stride: float = 0.005) -> List[dict]:
    return [
        {"label": f"s{i}", "attack": "bpa", "sparing": "max-we", "p": start + i * stride}
        for i in range(count)
    ]


#: The bounded scenario matrix CI's ``chaos-smoke`` job runs.  Keys are
#: the ``--builtin`` names; values are plain scenario dicts (validated
#: through :meth:`Scenario.from_dict` on access, so the library itself
#: is covered by the grammar).
BUILTIN_SCENARIOS: Dict[str, dict] = {
    # Coordinator dies (simulated crash + ledger-replay restart inside
    # the fabric backend) while two tenants' sweeps are mid-flight.
    "coordinator-kill": {
        "name": "coordinator-kill",
        "seed": 101,
        "tenants": 2,
        "p_stride": 0.001,
        "specs": _sweep(8),
        "config": {"regions": 2048, "lines_per_region": 16},
        "faults": "coordinator-crash=0.35,seed=101",
        "service": {"backend": "fabric", "jobs": 2, "dispatchers": 1},
        "steps": [
            {"action": "await-events", "count": 2, "timeout": 90},
            {"action": "sleep", "after": 0.2},
        ],
        "expect": {
            "min_counters": {"fabric.coordinator_restarts": 1},
            "max_active_leases": 0,
        },
    },
    # SIGTERM mid-batch: the instance must drain (503 new work, finish
    # or checkpoint what it started, persist records, exit 0) and a
    # successor must finish everything it left queued.
    "service-sigterm-drain": {
        "name": "service-sigterm-drain",
        "seed": 7,
        "tenants": 2,
        "p_stride": 0.001,
        "specs": _sweep(8),
        "config": {"regions": 2048, "lines_per_region": 16},
        "service": {"backend": "pool", "jobs": 1, "dispatchers": 1},
        "steps": [
            {"action": "await-events", "count": 2, "timeout": 90},
            {"action": "sigterm"},
            {"action": "submit-probe", "after": 0.2},
            {"action": "await-exit", "timeout": 60},
            {"action": "restart"},
        ],
        "expect": {"drain_exit_zero": True},
    },
    # Everything at once: worker crashes + coordinator crashes riding
    # the fault spec, a kill -9 of the whole service, a restart, then a
    # graceful drain handing off to a final incarnation.
    "combined": {
        "name": "combined",
        "seed": 202,
        "tenants": 2,
        "p_stride": 0.001,
        "specs": _sweep(8),
        "config": {"regions": 2048, "lines_per_region": 16},
        "faults": "crash=0.05,coordinator-crash=0.3,seed=202",
        "service": {"backend": "fabric", "jobs": 2, "dispatchers": 1},
        "steps": [
            {"action": "await-events", "count": 2, "timeout": 90},
            {"action": "sigkill", "after": 0.1},
            {"action": "restart"},
            {"action": "await-events", "count": 2, "timeout": 90},
            {"action": "sigterm"},
            {"action": "await-exit", "timeout": 60},
            {"action": "restart"},
        ],
        "expect": {
            "min_counters": {"fabric.coordinator_restarts": 1},
            "drain_exit_zero": True,
            "max_active_leases": 0,
        },
    },
}


def builtin_scenario(name: str) -> Scenario:
    """The validated builtin scenario called ``name``."""
    try:
        payload = BUILTIN_SCENARIOS[name]
    except KeyError:
        raise ScenarioError(
            f"unknown builtin {name!r}; choose from {sorted(BUILTIN_SCENARIOS)}"
        ) from None
    return Scenario.from_dict(payload)
