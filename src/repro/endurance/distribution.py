"""Domain programming-current distribution (paper Eq. 2, Zhang & Li model).

Zhang & Li (MICRO'09) characterize PCM process variation by dividing the
memory into equal-size *domains* and observing that per-domain programming
currents follow a normal distribution.  The paper instantiates this with a
2 GB PCM split into 512 domains, mean current ``mu = 0.3 mA`` and standard
deviation ``sigma = 0.033 mA``, and notes the strongest domain then endures
roughly 56x more writes than the weakest.

:class:`CurrentDistribution` models the (optionally truncated) normal
current distribution; :class:`ZhangLiModel` composes it with the power law
of Eq. 1 to produce per-domain endurances.  Truncation reflects
manufacture-time screening: domains whose current deviates too far from
nominal are discarded or repaired before shipping, so the shipped
distribution is a truncated normal.  The default truncation of two sigma
reproduces both the paper's headline "lifetime under UAA ≈ 4% of ideal" and
a strongest/weakest spread in the tens-of-X range.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.endurance.powerlaw import PowerLawEnduranceModel
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import require_positive, require_positive_int

#: Paper's domain-current distribution mean (mA).
DEFAULT_MU_MA: float = 0.3

#: Paper's domain-current distribution standard deviation (mA).
DEFAULT_SIGMA_MA: float = 0.033

#: Default manufacture-screening truncation, in sigmas.
DEFAULT_TRUNCATE_SIGMA: float = 2.0

#: Paper's domain count for the 2 GB characterization device.
DEFAULT_DOMAINS: int = 512


@dataclass(frozen=True)
class CurrentDistribution:
    """A (truncated) normal distribution of domain programming currents.

    Parameters
    ----------
    mu_ma:
        Mean programming current in mA.
    sigma_ma:
        Standard deviation in mA.
    truncate_sigma:
        Currents are resampled into ``[mu - k*sigma, mu + k*sigma]``;
        ``None`` disables truncation.  See the module docstring for why the
        shipped distribution is truncated.
    """

    mu_ma: float = DEFAULT_MU_MA
    sigma_ma: float = DEFAULT_SIGMA_MA
    truncate_sigma: float | None = DEFAULT_TRUNCATE_SIGMA

    def __post_init__(self) -> None:
        require_positive(self.mu_ma, "mu_ma")
        require_positive(self.sigma_ma, "sigma_ma")
        if self.truncate_sigma is not None:
            require_positive(self.truncate_sigma, "truncate_sigma")
            if self.mu_ma - self.truncate_sigma * self.sigma_ma <= 0:
                raise ValueError(
                    "truncation window extends to non-positive currents; "
                    "reduce truncate_sigma or sigma_ma"
                )

    @property
    def lower_ma(self) -> float:
        """Smallest shippable current (``-inf`` when untruncated)."""
        if self.truncate_sigma is None:
            return float("-inf")
        return self.mu_ma - self.truncate_sigma * self.sigma_ma

    @property
    def upper_ma(self) -> float:
        """Largest shippable current (``+inf`` when untruncated)."""
        if self.truncate_sigma is None:
            return float("inf")
        return self.mu_ma + self.truncate_sigma * self.sigma_ma

    def sample(self, count: int, rng: RandomState = None) -> np.ndarray:
        """Draw ``count`` domain currents (mA), rejection-sampling the tails."""
        require_positive_int(count, "count")
        generator = ensure_rng(rng)
        currents = generator.normal(self.mu_ma, self.sigma_ma, size=count)
        if self.truncate_sigma is not None:
            out_of_range = (currents < self.lower_ma) | (currents > self.upper_ma)
            while np.any(out_of_range):
                replacement = generator.normal(
                    self.mu_ma, self.sigma_ma, size=int(out_of_range.sum())
                )
                currents[out_of_range] = replacement
                out_of_range = (currents < self.lower_ma) | (currents > self.upper_ma)
        return currents

    def quantile_grid(self, count: int) -> np.ndarray:
        """Deterministic evenly-spaced quantiles of the truncated normal.

        Returns ``count`` currents at the mid-point quantiles
        ``(i + 0.5) / count``.  Useful for noise-free analytic comparisons
        where the sampling variance of :meth:`sample` would obscure shape.
        """
        require_positive_int(count, "count")
        from math import erf, sqrt

        def cdf(x: float) -> float:
            return 0.5 * (1.0 + erf((x - self.mu_ma) / (self.sigma_ma * sqrt(2.0))))

        low = cdf(self.lower_ma) if self.truncate_sigma is not None else 0.0
        high = cdf(self.upper_ma) if self.truncate_sigma is not None else 1.0
        probabilities = low + (np.arange(count) + 0.5) / count * (high - low)
        # Invert the normal CDF with scipy-free bisection on a monotone function.
        return np.array([self._inverse_cdf(p) for p in probabilities])

    def _inverse_cdf(self, probability: float) -> float:
        """Invert the (untruncated) normal CDF by bisection."""
        from math import erf, sqrt

        low = self.mu_ma - 10.0 * self.sigma_ma
        high = self.mu_ma + 10.0 * self.sigma_ma
        for _ in range(80):
            mid = 0.5 * (low + high)
            cdf_mid = 0.5 * (1.0 + erf((mid - self.mu_ma) / (self.sigma_ma * sqrt(2.0))))
            if cdf_mid < probability:
                low = mid
            else:
                high = mid
        return 0.5 * (low + high)


@dataclass(frozen=True)
class ZhangLiModel:
    """Per-domain endurance model: Eq. 2 currents composed with Eq. 1.

    This is the paper's experimental endurance source ("the endurance
    distribution is obtained according to the model of Zhang et al.").

    Parameters
    ----------
    currents:
        Domain programming-current distribution.
    power_law:
        The current-to-endurance power law.
    """

    currents: CurrentDistribution = field(default_factory=CurrentDistribution)
    power_law: PowerLawEnduranceModel = field(default_factory=PowerLawEnduranceModel)

    def domain_endurances(self, domains: int, rng: RandomState = None) -> np.ndarray:
        """Sample one endurance per domain."""
        require_positive_int(domains, "domains")
        sampled = self.currents.sample(domains, rng)
        return np.asarray(self.power_law.endurance(sampled), dtype=float)

    def deterministic_domain_endurances(self, domains: int) -> np.ndarray:
        """Noise-free endurances from the quantile grid (ascending current)."""
        grid = self.currents.quantile_grid(domains)
        return np.asarray(self.power_law.endurance(grid), dtype=float)

    def variation_ratio(self, domains: int = DEFAULT_DOMAINS) -> float:
        """Strongest/weakest endurance ratio for a quantile-grid device.

        With the paper's 512 domains and default truncation this lands in
        the tens-of-X regime the paper reports (their quoted figure is 56x
        for the 2 GB / 512-domain characterization device).
        """
        endurances = self.deterministic_domain_endurances(domains)
        return float(endurances.max() / endurances.min())
