"""The power-law endurance/current relationship (paper Eq. 1).

Equation 1 of the paper:

.. math::

    E(I) = 10^8 \\times (I^2 \\cdot R \\cdot T)^{-6}

where ``I`` is the programming current, ``R`` the cell resistance and ``T``
the write pulse width (both constants).  Because the paper only uses the
*relative* endurance between domains, the absolute scale of ``R * T`` is
free; we choose the default so that a cell programmed at the nominal mean
current ``I = 0.3 mA`` has the canonical PCM endurance of ``1e8`` writes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_positive

#: Nominal mean programming current from the paper's setup (mA).
NOMINAL_CURRENT_MA: float = 0.3

#: Canonical PCM cell endurance at the nominal current (writes).
NOMINAL_ENDURANCE: float = 1e8

#: The power-law exponent on write energy from Eq. 1.
ENERGY_EXPONENT: float = -6.0


@dataclass(frozen=True)
class PowerLawEnduranceModel:
    """Endurance as a power law of programming current (Eq. 1).

    Parameters
    ----------
    scale:
        The ``10^8`` prefactor of Eq. 1.
    resistance_times_pulse:
        The product ``R * T``.  The default normalizes the model so that
        ``endurance(NOMINAL_CURRENT_MA) == scale``, i.e. a nominal cell
        endures ``1e8`` writes; only relative endurance matters downstream.
    exponent:
        The exponent applied to the write energy ``I^2 R T`` (−6 in Eq. 1,
        hence endurance ∝ I^−12).
    """

    scale: float = NOMINAL_ENDURANCE
    resistance_times_pulse: float = 1.0 / (NOMINAL_CURRENT_MA**2)
    exponent: float = ENERGY_EXPONENT

    def __post_init__(self) -> None:
        require_positive(self.scale, "scale")
        require_positive(self.resistance_times_pulse, "resistance_times_pulse")
        if self.exponent >= 0:
            raise ValueError(
                f"exponent must be negative (endurance falls with current), got {self.exponent}"
            )

    def endurance(self, current_ma: "float | np.ndarray") -> "float | np.ndarray":
        """Endurance E(I) for programming current(s) in mA (Eq. 1).

        Accepts a scalar or an array; currents must be strictly positive.
        """
        current = np.asarray(current_ma, dtype=float)
        if np.any(current <= 0):
            raise ValueError("programming current must be strictly positive")
        energy = np.square(current) * self.resistance_times_pulse
        result = self.scale * np.power(energy, self.exponent)
        if np.isscalar(current_ma) or np.ndim(current_ma) == 0:
            return float(result)
        return result

    def current_for_endurance(self, endurance: "float | np.ndarray") -> "float | np.ndarray":
        """Invert Eq. 1: the programming current that yields ``endurance``.

        Used by tests to verify the model is a bijection and by calibration
        utilities that target a given endurance spread.
        """
        target = np.asarray(endurance, dtype=float)
        if np.any(target <= 0):
            raise ValueError("endurance must be strictly positive")
        energy = np.power(target / self.scale, 1.0 / self.exponent)
        current = np.sqrt(energy / self.resistance_times_pulse)
        if np.isscalar(endurance) or np.ndim(endurance) == 0:
            return float(current)
        return current

    @property
    def current_exponent(self) -> float:
        """Effective exponent on current (−12 for the paper's Eq. 1)."""
        return 2.0 * self.exponent
