"""Endurance-map generators.

These compose the distribution models into concrete
:class:`~repro.endurance.emap.EnduranceMap` instances for the simulator.
:func:`zhang_li_endurance_map` is the paper's experimental setup (one
Zhang-Li domain per region); the lognormal and uniform generators exist for
robustness checks -- the evaluation's qualitative conclusions should not
hinge on the exact distribution family, and tests exercise that.
"""

from __future__ import annotations

import numpy as np

from repro.endurance.distribution import ZhangLiModel
from repro.endurance.emap import EnduranceMap
from repro.util.rng import RandomState, derive_rng, ensure_rng
from repro.util.validation import require_positive, require_positive_int


def zhang_li_endurance_map(
    lines: int,
    regions: int,
    *,
    model: ZhangLiModel | None = None,
    intra_region_sigma: float = 0.0,
    deterministic: bool = False,
    rng: RandomState = None,
) -> EnduranceMap:
    """Endurance map from the Zhang-Li process-variation model.

    Each region is one Zhang-Li domain: all its lines share the domain
    endurance (the paper treats region endurance as constant).  Setting
    ``intra_region_sigma`` > 0 additionally applies per-line lognormal
    jitter of that relative magnitude, which makes line-level rescue
    mechanisms (Max-WE's LMT) observable in fine-grained experiments.

    Parameters
    ----------
    lines, regions:
        Device shape; ``regions`` must divide ``lines``.
    model:
        Zhang-Li model instance; defaults to the paper's parameters.
    intra_region_sigma:
        Relative lognormal sigma of per-line jitter within a region.
    deterministic:
        Use the noise-free quantile grid for domain endurances (regions are
        then shuffled in physical space but their endurance multiset is
        exactly the model's quantiles).
    """
    require_positive_int(lines, "lines")
    require_positive_int(regions, "regions")
    if lines % regions != 0:
        raise ValueError(f"regions {regions} must divide lines {lines}")
    if intra_region_sigma < 0:
        raise ValueError(f"intra_region_sigma must be >= 0, got {intra_region_sigma}")

    zl = model if model is not None else ZhangLiModel()
    domain_rng = derive_rng(rng, "zhang-li-domains")
    if deterministic:
        domain_endurance = zl.deterministic_domain_endurances(regions)
        domain_endurance = domain_rng.permutation(domain_endurance)
    else:
        domain_endurance = zl.domain_endurances(regions, domain_rng)

    per_line = np.repeat(domain_endurance, lines // regions)
    if intra_region_sigma > 0.0:
        jitter_rng = derive_rng(rng, "zhang-li-intra")
        jitter = jitter_rng.lognormal(
            mean=-0.5 * intra_region_sigma**2, sigma=intra_region_sigma, size=lines
        )
        per_line = per_line * jitter
    return EnduranceMap(per_line, regions)


def lognormal_endurance_map(
    lines: int,
    regions: int,
    *,
    median: float = 1e8,
    sigma: float = 0.8,
    rng: RandomState = None,
) -> EnduranceMap:
    """Region endurances drawn from a lognormal distribution.

    A common alternative endurance-variation family; used in robustness
    tests to check that scheme *orderings* (Max-WE > PCD/PS > PS-worst) are
    distribution-independent.
    """
    require_positive_int(lines, "lines")
    require_positive_int(regions, "regions")
    if lines % regions != 0:
        raise ValueError(f"regions {regions} must divide lines {lines}")
    require_positive(median, "median")
    require_positive(sigma, "sigma")

    generator = ensure_rng(rng)
    region_endurance = median * generator.lognormal(mean=0.0, sigma=sigma, size=regions)
    return EnduranceMap(np.repeat(region_endurance, lines // regions), regions)


def weibull_endurance_map(
    lines: int,
    regions: int,
    *,
    scale: float = 1e8,
    shape: float = 2.0,
    rng: RandomState = None,
) -> EnduranceMap:
    """Region endurances drawn from a Weibull distribution.

    Weibull lifetimes are the classic reliability-engineering family for
    wear-out failure; ``shape < 1`` gives a heavy weak tail (infant
    mortality), ``shape > 1`` concentrates around the scale.  Used in
    robustness tests alongside the lognormal family.
    """
    require_positive_int(lines, "lines")
    require_positive_int(regions, "regions")
    if lines % regions != 0:
        raise ValueError(f"regions {regions} must divide lines {lines}")
    require_positive(scale, "scale")
    require_positive(shape, "shape")

    generator = ensure_rng(rng)
    region_endurance = scale * generator.weibull(shape, size=regions)
    # Guard the vanishing left tail: a literally-zero endurance line is
    # unphysical (it would fail on its very first write at manufacture).
    floor = scale * 1e-6
    region_endurance = np.maximum(region_endurance, floor)
    return EnduranceMap(np.repeat(region_endurance, lines // regions), regions)


def uniform_endurance_map(lines: int, regions: int, endurance: float = 1e8) -> EnduranceMap:
    """A variation-free map: every line endures exactly ``endurance`` writes.

    Under this map UAA *is* perfect wear-leveling and the normalized
    lifetime is 100% -- a key sanity anchor for the simulator.
    """
    require_positive_int(lines, "lines")
    require_positive_int(regions, "regions")
    if lines % regions != 0:
        raise ValueError(f"regions {regions} must divide lines {lines}")
    require_positive(endurance, "endurance")
    return EnduranceMap(np.full(lines, float(endurance)), regions)
