"""The concrete per-line endurance map consumed by the simulator.

An :class:`EnduranceMap` couples a per-line endurance array with the
device's region structure (the paper's 1 GB bank has 2048 equal-size
regions).  It provides the region-level views every scheme needs:
per-region endurance metrics, endurance-ordered region ranking (the basis
of Max-WE's weak-priority selection) and the total endurance that
normalizes every lifetime the evaluation reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_positive_int


@dataclass(frozen=True)
class EnduranceMap:
    """Per-line endurances plus the region structure of the device.

    Attributes
    ----------
    line_endurance:
        1-D float array; ``line_endurance[i]`` is how many writes physical
        line ``i`` endures before wearing out.  Lines are numbered so that
        region ``r`` owns the contiguous block
        ``[r * lines_per_region, (r+1) * lines_per_region)``.
    regions:
        Number of equal-size regions; must divide the line count.
    """

    line_endurance: np.ndarray
    regions: int

    def __post_init__(self) -> None:
        array = np.asarray(self.line_endurance, dtype=float)
        object.__setattr__(self, "line_endurance", array)
        if array.ndim != 1:
            raise ValueError(f"line_endurance must be 1-D, got shape {array.shape}")
        if array.size == 0:
            raise ValueError("endurance map must contain at least one line")
        if np.any(array <= 0):
            raise ValueError("all line endurances must be strictly positive")
        require_positive_int(self.regions, "regions")
        if array.size % self.regions != 0:
            raise ValueError(
                f"line count {array.size} is not divisible by region count {self.regions}"
            )
        # Freeze the array so schemes cannot silently mutate shared state.
        array.setflags(write=False)

    @property
    def lines(self) -> int:
        """Total number of physical lines."""
        return int(self.line_endurance.size)

    @property
    def lines_per_region(self) -> int:
        """Number of lines in each region."""
        return self.lines // self.regions

    @property
    def total_endurance(self) -> float:
        """Sum of all line endurances (the ideal-lifetime numerator)."""
        return float(self.line_endurance.sum())

    @property
    def min_endurance(self) -> float:
        """``EL`` -- the weakest line's endurance."""
        return float(self.line_endurance.min())

    @property
    def max_endurance(self) -> float:
        """``EH`` -- the strongest line's endurance."""
        return float(self.line_endurance.max())

    @property
    def q_ratio(self) -> float:
        """The paper's process-variation degree ``q = EH / EL``."""
        return self.max_endurance / self.min_endurance

    def region_slice(self, region: int) -> slice:
        """The slice of line indices owned by ``region``."""
        if not 0 <= region < self.regions:
            raise IndexError(f"region {region} out of range [0, {self.regions})")
        per = self.lines_per_region
        return slice(region * per, (region + 1) * per)

    def region_of_line(self, line: int) -> int:
        """Region id owning physical line ``line``."""
        if not 0 <= line < self.lines:
            raise IndexError(f"line {line} out of range [0, {self.lines})")
        return line // self.lines_per_region

    def region_lines(self, region: int) -> np.ndarray:
        """Endurance array of the lines in ``region`` (read-only view)."""
        return self.line_endurance[self.region_slice(region)]

    def region_endurance(self, metric: str = "min") -> np.ndarray:
        """Per-region endurance metric.

        The paper treats region endurance as constant ("The endurance of
        each region is constant"); when intra-region variation is enabled,
        ``metric`` selects how a region's endurance is summarized:
        ``"min"`` (a region is only as strong as its weakest line --
        the conservative default), ``"mean"``, or ``"max"``.
        """
        grid = self.line_endurance.reshape(self.regions, self.lines_per_region)
        if metric == "min":
            return grid.min(axis=1)
        if metric == "mean":
            return grid.mean(axis=1)
        if metric == "max":
            return grid.max(axis=1)
        raise ValueError(f"unknown region endurance metric {metric!r}")

    def rank_regions(self, metric: str = "min") -> np.ndarray:
        """Region ids sorted ascending by endurance (weakest first).

        Ties are broken by region id so the ranking is deterministic; this
        ordering drives Max-WE's weak-priority spare selection.
        """
        endurances = self.region_endurance(metric)
        return np.lexsort((np.arange(self.regions), endurances))

    def weakest_lines(self, count: int) -> np.ndarray:
        """Physical line ids of the ``count`` weakest lines (ascending endurance)."""
        if not 0 <= count <= self.lines:
            raise ValueError(f"count must be in [0, {self.lines}], got {count}")
        order = np.lexsort((np.arange(self.lines), self.line_endurance))
        return order[:count]

    def with_regions(self, regions: int) -> "EnduranceMap":
        """Re-view the same lines under a different region count."""
        return EnduranceMap(self.line_endurance.copy(), regions)
