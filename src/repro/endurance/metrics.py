"""Endurance-variation metrics.

Free functions over :class:`~repro.endurance.emap.EnduranceMap` (or raw
arrays) quantifying the degree of process variation -- the paper's ``q``
ratio and the coefficient of variation -- plus the region ranking helper
shared by Max-WE and the endurance-aware wear-levelers.
"""

from __future__ import annotations

import numpy as np

from repro.endurance.emap import EnduranceMap


def variation_ratio(endurances: "np.ndarray | EnduranceMap") -> float:
    """The paper's ``q = EH / EL`` over lines (or any endurance array)."""
    array = _as_array(endurances)
    return float(array.max() / array.min())


def coefficient_of_variation(endurances: "np.ndarray | EnduranceMap") -> float:
    """Std/mean of the endurance population."""
    array = _as_array(endurances)
    mean = array.mean()
    if mean == 0:
        raise ValueError("mean endurance is zero")
    return float(array.std() / mean)


def region_endurance(emap: EnduranceMap, metric: str = "min") -> np.ndarray:
    """Per-region endurance metric (delegates to the map)."""
    return emap.region_endurance(metric)


def sort_regions_by_endurance(emap: EnduranceMap, metric: str = "min") -> np.ndarray:
    """Region ids in ascending endurance order (weakest first)."""
    return emap.rank_regions(metric)


def endurance_percentile(
    endurances: "np.ndarray | EnduranceMap", percentile: float
) -> float:
    """Endurance value at the given percentile of the line population."""
    if not 0.0 <= percentile <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {percentile}")
    array = _as_array(endurances)
    return float(np.percentile(array, percentile))


def _as_array(endurances: "np.ndarray | EnduranceMap") -> np.ndarray:
    if isinstance(endurances, EnduranceMap):
        return endurances.line_endurance
    array = np.asarray(endurances, dtype=float)
    if array.size == 0:
        raise ValueError("empty endurance array")
    if np.any(array <= 0):
        raise ValueError("endurances must be strictly positive")
    return array
