"""Endurance-variation models for NVM (paper Section 2.1).

The paper derives per-region write endurance from the process-variation
model of Zhang & Li (MICRO'09): the programming current of equal-size
memory domains follows a normal distribution (Eq. 2), and endurance follows
the power law ``E(I) = 1e8 * (I^2 * R * T)^-6`` (Eq. 1).  Section 3.1 then
approximates the resulting distribution with a *tractable linear* model
between the minimum endurance ``EL`` and maximum ``EH`` for the closed-form
lifetime analysis.

This package implements both:

* :class:`~repro.endurance.powerlaw.PowerLawEnduranceModel` -- Eq. 1,
* :class:`~repro.endurance.distribution.CurrentDistribution` and
  :class:`~repro.endurance.distribution.ZhangLiModel` -- Eq. 2 over domains,
* :class:`~repro.endurance.linear.LinearEnduranceModel` -- the Section 3.1
  approximation used by all closed-form results,
* :class:`~repro.endurance.emap.EnduranceMap` -- the concrete per-line
  endurance array consumed by the device simulator, with region metrics,
* generators for alternative distributions (lognormal, uniform) used in
  robustness tests.
"""

from repro.endurance.distribution import CurrentDistribution, ZhangLiModel
from repro.endurance.emap import EnduranceMap
from repro.endurance.generators import (
    lognormal_endurance_map,
    uniform_endurance_map,
    weibull_endurance_map,
    zhang_li_endurance_map,
)
from repro.endurance.linear import LinearEnduranceModel, linear_endurance_map
from repro.endurance.metrics import (
    coefficient_of_variation,
    region_endurance,
    sort_regions_by_endurance,
    variation_ratio,
)
from repro.endurance.powerlaw import PowerLawEnduranceModel

__all__ = [
    "CurrentDistribution",
    "ZhangLiModel",
    "EnduranceMap",
    "lognormal_endurance_map",
    "uniform_endurance_map",
    "weibull_endurance_map",
    "zhang_li_endurance_map",
    "LinearEnduranceModel",
    "linear_endurance_map",
    "coefficient_of_variation",
    "region_endurance",
    "sort_regions_by_endurance",
    "variation_ratio",
    "PowerLawEnduranceModel",
]
