"""Calibration utilities: fitting endurance models to data or targets.

EXPERIMENTS.md documents how this reproduction calibrated its endurance
model against the paper's published anchors; this module productizes the
procedure so a user can repeat it against their own device data:

* :func:`fit_linear_model` -- least-squares fit of the Section 3.1
  linear model to any endurance map (sorted-value regression), with the
  fit quality, so "which q is my chip?" is one call;
* :func:`effective_q` -- the variation degree that makes Eq. 5 match a
  map's actual UAA exposure (``2/(q+1) = EL/mean``), the right q to feed
  the closed forms when the distribution is not linear;
* :func:`calibrate_truncation` -- the manufacture-screening width that
  makes the Zhang-Li model reproduce a target UAA fraction (how the
  library's default 2-sigma screening was chosen against the paper's
  4.1%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.endurance.distribution import CurrentDistribution, ZhangLiModel
from repro.endurance.emap import EnduranceMap
from repro.endurance.linear import LinearEnduranceModel
from repro.util.validation import require_fraction, require_positive_int


@dataclass(frozen=True)
class LinearFit:
    """Result of fitting the linear endurance model to a map.

    Attributes
    ----------
    model:
        The fitted :class:`LinearEnduranceModel`.
    r_squared:
        Coefficient of determination of the sorted-endurance regression;
        1.0 means the map *is* linear in rank.
    """

    model: LinearEnduranceModel
    r_squared: float

    @property
    def q(self) -> float:
        """Fitted variation degree."""
        return self.model.q


def fit_linear_model(emap: EnduranceMap) -> LinearFit:
    """Least-squares fit of endurance-versus-rank to a straight line.

    The Section 3.1 model says sorted endurances fall linearly from EH to
    EL; regressing the map's sorted values on their rank recovers the
    best (EH, EL) and how linear the device actually is.  Fitted
    endpoints are floored at a tiny positive value so heavy-tailed maps
    (whose regression line can cross zero) still yield a valid model.
    """
    values = np.sort(emap.line_endurance)[::-1]  # descending: EH .. EL
    ranks = np.arange(values.size, dtype=float)
    if values.size == 1:
        model = LinearEnduranceModel(e_low=float(values[0]), e_high=float(values[0]))
        return LinearFit(model=model, r_squared=1.0)
    slope, intercept = np.polyfit(ranks, values, 1)
    fitted = slope * ranks + intercept
    residual = float(((values - fitted) ** 2).sum())
    total = float(((values - values.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0

    floor = max(float(values.min()) * 1e-6, 1e-12)
    e_high = max(float(fitted[0]), floor)
    e_low = min(max(float(fitted[-1]), floor), e_high)
    return LinearFit(
        model=LinearEnduranceModel(e_low=e_low, e_high=e_high),
        r_squared=max(0.0, r_squared),
    )


def effective_q(emap: EnduranceMap) -> float:
    """The q that makes Eq. 5 reproduce the map's actual UAA exposure.

    The unprotected UAA lifetime of any map is ``EL / mean(E)``; setting
    ``2 / (q + 1)`` equal to it gives ``q = 2 mean / EL - 1``.  For a
    truly linear map this equals the literal EH/EL; for convex maps it is
    smaller -- and it is the right q to feed the closed forms.
    """
    mean = float(emap.line_endurance.mean())
    return 2.0 * mean / emap.min_endurance - 1.0


def calibrate_truncation(
    target_uaa_fraction: float,
    *,
    domains: int = 2048,
    low: float = 0.5,
    high: float = 4.0,
    iterations: int = 60,
) -> float:
    """Screening width (in sigmas) reproducing a target UAA fraction.

    Uses the Zhang-Li model's deterministic quantile grid: wider
    screening admits weaker domains, lowering ``EL/mean``.  Bisects on
    the monotone map width -> fraction.  This is how the library's
    default ``truncate_sigma = 2.0`` was chosen against the paper's 4.1%.
    """
    require_fraction(target_uaa_fraction, "target_uaa_fraction", inclusive=False)
    require_positive_int(domains, "domains")
    if not 0 < low < high:
        raise ValueError(f"need 0 < low < high, got ({low}, {high})")

    def fraction(width: float) -> float:
        model = ZhangLiModel(currents=CurrentDistribution(truncate_sigma=width))
        endurances = model.deterministic_domain_endurances(domains)
        return float(endurances.min() / endurances.mean())

    if not fraction(high) <= target_uaa_fraction <= fraction(low):
        raise ValueError(
            f"target {target_uaa_fraction:.3%} outside the achievable range "
            f"[{fraction(high):.3%}, {fraction(low):.3%}] for widths [{low}, {high}]"
        )
    for _ in range(iterations):
        mid = 0.5 * (low + high)
        if fraction(mid) > target_uaa_fraction:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)
