"""The tractable linear endurance approximation (paper Section 3.1).

For the closed-form lifetime analysis the paper replaces the empirical
endurance distribution with a linear one: when lines are sorted by
endurance, endurance falls linearly from the maximum ``EH`` to the minimum
``EL``.  All of Equations 3-8 are stated in terms of this model, so it is a
first-class citizen here: the analytic module consumes
:class:`LinearEnduranceModel` directly, and :func:`linear_endurance_map`
materializes it as a concrete per-line map so simulation and analysis can
be cross-validated on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.endurance.emap import EnduranceMap
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import require_positive, require_positive_int


@dataclass(frozen=True)
class LinearEnduranceModel:
    """Linearly distributed endurance between ``e_low`` and ``e_high``.

    Parameters
    ----------
    e_low:
        ``EL`` -- minimum line endurance.
    e_high:
        ``EH`` -- maximum line endurance.
    """

    e_low: float
    e_high: float

    def __post_init__(self) -> None:
        require_positive(self.e_low, "e_low")
        require_positive(self.e_high, "e_high")
        if self.e_high < self.e_low:
            raise ValueError(
                f"e_high ({self.e_high}) must be >= e_low ({self.e_low})"
            )

    @classmethod
    def from_q(cls, q: float, e_low: float = 1.0) -> "LinearEnduranceModel":
        """Build from the paper's variation degree ``q = EH / EL``."""
        if q < 1.0:
            raise ValueError(f"q must be >= 1, got {q}")
        return cls(e_low=e_low, e_high=e_low * q)

    @property
    def q(self) -> float:
        """Process-variation degree ``EH / EL``."""
        return self.e_high / self.e_low

    def line_endurances(self, lines: int) -> np.ndarray:
        """``lines`` endurances spaced linearly from ``EH`` down to ``EL``.

        The ordering is descending (strongest first) to mirror the paper's
        Figure 1 axis; callers that need a spatial layout should shuffle or
        use :func:`linear_endurance_map`.
        """
        require_positive_int(lines, "lines")
        if lines == 1:
            return np.array([(self.e_high + self.e_low) / 2.0])
        return np.linspace(self.e_high, self.e_low, lines)

    def ideal_lifetime(self, lines: int) -> float:
        """Eq. 3: ``N * (EH - EL) / 2 + N * EL`` -- the area under the diagonal."""
        require_positive_int(lines, "lines")
        return lines * (self.e_high - self.e_low) / 2.0 + lines * self.e_low

    def uaa_lifetime(self, lines: int) -> float:
        """Eq. 4: ``N * EL`` -- the area under the EL horizontal."""
        require_positive_int(lines, "lines")
        return lines * self.e_low

    def uaa_fraction(self) -> float:
        """Eq. 5: ``L_UAA / L_Ideal = 2 EL / (EH + EL)``.

        With ``EH = 50 EL`` this is the paper's 3.9% headline.
        """
        return 2.0 * self.e_low / (self.e_high + self.e_low)


def linear_endurance_map(
    lines: int,
    regions: int,
    model: LinearEnduranceModel,
    *,
    layout: str = "shuffled",
    rng: RandomState = None,
) -> EnduranceMap:
    """Materialize a :class:`LinearEnduranceModel` as a concrete map.

    Parameters
    ----------
    lines, regions:
        Device shape; ``regions`` must divide ``lines``.
    layout:
        ``"shuffled"`` permutes whole *regions* randomly in physical space
        (endurance still constant within a region, matching the paper's
        region-endurance assumption); ``"ascending"`` / ``"descending"``
        place regions in sorted physical order for deterministic tests.
    """
    require_positive_int(lines, "lines")
    require_positive_int(regions, "regions")
    if lines % regions != 0:
        raise ValueError(f"regions {regions} must divide lines {lines}")

    region_values = model.line_endurances(regions)  # descending EH..EL
    if layout == "ascending":
        region_values = region_values[::-1]
    elif layout == "shuffled":
        generator = ensure_rng(rng)
        region_values = generator.permutation(region_values)
    elif layout != "descending":
        raise ValueError(f"unknown layout {layout!r}")

    per_line = np.repeat(region_values, lines // regions)
    return EnduranceMap(per_line, regions)
