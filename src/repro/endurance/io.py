"""Endurance-map serialization: chip characterization files.

The paper notes "the endurance distribution parameters can be obtained at
the manufacture time" -- i.e. an endurance map is an artifact that ships
with (or is profiled from) a device.  These helpers round-trip
:class:`~repro.endurance.emap.EnduranceMap` through compressed ``.npz``
files so characterized maps can be archived, shared and re-simulated.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.endurance.emap import EnduranceMap

#: Current map file format version.
FORMAT_VERSION: int = 1


def save_endurance_map(emap: EnduranceMap, path: "str | Path") -> Path:
    """Write a map to a compressed ``.npz`` file; returns the actual path."""
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=np.int64(FORMAT_VERSION),
        line_endurance=emap.line_endurance,
        regions=np.int64(emap.regions),
    )
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_endurance_map(path: "str | Path") -> EnduranceMap:
    """Read a map written by :func:`save_endurance_map`."""
    with np.load(Path(path)) as archive:
        version = int(archive["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported endurance-map format version {version} "
                f"(this build reads {FORMAT_VERSION})"
            )
        return EnduranceMap(
            line_endurance=archive["line_endurance"].copy(),
            regions=int(archive["regions"]),
        )
