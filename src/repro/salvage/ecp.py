"""ECP: Error-Correcting Pointers (Schechter et al., ISCA'10).

Each line carries ``pointers`` correction entries; every entry repairs one
failed cell, returning the line to service with a small amount of extra
wear headroom (the failed cell was the line's weakest -- the survivors
have residual life proportional to the intra-line lifetime spread).
When a line exhausts its entries its next failure is uncorrectable and,
absent any line-level replacement, the device fails.

The paper's Section 2.2.2 point, which bench EXT-SALV quantifies: the
per-line budget is tiny ("ECP can correct six hard failures per line with
11.9% capacity overhead") while UAA drives *whole weak lines* to failure,
so ECP buys only a few percent of extra life where Max-WE buys ~10x.
"""

from __future__ import annotations

import math

import numpy as np

from repro.sparing.base import ExtendBudget, FailDevice, Replacement, SpareScheme
from repro.util.validation import require_fraction


class ECP(SpareScheme):
    """Per-line error-correcting pointers as a sparing scheme.

    Parameters
    ----------
    pointers:
        Correctable cell failures per line (ECP-n; the cited design is
        ECP-6 at 11.9% capacity overhead).
    bonus_per_pointer:
        Extra wear headroom each correction buys, as a fraction of the
        line's nominal endurance (the intra-line spread of cell
        lifetimes; a few percent for tightly manufactured lines).
    """

    name = "ecp"

    def __init__(self, pointers: int = 6, bonus_per_pointer: float = 0.01) -> None:
        if pointers < 0:
            raise ValueError(f"pointers must be >= 0, got {pointers}")
        require_fraction(bonus_per_pointer, "bonus_per_pointer")
        super().__init__(spare_fraction=0.0)
        self._pointers = pointers
        self._bonus_per_pointer = bonus_per_pointer
        self._used: dict[int, int] = {}

    @property
    def pointers(self) -> int:
        """Correction entries per line."""
        return self._pointers

    @property
    def capacity_overhead(self) -> float:
        """Metadata cost per 512-bit line: ``(10 n + 1) / 512``."""
        return (10 * self._pointers + 1) / 512.0

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None
        self._used = {}
        return np.arange(self._emap.lines, dtype=np.intp)

    def corrections_used(self, slot: int) -> int:
        """Correction entries consumed by ``slot`` so far."""
        return self._used.get(slot, 0)

    def replace(self, slot: int, dead_line: int) -> Replacement:
        """Consume one pointer if available; otherwise the device fails."""
        self._require_initialized()
        assert self._emap is not None
        used = self._used.get(slot, 0)
        if used >= self._pointers:
            return FailDevice(
                reason=(
                    f"line {dead_line} exhausted its ECP-{self._pointers} budget; "
                    "no line-level replacement exists"
                )
            )
        self._used[slot] = used + 1
        bonus = self._bonus_per_pointer * float(self._emap.line_endurance[dead_line])
        return ExtendBudget(wear=bonus)

    def replacement_extra_floor(self) -> float:
        """Every correction extends by at least the weakest line's bonus."""
        self._require_initialized()
        assert self._emap is not None
        if self._pointers == 0:
            return math.inf  # every death is already uncorrectable
        return self._bonus_per_pointer * float(self._emap.line_endurance.min())

    def describe(self) -> str:
        return (
            f"ECP-{self._pointers} salvaging "
            f"({self.capacity_overhead:.1%} capacity overhead)"
        )
