"""FREE-p: fine-grained remapping of worn lines (Yoon et al., HPCA'11).

FREE-p embeds the remap pointer for a worn-out line *inside* the dead
line itself (its few surviving cells store a pointer), redirecting the
line's traffic to a healthy page taken from OS-visible capacity.  Two
consequences, both modelled here:

* the replacement target is chosen by the OS without endurance awareness
  -- the paper's critique ("the endurance differences of spare capacity
  and working capacity are not distinguished"); we model the reserve as a
  uniformly random sample of lines, allocated in random order;
* capacity shrinks as remap targets are consumed; the device fails when
  the reserve runs out.

Lifetime-wise this makes FREE-p the fine-grained sibling of PS's average
case, which is exactly how the paper groups them.
"""

from __future__ import annotations

from repro.sparing.ps import PS


class FreeP(PS):
    """FREE-p as endurance-oblivious fine-grained line remapping.

    Parameters
    ----------
    reserve_fraction:
        Fraction of capacity the OS may consume as remap targets.
    """

    name = "free-p"

    def __init__(self, reserve_fraction: float = 0.1) -> None:
        super().__init__(
            spare_fraction=reserve_fraction,
            selection="random",
            allocation="random",
        )

    def describe(self) -> str:
        return (
            f"FREE-p (fine-grained remap, {self.spare_fraction:.0%} "
            "endurance-oblivious reserve)"
        )
