"""PAYG: Pay-As-You-Go error correction (Qureshi, MICRO'11).

PAYG observes that a fixed per-line ECP budget is mostly wasted (strong
lines never use theirs) and pools the correction entries globally,
dispensing them to whichever line fails next.  That fixes ECP's
*allocation* inefficiency but -- the paper's Section 2.2.2 critique --
still "simply interprets process variation as non-uniform error rate
without considering the endurance distribution": the pool drains into the
weakest lines at full attack speed, and each entry still buys only a
cell's worth of life.
"""

from __future__ import annotations

import numpy as np

from repro.sparing.base import ExtendBudget, FailDevice, Replacement, SpareScheme
from repro.util.validation import require_fraction, require_positive


class PayAsYouGo(SpareScheme):
    """Globally pooled correction entries.

    Parameters
    ----------
    entries_per_line:
        Pool size expressed as average correction entries per line (PAYG
        provisions for the expected error count, far below ECP-6's
        worst-case budget).
    bonus_per_entry:
        Extra wear headroom one entry buys, as a fraction of the failing
        line's nominal endurance.
    """

    name = "payg"

    def __init__(
        self, entries_per_line: float = 1.0, bonus_per_entry: float = 0.01
    ) -> None:
        require_positive(entries_per_line, "entries_per_line")
        require_fraction(bonus_per_entry, "bonus_per_entry")
        super().__init__(spare_fraction=0.0)
        self._entries_per_line = entries_per_line
        self._bonus_per_entry = bonus_per_entry
        self._pool = 0

    @property
    def pool_remaining(self) -> int:
        """Correction entries left in the global pool."""
        self._require_initialized()
        return self._pool

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None
        self._pool = int(round(self._entries_per_line * self._emap.lines))
        return np.arange(self._emap.lines, dtype=np.intp)

    def replace(self, slot: int, dead_line: int) -> Replacement:
        """Dispense one pooled entry; the device fails when the pool is dry."""
        self._require_initialized()
        assert self._emap is not None
        if self._pool <= 0:
            return FailDevice(
                reason=f"line {dead_line} failed with the PAYG pool exhausted"
            )
        self._pool -= 1
        bonus = self._bonus_per_entry * float(self._emap.line_endurance[dead_line])
        return ExtendBudget(wear=bonus)

    def describe(self) -> str:
        return (
            f"PAYG salvaging ({self._entries_per_line:g} entries/line pooled)"
        )
