"""Salvaging techniques (paper Section 2.2.2) and their limits under UAA.

Salvaging corrects hard cell failures *inside* a line using reserved
redundancy, instead of replacing whole lines.  The paper's related-work
argument is that salvaging alone cannot resist UAA: the error-correction
budget per line is small, attacked weak lines accumulate failures far
faster than the budget grows, and the spare capacity is spent without
regard for the endurance distribution.  This package makes the argument
executable:

* :class:`~repro.salvage.ecp.ECP` -- Error-Correcting Pointers
  (Schechter et al., ISCA'10): n correction entries per line;
* :class:`~repro.salvage.freep.FreeP` -- FREE-p-style fine-grained remap
  (Yoon et al., HPCA'11): a worn line's traffic is absorbed by embedded
  remap storage, modelled as a global pool of line-remaps taken from
  capacity *without* endurance awareness;
* :class:`~repro.salvage.payg.PayAsYouGo` -- PAYG (Qureshi, MICRO'11): a
  shared global pool of correction entries allocated on demand, instead
  of a fixed per-line budget.

All three implement the sparing-scheme interface so the lifetime
simulator can run them head-to-head with Max-WE (bench EXT-SALV).
"""

from repro.salvage.ecp import ECP
from repro.salvage.freep import FreeP
from repro.salvage.payg import PayAsYouGo

__all__ = ["ECP", "FreeP", "PayAsYouGo"]
