"""Blocking HTTP client for the job API (stdlib ``http.client`` only).

Used by the ``repro service-submit/status/results`` CLI subcommands and
by tests/CI; any HTTP client works against the service, this one just
keeps the repo dependency-free.  ``stream_events`` yields decoded NDJSON
events as they arrive (``http.client`` de-chunks transparently, so the
generator is a plain readline loop).
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Dict, Iterator, List, Optional, Sequence


class ServiceError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(f"HTTP {status}: {message}")


class ServiceClient:
    """Talk to one service instance at ``host:port``."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8437, timeout: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> "tuple[int, str]":
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(
                method,
                path,
                body=json.dumps(body) if body is not None else None,
                headers={"Content-Type": "application/json", **(headers or {})},
            )
            response = connection.getresponse()
            return response.status, response.read().decode()
        finally:
            connection.close()

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        status, text = self._request(method, path, body, headers)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = {"error": text.strip() or "empty response"}
        if status >= 400:
            raise ServiceError(status, str(payload.get("error", text)))
        return payload

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def healthz(self) -> bool:
        """Whether the service answers its liveness probe."""
        try:
            return self._json("GET", "/healthz").get("status") == "ok"
        except (OSError, ServiceError):
            return False

    def submit(
        self,
        specs: Sequence[dict],
        config: Optional[dict] = None,
        *,
        tenant: str = "default",
        engine: Optional[str] = None,
        trials_per_task: Optional[int] = None,
    ) -> dict:
        """Submit a batch; returns the job document (``job_id`` inside).

        Raises :class:`ServiceError` with ``status=429`` on quota
        rejection and ``status=400`` on validation failure.
        """
        payload: dict = {"specs": list(specs)}
        if config:
            payload["config"] = dict(config)
        if engine is not None:
            payload["engine"] = engine
        if trials_per_task is not None:
            payload["trials_per_task"] = trials_per_task
        return self._json(
            "POST", "/v1/jobs", body=payload, headers={"X-Tenant": tenant}
        )

    def status(self, job_id: str) -> dict:
        """The job's status document."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def list_jobs(self) -> List[dict]:
        """Status documents of every job the service knows."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def results(self, job_id: str) -> str:
        """The finished job's result body (exact canonical text)."""
        status, text = self._request("GET", f"/v1/jobs/{job_id}/results")
        if status >= 400:
            try:
                message = json.loads(text).get("error", text)
            except json.JSONDecodeError:
                message = text
            raise ServiceError(status, str(message))
        return text

    def metrics(self) -> dict:
        """The service's metrics manifest."""
        return self._json("GET", "/v1/metrics")

    def stream_events(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Yield the job's events as they happen, until it finishes."""
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = connection.getresponse()
            if response.status >= 400:
                text = response.read().decode()
                try:
                    message = json.loads(text).get("error", text)
                except json.JSONDecodeError:
                    message = text
                raise ServiceError(response.status, str(message))
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    def wait(self, job_id: str, poll_seconds: float = 0.2) -> dict:
        """Stream until the job finishes; returns its final status doc.

        Falls back to polling if the event stream drops (e.g. the
        service restarted mid-run): the job is durable, the stream is
        not.
        """
        from time import sleep

        while True:
            try:
                for _event in self.stream_events(job_id):
                    pass
            except (OSError, ServiceError):
                pass
            try:
                document = self.status(job_id)
            except (OSError, ServiceError):
                sleep(poll_seconds)
                continue
            if document["status"] in ("done", "failed"):
                return document
            sleep(poll_seconds)
