"""Blocking HTTP client for the job API (stdlib ``http.client`` only).

Used by the ``repro service-submit/status/results`` CLI subcommands and
by tests/CI; any HTTP client works against the service, this one just
keeps the repo dependency-free.  ``stream_events`` yields decoded NDJSON
events as they arrive (``http.client`` de-chunks transparently, so the
generator is a plain readline loop).

Robustness: every exchange runs under separate **connect** and **read**
timeouts, idempotent GETs retry through capped jittered exponential
backoff, and :meth:`submit` honors a 503 ``Retry-After`` (the service's
drain rejection) for a bounded number of rounds.  A dead server
therefore surfaces as a timely :class:`ServiceError`/``OSError`` --
never an indefinite hang.
"""

from __future__ import annotations

import hashlib
import json
from http.client import HTTPConnection
from time import monotonic, sleep
from typing import Dict, Iterator, List, Optional, Sequence

#: First GET-retry delay; doubles per attempt.
RETRY_BASE_SECONDS: float = 0.1

#: Ceiling on a single retry delay.
RETRY_CAP_SECONDS: float = 2.0

#: Upper bound honored from a server-sent ``Retry-After`` hint.
RETRY_AFTER_CAP_SECONDS: float = 30.0


class ServiceError(RuntimeError):
    """A non-2xx response from the service.

    ``retry_after`` carries the server's ``Retry-After`` hint (seconds)
    when the response included one -- a 503 drain rejection does.
    """

    def __init__(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> None:
        self.status = status
        self.retry_after = retry_after
        super().__init__(f"HTTP {status}: {message}")


def _parse_retry_after(headers: Dict[str, str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header, if present and numeric."""
    raw = headers.get("retry-after")
    if raw is None:
        return None
    try:
        return max(float(raw), 0.0)
    except ValueError:
        return None


class ServiceClient:
    """Talk to one service instance at ``host:port``.

    Parameters
    ----------
    timeout:
        Default for both finer-grained timeouts below.
    connect_timeout:
        Seconds to establish the TCP connection.
    read_timeout:
        Seconds a blocked read may wait.  The server emits stream
        keepalives every few seconds, so on an event stream this bounds
        *server death* detection without tripping on quiet jobs.
    retries:
        Extra attempts for idempotent GETs (and 503-rejected submits).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8437,
        timeout: float = 60.0,
        *,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retries: int = 2,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (
            timeout if connect_timeout is None else connect_timeout
        )
        self.read_timeout = timeout if read_timeout is None else read_timeout
        self.retries = max(int(retries), 0)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _retry_delay(self, attempt: int) -> float:
        """Capped exponential backoff with deterministic jitter in
        ``[0.5, 1.5)×`` -- reproducible per (endpoint, attempt), yet
        fleet clients retrying the same instant spread out."""
        base = min(RETRY_BASE_SECONDS * (2 ** attempt), RETRY_CAP_SECONDS)
        digest = hashlib.sha256(
            f"client:{self.host}:{self.port}:{attempt}".encode()
        ).digest()
        jitter = int.from_bytes(digest[:8], "little") / 2**64
        return base * (0.5 + jitter)

    def _connect(self, read_timeout: Optional[float] = None) -> HTTPConnection:
        """Open a connection under the connect timeout, then swap the
        socket to the (usually longer) read timeout."""
        connection = HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )
        connection.connect()
        if connection.sock is not None:
            connection.sock.settimeout(
                self.read_timeout if read_timeout is None else read_timeout
            )
        return connection

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> "tuple[int, str, Dict[str, str]]":
        """One exchange; idempotent GETs retry connection-level failures
        with bounded jittered backoff (POSTs never auto-retry here --
        submit handles its own 503 path)."""
        attempts = (self.retries if method == "GET" else 0) + 1
        for attempt in range(attempts):
            try:
                connection = self._connect()
            except OSError:
                if attempt + 1 >= attempts:
                    raise
                sleep(self._retry_delay(attempt))
                continue
            try:
                connection.request(
                    method,
                    path,
                    body=json.dumps(body) if body is not None else None,
                    headers={
                        "Content-Type": "application/json", **(headers or {})
                    },
                )
                response = connection.getresponse()
                reply_headers = {
                    name.lower(): value for name, value in response.getheaders()
                }
                return response.status, response.read().decode(), reply_headers
            except OSError:
                if attempt + 1 >= attempts:
                    raise
                sleep(self._retry_delay(attempt))
            finally:
                connection.close()
        raise OSError(f"unreachable: {method} {path}")  # pragma: no cover

    def _json(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> dict:
        status, text, reply_headers = self._request(method, path, body, headers)
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = {"error": text.strip() or "empty response"}
        if status >= 400:
            raise ServiceError(
                status,
                str(payload.get("error", text)),
                retry_after=_parse_retry_after(reply_headers),
            )
        return payload

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def healthz(self) -> bool:
        """Whether the service answers its liveness probe."""
        try:
            return self._json("GET", "/healthz").get("status") == "ok"
        except (OSError, ServiceError):
            return False

    def submit(
        self,
        specs: Sequence[dict],
        config: Optional[dict] = None,
        *,
        tenant: str = "default",
        engine: Optional[str] = None,
        trials_per_task: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> dict:
        """Submit a batch; returns the job document (``job_id`` inside).

        Raises :class:`ServiceError` with ``status=429`` on quota
        rejection and ``status=400`` on validation failure.  A 503
        (draining instance) is retried up to ``retries`` times, honoring
        the server's ``Retry-After`` hint, before surfacing.
        """
        payload: dict = {"specs": list(specs)}
        if config:
            payload["config"] = dict(config)
        if engine is not None:
            payload["engine"] = engine
        if trials_per_task is not None:
            payload["trials_per_task"] = trials_per_task
        if deadline_seconds is not None:
            payload["deadline_seconds"] = deadline_seconds
        for attempt in range(self.retries + 1):
            try:
                return self._json(
                    "POST", "/v1/jobs", body=payload, headers={"X-Tenant": tenant}
                )
            except ServiceError as error:
                # 503 = the instance is draining; its Retry-After names
                # when a replacement should answer.  Anything else (400,
                # 429, ...) is the caller's problem immediately.
                if error.status != 503 or attempt >= self.retries:
                    raise
                delay = (
                    error.retry_after
                    if error.retry_after is not None
                    else self._retry_delay(attempt)
                )
                sleep(min(max(delay, 0.0), RETRY_AFTER_CAP_SECONDS))
        raise OSError("unreachable: submit")  # pragma: no cover

    def status(self, job_id: str) -> dict:
        """The job's status document."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def list_jobs(self) -> List[dict]:
        """Status documents of every job the service knows."""
        return self._json("GET", "/v1/jobs")["jobs"]

    def results(self, job_id: str) -> str:
        """The finished job's result body (exact canonical text)."""
        status, text, _headers = self._request("GET", f"/v1/jobs/{job_id}/results")
        if status >= 400:
            try:
                message = json.loads(text).get("error", text)
            except json.JSONDecodeError:
                message = text
            raise ServiceError(status, str(message))
        return text

    def metrics(self) -> dict:
        """The service's metrics manifest."""
        return self._json("GET", "/v1/metrics")

    def stream_events(self, job_id: str, since: int = 0) -> Iterator[dict]:
        """Yield the job's events as they happen, until it finishes.

        The read timeout bounds every blocked ``readline``; the server's
        periodic keepalive lines (dropped here, they carry no event)
        arrive well inside it, so a timeout genuinely means the server
        stopped talking -- it surfaces as ``OSError`` instead of an
        indefinite hang.
        """
        connection = self._connect()
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events?since={since}")
            response = connection.getresponse()
            if response.status >= 400:
                text = response.read().decode()
                try:
                    message = json.loads(text).get("error", text)
                except json.JSONDecodeError:
                    message = text
                raise ServiceError(response.status, str(message))
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                event = json.loads(line)
                if event.get("event") == "keepalive":
                    continue
                yield event
        finally:
            connection.close()

    def wait(
        self,
        job_id: str,
        poll_seconds: float = 0.2,
        timeout: Optional[float] = None,
    ) -> dict:
        """Stream until the job finishes; returns its final status doc.

        Falls back to polling if the event stream drops (e.g. the
        service restarted mid-run): the job is durable, the stream is
        not.  With ``timeout`` set, raises :class:`TimeoutError` once
        the overall budget is spent instead of waiting forever.
        """
        deadline = None if timeout is None else monotonic() + timeout
        while True:
            if deadline is not None and monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still unfinished after {timeout:g}s"
                )
            try:
                for _event in self.stream_events(job_id):
                    pass
            except (OSError, ServiceError):
                pass
            try:
                document = self.status(job_id)
            except (OSError, ServiceError):
                sleep(poll_seconds)
                continue
            if document["status"] in ("done", "failed"):
                return document
            sleep(poll_seconds)
