"""Simulation-as-a-service: an HTTP job API over the runner stack.

Clients POST a JSON ``RunSpec`` batch, get a job id, stream NDJSON
status/partial results, and fetch a final body byte-identical to a
direct :func:`~repro.sim.batch.run_batch`.  See :mod:`repro.service.core`
for the threaded core (queue, quotas, dedup store, durability) and
:mod:`repro.service.http` for the asyncio front end; run one with
``python -m repro.service``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.core import (
    ServiceConfig,
    ServiceUnavailable,
    SimService,
    ValidationError,
)
from repro.service.http import ServiceServer, serve
from repro.service.jobs import Job
from repro.service.queue import JobQueue, QuotaExceeded, TenantQuota
from repro.service.store import ResultStore, batch_key

__all__ = [
    "Job",
    "JobQueue",
    "QuotaExceeded",
    "ResultStore",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailable",
    "SimService",
    "TenantQuota",
    "ValidationError",
    "batch_key",
    "serve",
]
