"""Service core: validation, dispatch, durable records, restart resume.

:class:`SimService` is the synchronous heart of the job API -- the HTTP
layer is a thin asyncio adapter over it, and tests drive it directly.
It owns:

* a :class:`~repro.service.queue.JobQueue` (weighted round-robin
  fairness, quotas) fed by :meth:`submit`;
* N dispatcher threads that pull jobs and run them through
  :func:`~repro.sim.batch.run_batch` on the configured backend, with
  the job's own :class:`~repro.obs.metrics.MetricsRegistry` merged into
  the service registry on completion (the registry is single-threaded
  by design, so sharing one across dispatchers would race);
* a :class:`~repro.service.store.ResultStore` coalescing identical
  batches (in-flight and published) across tenants;
* durable job records under ``<state_dir>/jobs/`` (write-then-rename
  JSON) plus per-job checkpoint ledgers under ``<state_dir>/ledgers/``
  keyed by job id via ``derive_checkpoint_path(run_id=job_id)`` -- a
  killed service restarts, re-queues interrupted jobs, and their
  ledgers turn the re-run into a resume.

Determinism contract: a job's result body is exactly
``BatchResult.to_json()`` of its specs -- byte-identical to a direct
:func:`run_batch` of the same batch, whichever tenant asked and however
many duplicates were coalesced.
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import monotonic, perf_counter
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.obs.sink import build_manifest
from repro.service.jobs import Job
from repro.service.queue import JobQueue, QuotaExceeded, TenantQuota
from repro.service.store import ResultStore, batch_key
from repro.sim.batch import RunSpec, run_batch
from repro.sim.cache import ResultCache
from repro.sim.config import ExperimentConfig
from repro.sim.faults import CRASH_EXIT_CODE, active_injector
from repro.sim.resilience import ResiliencePolicy, derive_checkpoint_path

#: Default service state directory (job records, ledgers, shared cache).
DEFAULT_STATE_DIR = ".repro-service"

#: Request options the service accepts beyond ``specs``/``config``.
#: ``deadline_seconds`` is deliberately NOT an option: options feed the
#: batch key, and a deadline is a property of the *request*, not of what
#: the batch computes -- two tenants asking for the same batch under
#: different deadlines must still coalesce.
_OPTION_FIELDS = ("engine", "trials_per_task")

#: ``Retry-After`` hint handed to clients rejected during a drain: the
#: process is exiting; by then a replacement is expected to be listening.
DRAIN_RETRY_AFTER_SECONDS: float = 5.0


class ValidationError(ValueError):
    """A submission payload failed validation (HTTP 400)."""


class ServiceUnavailable(RuntimeError):
    """The service is draining and no longer admits work (HTTP 503).

    Carries the ``Retry-After`` hint so the HTTP layer and the client
    agree on when a replacement instance should be up.
    """

    def __init__(self, message: str, retry_after: float = DRAIN_RETRY_AFTER_SECONDS):
        super().__init__(message)
        self.retry_after = float(retry_after)


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one service instance."""

    state_dir: "str | Path" = DEFAULT_STATE_DIR
    jobs: int = 1
    backend: Optional[str] = None
    engine: str = "fluid-batched"
    dispatchers: int = 2
    default_quota: TenantQuota = field(default_factory=TenantQuota)
    quotas: Dict[str, TenantQuota] = field(default_factory=dict)
    policy: Optional[ResiliencePolicy] = None


class SimService:
    """The job API's synchronous core (see module docstring)."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.state_dir = Path(self.config.state_dir)
        self.records_dir = self.state_dir / "jobs"
        self.ledgers_dir = self.state_dir / "ledgers"
        self.cache = ResultCache(self.state_dir / "cache")
        self.store = ResultStore()
        self.queue = JobQueue(self.config.default_quota, self.config.quotas)
        self.metrics = MetricsRegistry()
        self._metrics_lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._dispatchers: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._draining = threading.Event()
        self._started = perf_counter()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Resume durable jobs, then start the dispatcher threads."""
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self.ledgers_dir.mkdir(parents=True, exist_ok=True)
        self._resume()
        for index in range(max(self.config.dispatchers, 1)):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"repro-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)

    def stop(self, timeout: float = 10.0) -> None:
        """Stop dispatching; in-flight jobs get ``timeout`` to finish."""
        self._stopping.set()
        self.queue.close()
        for thread in self._dispatchers:
            thread.join(timeout)
        self._dispatchers = []

    @property
    def draining(self) -> bool:
        """Whether the service has stopped admitting work."""
        return self._draining.is_set()

    def drain(self, timeout: float = 30.0) -> bool:
        """Enter the draining state and wind down gracefully.

        From this instant :meth:`submit` answers
        :class:`ServiceUnavailable` (503 + Retry-After) and dispatchers
        stop *taking* new jobs; the ones mid-batch get ``timeout``
        seconds to finish (their per-job ledgers checkpoint continuously,
        so even an overrun loses no completed member).  Every job record
        is then persisted so the next incarnation resumes queued and
        interrupted work.  Returns whether all dispatchers finished in
        time -- the caller's signal that exiting now abandons nothing.
        """
        self._count("service.drains")
        self._draining.set()
        deadline = monotonic() + max(timeout, 0.0)
        for thread in self._dispatchers:
            thread.join(max(deadline - monotonic(), 0.0))
        clean = not any(thread.is_alive() for thread in self._dispatchers)
        for job in self.list_jobs():
            try:
                self._persist(job)
            except OSError:
                pass  # best effort: the submit-time record still exists
        return clean

    def __enter__(self) -> "SimService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def _validate(self, payload: dict) -> "tuple[list, dict, dict, Optional[float]]":
        """Parse a submission payload into (specs, config, options, deadline).

        Everything is normalized through the same constructors a direct
        ``run_batch`` uses, so a payload that validates here runs there
        -- and its canonical dict forms give a stable batch key.
        """
        if not isinstance(payload, dict):
            raise ValidationError("request body must be a JSON object")
        raw_specs = payload.get("specs")
        if not isinstance(raw_specs, list) or not raw_specs:
            raise ValidationError("'specs' must be a non-empty list")
        try:
            specs = [RunSpec.from_dict(spec).to_dict() for spec in raw_specs]
        except (TypeError, ValueError) as error:
            raise ValidationError(f"bad spec: {error}") from error
        raw_config = payload.get("config", {})
        if not isinstance(raw_config, dict):
            raise ValidationError("'config' must be a JSON object")
        try:
            config = ExperimentConfig(**raw_config)
        except (TypeError, ValueError) as error:
            raise ValidationError(f"bad config: {error}") from error
        config_dict = {
            "regions": config.regions,
            "lines_per_region": config.lines_per_region,
            "q": config.q,
            "endurance_model": config.endurance_model,
            "spare_fraction": config.spare_fraction,
            "swr_fraction": config.swr_fraction,
            "seed": config.seed,
        }
        options: Dict[str, object] = {"engine": self.config.engine}
        for name in _OPTION_FIELDS:
            if payload.get(name) is not None:
                options[name] = payload[name]
        deadline: Optional[float] = None
        if payload.get("deadline_seconds") is not None:
            try:
                deadline = float(payload["deadline_seconds"])
            except (TypeError, ValueError):
                raise ValidationError(
                    "'deadline_seconds' must be a number"
                ) from None
            if deadline <= 0:
                raise ValidationError(
                    f"'deadline_seconds' must be > 0, got {deadline:g}"
                )
        unknown = set(payload) - {
            "specs", "config", "tenant", "deadline_seconds", *_OPTION_FIELDS
        }
        if unknown:
            raise ValidationError(f"unknown request fields {sorted(unknown)}")
        return specs, config_dict, options, deadline

    def submit(self, tenant: str, payload: dict) -> Job:
        """Accept a batch for ``tenant``; returns the queued job.

        Raises :class:`ValidationError` on a bad payload,
        :class:`~repro.service.queue.QuotaExceeded` over quota, and
        :class:`ServiceUnavailable` while draining.  A batch whose body
        is already published completes immediately (a dedup hit)
        without consuming a queue slot.
        """
        tenant = tenant or "default"
        if self.draining:
            self._count("service.drain_rejections")
            raise ServiceUnavailable("service is draining; not admitting work")
        specs, config, options, deadline = self._validate(payload)
        key = batch_key(config, options, specs)
        job = Job(
            tenant=tenant, specs=specs, config=config,
            options=options, batch_key=key, deadline_seconds=deadline,
        )
        with self._jobs_lock:
            self._jobs[job.job_id] = job
        self._count("service.submitted")
        published = self.store.get(key)
        if published is not None:
            job.mark_done(
                published,
                dedup=True,
                before_notify=lambda: self._finalize(
                    job, "service.dedup_hits", "service.completed"
                ),
            )
            return job
        try:
            self.queue.submit(job)
        except QuotaExceeded:
            with self._jobs_lock:
                del self._jobs[job.job_id]
            self._count("service.quota_rejections")
            raise
        self._persist(job)
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def get_job(self, job_id: str) -> Optional[Job]:
        """The job with ``job_id``, if known."""
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def list_jobs(self) -> List[Job]:
        """Every known job, oldest submission first."""
        with self._jobs_lock:
            return list(self._jobs.values())

    def manifest(self) -> dict:
        """Metrics manifest with the ``service.*`` counters folded in."""
        with self._metrics_lock:
            self.metrics.gauge("service.jobs_known", len(self._jobs))
            self.metrics.gauge("service.queue_depth", self.queue.depth())
            self.metrics.gauge("service.running", self.queue.running())
            snapshot = self.metrics.snapshot()
            return build_manifest(
                self.metrics,
                command="service",
                engine=self.config.engine,
                jobs=self.config.jobs,
                wall_seconds=perf_counter() - self._started,
                extra={
                    "backend": self.config.backend or "pool",
                    # The one-shot CLI writes counters as separate JSONL
                    # records; a long-lived service serves one document,
                    # so the counters/gauges ride in the manifest itself
                    # (clients assert on e.g. ``service.dedup_hits``).
                    "counters": snapshot["counters"],
                    "gauges": snapshot["gauges"],
                },
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set() and not self._draining.is_set():
            job = self.queue.take(timeout=0.25)
            if job is None:
                continue
            try:
                if job.deadline_passed:
                    # Load shedding: the deadline budget was spent while
                    # the job sat queued (quota backlog, restart outage).
                    # Executing it now can only delay jobs someone still
                    # wants.
                    job.mark_shed(
                        before_notify=lambda: self._finalize(
                            job, "service.shed_jobs"
                        )
                    )
                    continue
                self._execute(job)
            except Exception as error:  # noqa: BLE001 - dispatcher survival
                # _execute isolates batch failures itself; anything that
                # still escapes (e.g. an IO error persisting a record)
                # must fail THIS job, not kill the dispatcher thread and
                # silently wedge every job behind it.
                if not job.finished:
                    try:
                        job.mark_failed(
                            f"{type(error).__name__}: {error}",
                            before_notify=lambda: self._finalize(
                                job, "service.failed"
                            ),
                        )
                    except Exception:  # noqa: BLE001 - still wake waiters
                        job.mark_failed(f"{type(error).__name__}: {error}")
            finally:
                self.queue.release(job)
                try:
                    self._persist(job)
                except OSError:
                    pass  # backstop write; terminal states already persisted

    def _execute(self, job: Job) -> None:
        """Run one job to a terminal state via the store's claim protocol."""
        job.mark_running()
        self._persist(job)
        injector = active_injector()
        if injector is not None and injector.service_kill_now(
            job.batch_key, job.dispatch_attempts - 1
        ):
            # Simulated kill -9 mid-dispatch.  The record (just
            # persisted, with the bumped dispatch counter) and the job's
            # checkpoint ledger are the recovery story; only a process
            # marked via faults.mark_service_process ever gets here.
            os._exit(CRASH_EXIT_CODE)
        while True:
            outcome = self.store.claim(job.batch_key)
            if outcome == ResultStore.PUBLISHED:
                job.mark_done(
                    self.store.get(job.batch_key),
                    dedup=True,
                    before_notify=lambda: self._finalize(
                        job, "service.dedup_hits", "service.completed"
                    ),
                )
                return
            if outcome == ResultStore.WAIT:
                body = self.store.wait(job.batch_key, timeout=1.0)
                if body is not None:
                    job.mark_done(
                        body,
                        dedup=True,
                        before_notify=lambda: self._finalize(
                            job, "service.dedup_hits", "service.completed"
                        ),
                    )
                    return
                # Owner failed or is still running: re-claim (we may be
                # promoted to owner and run the batch ourselves).
                continue
            break  # OWNER: run it below.
        try:
            body = self._run_batch(job)
        except Exception as error:  # noqa: BLE001 - job isolation boundary
            self.store.release(job.batch_key)
            job.mark_failed(
                f"{type(error).__name__}: {error}",
                before_notify=lambda: self._finalize(job, "service.failed"),
            )
            return
        self.store.publish(job.batch_key, body)
        job.mark_done(
            body,
            before_notify=lambda: self._finalize(job, "service.completed"),
        )

    def _run_batch(self, job: Job) -> str:
        """Execute the job's batch; returns the canonical result body."""
        options = job.options
        registry = MetricsRegistry()
        ledger = self._ledger_path(job)

        def on_result(index: int, result, elapsed: float) -> None:
            job.add_event(
                "result",
                index=index,
                label=job.specs[index]["label"],
                normalized_lifetime=result.normalized_lifetime,
                elapsed=elapsed,
            )

        batch = run_batch(
            [RunSpec.from_dict(spec) for spec in job.specs],
            ExperimentConfig(**job.config),
            jobs=self.config.jobs,
            cache=self.cache,
            engine=str(options.get("engine", self.config.engine)),
            policy=self.config.policy,
            checkpoint=ledger,
            metrics=registry,
            trials_per_task=options.get("trials_per_task"),
            backend=self.config.backend,
            on_result=on_result,
        )
        body = batch.to_json()
        with self._metrics_lock:
            self.metrics.merge_snapshot(registry.snapshot())
        # The ledger only matters while the job can still be interrupted;
        # afterwards its durable record carries the result.
        ledger.unlink(missing_ok=True)
        return body

    def _ledger_path(self, job: Job) -> Path:
        return derive_checkpoint_path(
            "service",
            {"batch": job.batch_key},
            root=self.ledgers_dir,
            run_id=job.job_id,
        )

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def _finalize(self, job: Job, *counters: str) -> None:
        """Terminal-state side effects (record + counters).

        Runs as a ``before_notify`` hook inside the job's condition, so
        by the time any ``wait()``/streamer observes the terminal state,
        the durable record and the service counters already reflect it.
        """
        self._persist(job)
        for name in counters:
            self._count(name)

    def _persist(self, job: Job) -> None:
        """Write the job's durable record (write-then-rename).

        Serialized on the job's record lock: the submitting thread and
        a dispatcher can both persist the same job concurrently, and
        without the lock they would collide on the temp file (same pid,
        same name) or land a stale snapshot over a newer one.
        """
        with job.record_lock:
            self.records_dir.mkdir(parents=True, exist_ok=True)
            path = self.records_dir / f"{job.job_id}.json"
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(job.to_record(), indent=2))
            tmp.replace(path)

    def _resume(self) -> None:
        """Reload durable jobs; interrupted ones re-enter the queue.

        Completed bodies re-publish into the result store so dedup
        survives restarts; ``queued``/``running`` jobs restart as
        ``queued`` and their checkpoint ledgers (keyed by job id) turn
        the re-run into a resume of the already-finished members.
        """
        for path in sorted(self.records_dir.glob("j-*.json")):
            try:
                job = Job.from_record(json.loads(path.read_text()))
            except (OSError, ValueError, KeyError, TypeError):
                continue  # torn record: the job is lost, not the service
            with self._jobs_lock:
                self._jobs[job.job_id] = job
            if job.status == "done" and job.result_text is not None:
                if self.store.get(job.batch_key) is None:
                    self.store.publish(job.batch_key, job.result_text)
                continue
            if job.finished:
                continue
            try:
                self.queue.submit(job)
                self._count("service.resumed")
            except QuotaExceeded as error:
                job.mark_failed(str(error))
                self._persist(job)

    def _count(self, name: str, value: int = 1) -> None:
        with self._metrics_lock:
            self.metrics.inc(name, value)
