"""Job records: the unit of work the service queues, runs, and serves.

A :class:`Job` is one submitted ``RunSpec`` batch with an identity, a
tenant, a status machine, and an append-only event stream that clients
poll or stream as NDJSON.  Jobs are plain threaded objects (a
``Condition`` guards every mutation) so the synchronous core is testable
without an event loop; the asyncio HTTP layer bridges in with
``asyncio.to_thread``.

Status machine::

    queued -> running -> done
                      -> failed

plus the O(1) shortcut ``queued -> done`` when the shared result store
already holds the batch's body (a dedup hit).  Every transition and
every per-spec result appends one event, so a streaming client sees the
job's whole history regardless of when it connects.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, field
from time import monotonic, time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Legal job states.
STATUSES = ("queued", "running", "done", "failed")


def new_job_id() -> str:
    """Fresh opaque job identifier (``j-`` + 12 hex chars)."""
    return "j-" + uuid.uuid4().hex[:12]


@dataclass
class Job:
    """One submitted batch, from acceptance to served results.

    Attributes
    ----------
    job_id:
        Opaque identity; also keys the job's durable record and its
        checkpoint ledger (so a restarted service resumes it).
    tenant:
        Submitting tenant (fairness/quota bucket).
    specs:
        The batch, as plain spec dicts (the wire format).
    config:
        Device-configuration overrides, as a plain dict.
    options:
        Execution options (engine, trials_per_task, ...).
    batch_key:
        Content key of (config, options, specs) -- the dedup identity
        shared with the result store.
    deadline_seconds:
        Optional per-request deadline budget, measured from
        ``submitted_at``.  A job still *queued* past its deadline is
        shed at dispatch instead of executed -- the client stopped
        caring, so burning a dispatcher on it only delays live jobs.
    submitted_at:
        Wall-clock submission instant (``time.time()``; wall clock
        because the deadline must survive a service restart, which
        resets any monotonic epoch).
    dispatch_attempts:
        How many times a dispatcher has started this job; durable, so a
        restarted service re-rolls per-dispatch fault decisions (e.g.
        ``service-kill``) under a fresh attempt number.
    """

    tenant: str
    specs: Sequence[dict]
    config: Dict
    options: Dict
    batch_key: str
    job_id: str = field(default_factory=new_job_id)
    status: str = "queued"
    error: str = ""
    dedup_hit: bool = False
    result_text: Optional[str] = None
    deadline_seconds: Optional[float] = None
    submitted_at: float = field(default_factory=time)
    dispatch_attempts: int = 0
    shed: bool = False

    def __post_init__(self) -> None:
        self._condition = threading.Condition()
        self._events: List[dict] = []
        self.add_event("queued", tenant=self.tenant, specs=len(self.specs))

    # ------------------------------------------------------------------
    # Event stream
    # ------------------------------------------------------------------

    def add_event(self, kind: str, **fields: object) -> None:
        """Append one event and wake every waiting streamer."""
        with self._condition:
            self._append_event_locked(kind, **fields)

    def _append_event_locked(self, kind: str, **fields: object) -> None:
        event = {"seq": len(self._events), "event": kind, "job_id": self.job_id}
        event.update(fields)
        self._events.append(event)
        self._condition.notify_all()

    def wait_events(self, cursor: int, timeout: float) -> Tuple[List[dict], bool]:
        """Events past ``cursor`` (blocking up to ``timeout`` for news).

        Returns ``(events, finished)``; ``finished`` means the job has
        reached a terminal state *and* every event has been handed out,
        so a streamer can close the connection.
        """
        deadline_waited = False
        with self._condition:
            while len(self._events) <= cursor and not self.finished and not deadline_waited:
                deadline_waited = not self._condition.wait(timeout)
            events = self._events[cursor:]
            done = self.finished and cursor + len(events) >= len(self._events)
            return events, done

    @property
    def events(self) -> List[dict]:
        """Snapshot of the full event list."""
        with self._condition:
            return list(self._events)

    @property
    def record_lock(self) -> threading.Condition:
        """Serializes this job's durable-record writers.

        Reentrant (a ``before_notify`` hook already holds it), and the
        same lock that guards the job's state: a writer that acquires
        it snapshots the *current* state, so concurrent writers (the
        submitting thread racing a dispatcher) can neither collide on
        the temp file nor overwrite a newer record with a stale one.
        """
        return self._condition

    # ------------------------------------------------------------------
    # Status machine
    # ------------------------------------------------------------------

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in ("done", "failed")

    @property
    def deadline_passed(self) -> bool:
        """Whether the job's deadline budget is already spent."""
        if self.deadline_seconds is None:
            return False
        return time() > self.submitted_at + self.deadline_seconds

    def mark_running(self) -> None:
        self.status = "running"
        self.dispatch_attempts += 1
        self.add_event("started", dispatch=self.dispatch_attempts)

    def mark_shed(
        self,
        *,
        before_notify: Optional[Callable[[], None]] = None,
    ) -> None:
        """Fail the job as *shed*: its deadline passed while queued.

        A distinct event kind (and ``shed`` flag in the status document)
        separates "the service gave up admitting work it could no longer
        deliver in time" from an execution failure.
        """
        with self._condition:
            self.error = (
                f"shed: deadline of {self.deadline_seconds:g}s expired "
                "before dispatch"
            )
            self.status = "failed"
            self.shed = True
            if before_notify is not None:
                before_notify()
            self._append_event_locked(
                "shed", deadline_seconds=self.deadline_seconds
            )

    def mark_done(
        self,
        result_text: str,
        *,
        dedup: bool = False,
        before_notify: Optional[Callable[[], None]] = None,
    ) -> None:
        """Transition to ``done``.

        ``before_notify`` (e.g. persist-the-record, bump counters) runs
        with the terminal fields set but *before* any waiter can observe
        them -- the condition is held across the whole transition, so a
        ``wait()`` that returns is guaranteed to see its side effects.
        """
        with self._condition:
            self.result_text = result_text
            self.dedup_hit = dedup
            self.status = "done"
            if before_notify is not None:
                before_notify()
            self._append_event_locked("done", dedup=dedup, bytes=len(result_text))

    def mark_failed(
        self,
        error: str,
        *,
        before_notify: Optional[Callable[[], None]] = None,
    ) -> None:
        """Transition to ``failed`` (same ordering contract as mark_done)."""
        with self._condition:
            self.error = error
            self.status = "failed"
            if before_notify is not None:
                before_notify()
            self._append_event_locked("failed", error=error)

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the job finishes; returns whether it did."""
        deadline = None if timeout is None else monotonic() + timeout
        with self._condition:
            while not self.finished:
                remaining = None if deadline is None else deadline - monotonic()
                if remaining is not None and remaining <= 0:
                    break
                self._condition.wait(remaining)
            return self.finished

    # ------------------------------------------------------------------
    # Serialization (status documents and durable records)
    # ------------------------------------------------------------------

    def describe(self) -> dict:
        """Client-facing status document."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "status": self.status,
            "specs": len(self.specs),
            "events": len(self._events),
            "dedup_hit": self.dedup_hit,
            "shed": self.shed,
            "deadline_seconds": self.deadline_seconds,
            "error": self.error,
        }

    def to_record(self) -> dict:
        """Durable on-disk form (results included once done)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "specs": list(self.specs),
            "config": dict(self.config),
            "options": dict(self.options),
            "batch_key": self.batch_key,
            "status": self.status,
            "error": self.error,
            "dedup_hit": self.dedup_hit,
            "result": self.result_text,
            "deadline_seconds": self.deadline_seconds,
            "submitted_at": self.submitted_at,
            "dispatch_attempts": self.dispatch_attempts,
            "shed": self.shed,
        }

    @classmethod
    def from_record(cls, record: dict) -> "Job":
        """Rebuild a job from its durable record.

        A job interrupted mid-flight (``queued``/``running`` at crash
        time) restarts as ``queued``; its checkpoint ledger makes the
        re-run resume rather than recompute.
        """
        deadline = record.get("deadline_seconds")
        job = cls(
            tenant=record["tenant"],
            specs=record["specs"],
            config=record.get("config", {}),
            options=record.get("options", {}),
            batch_key=record["batch_key"],
            job_id=record["job_id"],
            deadline_seconds=None if deadline is None else float(deadline),
            submitted_at=float(record.get("submitted_at", time())),
            dispatch_attempts=int(record.get("dispatch_attempts", 0)),
        )
        status = record.get("status", "queued")
        if status == "done" and record.get("result") is not None:
            job.mark_done(record["result"], dedup=bool(record.get("dedup_hit")))
        elif status == "failed":
            job.shed = bool(record.get("shed"))
            job.mark_failed(record.get("error", "unknown failure"))
        return job
