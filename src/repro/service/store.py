"""Shared result store: the content-addressed cache promoted to dedup.

The per-task :class:`~repro.sim.cache.ResultCache` already dedups
*simulations* across tenants (identical tasks hit disk).  The service
additionally dedups whole *batches*: a published batch body is keyed by
the content of its (config, options, specs) triple, so a second tenant
submitting the identical batch is served the byte-identical body in
O(1) -- no runner dispatch, no per-task cache lookups.

The store also coalesces *in-flight* duplicates: the first job to claim
a key becomes its **owner** and runs the batch; concurrent claimants
become **waiters** and block until the owner publishes.  An owner that
fails releases the claim, promoting one waiter to owner (so a crashed
run never wedges its duplicates).  The protocol is claim -> (run ->
publish | fail -> release), with :meth:`wait` on the waiter side.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Dict, Optional, Sequence

from repro.sim.cache import canonical_json


def batch_key(config: dict, options: dict, specs: Sequence[dict]) -> str:
    """Content key of one batch submission (its dedup identity)."""
    document = canonical_json(
        {"config": dict(config), "options": dict(options), "specs": list(specs)}
    )
    return hashlib.sha256(document.encode()).hexdigest()


class ResultStore:
    """Published batch bodies plus in-flight ownership, by content key."""

    #: Claim outcomes.
    OWNER = "owner"
    WAIT = "wait"
    PUBLISHED = "published"

    def __init__(self) -> None:
        self._condition = threading.Condition()
        self._published: Dict[str, str] = {}
        self._owners: set = set()

    # ------------------------------------------------------------------
    # Fast path
    # ------------------------------------------------------------------

    def get(self, key: str) -> Optional[str]:
        """The published body for ``key``, if any (no claim taken)."""
        with self._condition:
            return self._published.get(key)

    # ------------------------------------------------------------------
    # Claim protocol
    # ------------------------------------------------------------------

    def claim(self, key: str) -> str:
        """Try to own ``key``; returns OWNER, WAIT, or PUBLISHED.

        OWNER obliges the caller to eventually :meth:`publish` or
        :meth:`release` the key.
        """
        with self._condition:
            if key in self._published:
                return self.PUBLISHED
            if key in self._owners:
                return self.WAIT
            self._owners.add(key)
            return self.OWNER

    def wait(self, key: str, timeout: Optional[float] = None) -> Optional[str]:
        """Block until ``key`` publishes or its owner releases.

        Returns the published body, or ``None`` when the owner failed
        (or the timeout lapsed) -- the caller should re-:meth:`claim`
        and may find itself promoted to owner.
        """
        with self._condition:
            while key not in self._published and key in self._owners:
                if not self._condition.wait(timeout):
                    return None
            return self._published.get(key)

    def publish(self, key: str, body: str) -> None:
        """Publish the batch body for ``key`` and wake its waiters."""
        with self._condition:
            self._published[key] = body
            self._owners.discard(key)
            self._condition.notify_all()

    def release(self, key: str) -> None:
        """Give up ownership of ``key`` without publishing (run failed)."""
        with self._condition:
            self._owners.discard(key)
            self._condition.notify_all()

    def __len__(self) -> int:
        with self._condition:
            return len(self._published)
