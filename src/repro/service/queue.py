"""Multi-tenant job queue: weighted round-robin fairness plus quotas.

The service serves many tenants from one runner, so admission and
dispatch order are policy, not accident:

* **Fairness** -- dispatch cycles tenants in weighted round-robin: a
  tenant with weight ``w`` receives up to ``w`` consecutive grants
  before the pointer advances, so a tenant that dumps 10k jobs cannot
  starve one that submits a single sweep.  Within a tenant, jobs are
  FIFO.
* **Quotas** -- ``max_queued`` bounds a tenant's waiting jobs at
  *submission* time (violations raise :class:`QuotaExceeded`, which the
  HTTP layer maps to 429 -- a clean rejection, never a hang);
  ``max_concurrent`` bounds a tenant's running jobs at *dispatch* time
  (the dispatcher simply skips the tenant until a slot frees).

The queue is a plain threaded structure (one ``Condition``), shared by
the submission path and the dispatcher threads.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from collections import deque

from repro.service.jobs import Job


@dataclass(frozen=True)
class TenantQuota:
    """Admission and concurrency limits for one tenant."""

    weight: int = 1
    max_queued: int = 64
    max_concurrent: int = 4

    def __post_init__(self) -> None:
        if self.weight < 1:
            raise ValueError(f"weight must be >= 1, got {self.weight}")
        if self.max_queued < 1:
            raise ValueError(f"max_queued must be >= 1, got {self.max_queued}")
        if self.max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {self.max_concurrent}"
            )


class QuotaExceeded(Exception):
    """A submission violated its tenant's ``max_queued`` quota."""

    def __init__(self, tenant: str, queued: int, limit: int) -> None:
        self.tenant = tenant
        self.queued = queued
        self.limit = limit
        super().__init__(
            f"tenant {tenant!r} has {queued} queued jobs (quota {limit}); "
            "retry after some complete"
        )


class JobQueue:
    """Weighted round-robin queue of :class:`Job`\\ s across tenants."""

    def __init__(
        self,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        self._default_quota = default_quota or TenantQuota()
        self._quotas: Dict[str, TenantQuota] = dict(quotas or {})
        self._condition = threading.Condition()
        self._queues: Dict[str, Deque[Job]] = {}
        self._order: List[str] = []  # round-robin ring of tenant names
        self._pointer = 0  # index into _order of the tenant holding the turn
        self._credit = 0  # grants already consumed from the turn's weight
        self._running: Dict[str, int] = {}
        self._closed = False

    def quota_for(self, tenant: str) -> TenantQuota:
        """The quota governing ``tenant``."""
        return self._quotas.get(tenant, self._default_quota)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        """Install a per-tenant quota override."""
        with self._condition:
            self._quotas[tenant] = quota

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue ``job``; raises :class:`QuotaExceeded` over quota."""
        quota = self.quota_for(job.tenant)
        with self._condition:
            if self._closed:
                raise RuntimeError("queue is closed")
            backlog = self._queues.setdefault(job.tenant, deque())
            if job.tenant not in self._order:
                self._order.append(job.tenant)
            if len(backlog) >= quota.max_queued:
                raise QuotaExceeded(job.tenant, len(backlog), quota.max_queued)
            backlog.append(job)
            self._condition.notify()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _eligible(self, tenant: str) -> bool:
        return bool(self._queues.get(tenant)) and self._running.get(
            tenant, 0
        ) < self.quota_for(tenant).max_concurrent

    def _take_locked(self) -> Optional[Job]:
        """One weighted-round-robin grant (caller holds the lock).

        Starts from the tenant currently holding the turn and scans the
        ring once; the first eligible tenant is granted.  A grant
        consumes one unit of the turn-holder's weight; exhausting the
        weight (or granting to a different tenant) advances the pointer,
        so bursts from one tenant interleave with everyone else at the
        ratio of their weights.
        """
        if not self._order:
            return None
        for step in range(len(self._order)):
            slot = (self._pointer + step) % len(self._order)
            tenant = self._order[slot]
            if not self._eligible(tenant):
                continue
            if slot != self._pointer:
                self._pointer = slot
                self._credit = 0
            job = self._queues[tenant].popleft()
            self._running[tenant] = self._running.get(tenant, 0) + 1
            self._credit += 1
            if self._credit >= self.quota_for(tenant).weight:
                self._pointer = (self._pointer + 1) % len(self._order)
                self._credit = 0
            return job
        return None

    def take(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Next job per fairness policy; ``None`` on timeout or close."""
        with self._condition:
            job = self._take_locked()
            while job is None and not self._closed:
                if not self._condition.wait(timeout):
                    return None
                job = self._take_locked()
            return job

    def release(self, job: Job) -> None:
        """Return ``job``'s concurrency slot (it finished or failed)."""
        with self._condition:
            count = self._running.get(job.tenant, 0)
            self._running[job.tenant] = max(count - 1, 0)
            # Freeing a slot can make a skipped tenant eligible again.
            self._condition.notify()

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------

    def depth(self, tenant: Optional[str] = None) -> int:
        """Waiting jobs for ``tenant`` (or every tenant)."""
        with self._condition:
            if tenant is not None:
                return len(self._queues.get(tenant, ()))
            return sum(len(backlog) for backlog in self._queues.values())

    def running(self, tenant: Optional[str] = None) -> int:
        """In-flight jobs for ``tenant`` (or every tenant)."""
        with self._condition:
            if tenant is not None:
                return self._running.get(tenant, 0)
            return sum(self._running.values())

    def close(self) -> None:
        """Wake every blocked :meth:`take` with ``None`` (shutdown)."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()
