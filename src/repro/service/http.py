"""Asyncio HTTP front end over :class:`~repro.service.core.SimService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` --
stdlib only, no framework -- exposing the job API:

========  ==============================  =======================================
method    path                            semantics
========  ==============================  =======================================
GET       ``/healthz``                    liveness probe
POST      ``/v1/jobs``                    submit a batch; 202 + job document
GET       ``/v1/jobs``                    list known jobs
GET       ``/v1/jobs/<id>``               one job's status document
GET       ``/v1/jobs/<id>/events``        NDJSON event stream (chunked); closes
                                          when the job finishes.  ``?since=N``
                                          skips already-seen events.
GET       ``/v1/jobs/<id>/results``       the final body -- byte-identical to a
                                          direct ``run_batch().to_json()``;
                                          409 while the job is still running
GET       ``/v1/metrics``                 metrics manifest (``service.*`` et al.)
========  ==============================  =======================================

Errors are JSON ``{"error": ...}``: 400 validation, 404 unknown, 429
quota (clean rejection, never a hang), 503 + ``Retry-After`` while the
service drains, 500 otherwise.  ``/healthz`` reports
``{"status": "draining"}`` once a drain begins, so load balancers fail
the instance out before its listener goes away.

The core is synchronous/threaded; every call into it that can block
(``submit`` dispatches nothing but ``wait_events`` does block) crosses
via ``asyncio.to_thread`` so the event loop keeps serving other
clients while a stream waits for the next result.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.core import ServiceUnavailable, SimService, ValidationError
from repro.service.queue import QuotaExceeded

#: Largest accepted request body (a spec batch is small; this is DoS hygiene).
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Idle seconds between keepalive lines on an event stream.  Lets a
#: client with a read timeout longer than this distinguish "the job is
#: quiet" from "the server is dead".
STREAM_KEEPALIVE_SECONDS = 5.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Optional[dict] = None,
) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
    )
    for name, value in (extra_headers or {}).items():
        head += f"{name}: {value}\r\n"
    head += "\r\n"
    return head.encode() + body


def _json_response(
    status: int, payload: dict, extra_headers: Optional[dict] = None
) -> bytes:
    return _response(
        status, (json.dumps(payload) + "\n").encode(), extra_headers=extra_headers
    )


def _error(
    status: int, message: str, extra_headers: Optional[dict] = None
) -> bytes:
    return _json_response(status, {"error": message}, extra_headers=extra_headers)


class ServiceServer:
    """One listening HTTP server bound to a :class:`SimService`."""

    def __init__(
        self, service: SimService, host: str = "127.0.0.1", port: int = 8437
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (service must be started)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        # Port 0 means "any free port"; reflect what the OS picked.
        if self._server.sockets:
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            parsed = await self._read_request(reader)
            if parsed is None:
                writer.write(_error(400, "malformed request"))
            else:
                method, path, query, headers, body = parsed
                await self._route(writer, method, path, query, headers, body)
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to serve
        except Exception as error:  # noqa: BLE001 - connection isolation
            try:
                writer.write(_error(500, f"{type(error).__name__}: {error}"))
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, dict, dict, bytes]]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split(" ")
        if len(parts) != 3:
            return None
        method, target, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            return None
        body = await reader.readexactly(length) if length else b""
        split = urlsplit(target)
        query = {
            name: values[-1] for name, values in parse_qs(split.query).items()
        }
        return method.upper(), split.path.rstrip("/") or "/", query, headers, body

    async def _route(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: dict,
        headers: dict,
        body: bytes,
    ) -> None:
        if path == "/healthz" and method == "GET":
            status = "draining" if self.service.draining else "ok"
            writer.write(_json_response(200, {"status": status}))
            return
        if path == "/v1/metrics" and method == "GET":
            manifest = await asyncio.to_thread(self.service.manifest)
            writer.write(_json_response(200, manifest))
            return
        if path == "/v1/jobs":
            if method == "POST":
                await self._submit(writer, headers, body)
            elif method == "GET":
                jobs = [job.describe() for job in self.service.list_jobs()]
                writer.write(_json_response(200, {"jobs": jobs}))
            else:
                writer.write(_error(405, f"{method} not allowed on {path}"))
            return
        if path.startswith("/v1/jobs/"):
            remainder = path[len("/v1/jobs/"):]
            job_id, _, verb = remainder.partition("/")
            job = self.service.get_job(job_id)
            if job is None:
                writer.write(_error(404, f"unknown job {job_id!r}"))
                return
            if method != "GET":
                writer.write(_error(405, f"{method} not allowed on {path}"))
                return
            if verb == "":
                writer.write(_json_response(200, job.describe()))
            elif verb == "events":
                await self._stream_events(writer, job, query)
            elif verb == "results":
                if job.status == "failed":
                    writer.write(_error(409, f"job failed: {job.error}"))
                elif job.result_text is None:
                    writer.write(
                        _error(409, f"job is {job.status}; results not ready")
                    )
                else:
                    # The exact canonical body -- no re-serialization, so
                    # byte-identity with a direct run_batch is structural.
                    writer.write(_response(200, job.result_text.encode()))
            else:
                writer.write(_error(404, f"unknown resource {verb!r}"))
            return
        writer.write(_error(404, f"unknown path {path!r}"))

    async def _submit(
        self, writer: asyncio.StreamWriter, headers: dict, body: bytes
    ) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            writer.write(_error(400, f"request body is not JSON: {error}"))
            return
        tenant = headers.get("x-tenant") or (
            payload.get("tenant") if isinstance(payload, dict) else None
        ) or "default"
        try:
            job = await asyncio.to_thread(self.service.submit, tenant, payload)
        except ValidationError as error:
            writer.write(_error(400, str(error)))
            return
        except QuotaExceeded as error:
            writer.write(_error(429, str(error)))
            return
        except ServiceUnavailable as error:
            writer.write(
                _error(
                    503,
                    str(error),
                    extra_headers={"Retry-After": f"{error.retry_after:g}"},
                )
            )
            return
        writer.write(_json_response(202, job.describe()))

    async def _stream_events(
        self, writer: asyncio.StreamWriter, job, query: dict
    ) -> None:
        """Chunked NDJSON: one event object per line, until the job ends."""
        try:
            cursor = max(int(query.get("since", 0)), 0)
        except ValueError:
            writer.write(_error(400, "'since' must be an integer"))
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()
        idle_since = asyncio.get_running_loop().time()
        while True:
            events, finished = await asyncio.to_thread(
                job.wait_events, cursor, 0.5
            )
            for event in events:
                line = (json.dumps(event) + "\n").encode()
                writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
            cursor += len(events)
            now = asyncio.get_running_loop().time()
            if events:
                idle_since = now
            elif not finished and now - idle_since >= STREAM_KEEPALIVE_SECONDS:
                # Keepalive rides outside the event sequence (no seq, no
                # cursor advance); clients drop it on sight.
                line = (json.dumps({"event": "keepalive"}) + "\n").encode()
                writer.write(f"{len(line):x}\r\n".encode() + line + b"\r\n")
                idle_since = now
            await writer.drain()
            if finished:
                break
        writer.write(b"0\r\n\r\n")


async def serve(
    service: SimService, host: str = "127.0.0.1", port: int = 8437
) -> None:
    """Run the HTTP API until cancelled (service lifecycle included)."""
    service.start()
    server = ServiceServer(service, host, port)
    try:
        await server.serve_forever()
    finally:
        await server.close()
        service.stop()
