"""``python -m repro.service`` -- run the simulation job API.

Example::

    python -m repro.service --port 8437 --state-dir .repro-service \\
        --jobs 4 --dispatchers 2 --max-queued 64 --max-concurrent 4

The state directory holds durable job records, per-job checkpoint
ledgers, and the shared result cache; kill the process at any instant
and a restart resumes interrupted jobs from their ledgers.

SIGTERM triggers a *graceful drain*: the server keeps answering (new
submissions get 503 + Retry-After, health reports ``draining``),
dispatchers finish the batches they already started (their ledgers
checkpoint continuously), every job record is persisted, and the
process exits 0.  SIGINT stays the abrupt path (exit 130) -- the
durable records make even that recoverable.
"""

from __future__ import annotations

import argparse
import asyncio
import signal
import sys

from repro.obs.sink import write_metrics
from repro.service.core import ServiceConfig, SimService
from repro.service.http import ServiceServer
from repro.service.queue import TenantQuota
from repro.sim.faults import mark_service_process


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP job API over the NVM spare-line simulation runner",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8437, help="bind port (0 = any free port)"
    )
    parser.add_argument(
        "--state-dir", default=".repro-service",
        help="durable state: job records, ledgers, shared cache",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per batch (1 = serial, 0 = all CPUs)",
    )
    parser.add_argument(
        "--dispatchers", type=int, default=2,
        help="concurrent batches the service runs",
    )
    parser.add_argument(
        "--backend", choices=("pool", "fabric"), default="pool",
        help="execution backend for every batch",
    )
    parser.add_argument(
        "--engine", default="fluid-batched", help="default lifetime engine"
    )
    parser.add_argument(
        "--max-queued", type=int, default=64,
        help="per-tenant cap on waiting jobs (excess submissions get 429)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=4,
        help="per-tenant cap on running jobs",
    )
    parser.add_argument(
        "--weight", type=int, default=1,
        help="default tenant weight in the round-robin",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds a SIGTERM drain waits for in-flight batches",
    )
    parser.add_argument(
        "--metrics-out", default=None,
        help="write the final metrics manifest (JSONL) here on exit -- "
        "the counters a graceful shutdown would otherwise take with it",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    # A dedicated service process arms the ``service-kill`` fault kind
    # (embedded test services never do -- a hard exit there would take
    # the test runner down).
    mark_service_process()
    service = SimService(
        ServiceConfig(
            state_dir=args.state_dir,
            jobs=args.jobs,
            backend=args.backend,
            engine=args.engine,
            dispatchers=args.dispatchers,
            default_quota=TenantQuota(
                weight=args.weight,
                max_queued=args.max_queued,
                max_concurrent=args.max_concurrent,
            ),
        )
    )

    async def run() -> int:
        service.start()
        server = ServiceServer(service, args.host, args.port)
        await server.start()
        loop = asyncio.get_running_loop()
        sigterm = asyncio.Event()
        try:
            loop.add_signal_handler(signal.SIGTERM, sigterm.set)
        except (NotImplementedError, RuntimeError):
            pass  # platform without signal-handler support: no drain path
        print(
            f"repro service listening on http://{args.host}:{server.port} "
            f"(state: {args.state_dir})",
            flush=True,
        )
        serve_task = asyncio.ensure_future(server.serve_forever())
        drain_task = asyncio.ensure_future(sigterm.wait())
        try:
            await asyncio.wait(
                (serve_task, drain_task), return_when=asyncio.FIRST_COMPLETED
            )
            if not sigterm.is_set():
                return 0
            # Graceful drain: flip to draining *while still listening*
            # (in-flight clients keep streaming; new submissions see
            # 503 + Retry-After), wait out the dispatchers, then stop.
            clean = await asyncio.to_thread(service.drain, args.drain_timeout)
            print(
                "repro service drained"
                + ("" if clean else " (timeout: in-flight work abandoned)"),
                flush=True,
            )
            return 0
        finally:
            for task in (serve_task, drain_task):
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
            await server.close()
            service.stop()
            if args.metrics_out:
                try:
                    write_metrics(
                        args.metrics_out, service.metrics, service.manifest()
                    )
                except OSError:
                    pass  # exiting anyway; the manifest is best-effort

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
