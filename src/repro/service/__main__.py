"""``python -m repro.service`` -- run the simulation job API.

Example::

    python -m repro.service --port 8437 --state-dir .repro-service \\
        --jobs 4 --dispatchers 2 --max-queued 64 --max-concurrent 4

The state directory holds durable job records, per-job checkpoint
ledgers, and the shared result cache; kill the process at any instant
and a restart resumes interrupted jobs from their ledgers.
"""

from __future__ import annotations

import argparse
import asyncio
import sys

from repro.service.core import ServiceConfig, SimService
from repro.service.http import ServiceServer
from repro.service.queue import TenantQuota


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="HTTP job API over the NVM spare-line simulation runner",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8437, help="bind port (0 = any free port)"
    )
    parser.add_argument(
        "--state-dir", default=".repro-service",
        help="durable state: job records, ledgers, shared cache",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per batch (1 = serial, 0 = all CPUs)",
    )
    parser.add_argument(
        "--dispatchers", type=int, default=2,
        help="concurrent batches the service runs",
    )
    parser.add_argument(
        "--backend", choices=("pool", "fabric"), default="pool",
        help="execution backend for every batch",
    )
    parser.add_argument(
        "--engine", default="fluid-batched", help="default lifetime engine"
    )
    parser.add_argument(
        "--max-queued", type=int, default=64,
        help="per-tenant cap on waiting jobs (excess submissions get 429)",
    )
    parser.add_argument(
        "--max-concurrent", type=int, default=4,
        help="per-tenant cap on running jobs",
    )
    parser.add_argument(
        "--weight", type=int, default=1,
        help="default tenant weight in the round-robin",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    service = SimService(
        ServiceConfig(
            state_dir=args.state_dir,
            jobs=args.jobs,
            backend=args.backend,
            engine=args.engine,
            dispatchers=args.dispatchers,
            default_quota=TenantQuota(
                weight=args.weight,
                max_queued=args.max_queued,
                max_concurrent=args.max_concurrent,
            ),
        )
    )

    async def run() -> None:
        service.start()
        server = ServiceServer(service, args.host, args.port)
        await server.start()
        print(
            f"repro service listening on http://{args.host}:{server.port} "
            f"(state: {args.state_dir})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()
            service.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
