"""Line fault models.

The baseline fault model declares a line dead the moment its cumulative
wear reaches its endurance -- the paper's model, where endurance is the
number of writes a line can absorb.

:class:`ECPBudget` extends this with an ECP-style salvaging budget
(Schechter et al., ISCA'10, discussed in the paper's Section 2.2.2): each
line tolerates ``correctable_failures`` additional endurance quanta after
its nominal wear-out before dying, modelling error-correcting pointers
that repair the first few failed cells.  The paper argues salvaging alone
cannot resist UAA because whole weak lines fail together; the extension
benchmarks make that argument quantitative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validation import require_fraction


@dataclass(frozen=True)
class FaultModel:
    """Baseline wear-out fault model: dead when ``wear >= endurance``."""

    def effective_endurance(self, endurance: np.ndarray) -> np.ndarray:
        """Wear budget each line can absorb before being declared dead."""
        return np.asarray(endurance, dtype=float)

    def describe(self) -> str:
        """One-line human-readable description."""
        return "wear-out at nominal endurance"


@dataclass(frozen=True)
class ECPBudget(FaultModel):
    """ECP-style salvaging: per-line correction budget extends endurance.

    ECP-n corrects ``n`` failed cells per line.  Cell failures within a
    line are spread around the line's nominal endurance; correcting the
    first ``n`` of them stretches the usable life of the line by roughly
    ``n / cells_per_line`` of the gap between the line's first and last
    cell failure.  We model that stretch as a relative endurance bonus:

    ``effective = endurance * (1 + bonus_per_pointer * pointers)``

    with the paper-cited ECP-6 absorbing six failures at 11.9% capacity
    overhead.

    Parameters
    ----------
    pointers:
        Number of correctable cell failures per line (ECP-n).
    bonus_per_pointer:
        Relative endurance gain each pointer buys (default 1%, matching
        the small intra-line spread of cell lifetimes).
    """

    pointers: int = 6
    bonus_per_pointer: float = 0.01

    def __post_init__(self) -> None:
        if self.pointers < 0:
            raise ValueError(f"pointers must be >= 0, got {self.pointers}")
        require_fraction(self.bonus_per_pointer, "bonus_per_pointer")

    def effective_endurance(self, endurance: np.ndarray) -> np.ndarray:
        base = np.asarray(endurance, dtype=float)
        return base * (1.0 + self.bonus_per_pointer * self.pointers)

    @property
    def capacity_overhead(self) -> float:
        """Fractional capacity cost of the ECP metadata (11.9% for ECP-6).

        Per Schechter et al.: ECP-n on a 512-bit line stores n correction
        entries of 10 bits (a 9-bit cell pointer plus the replacement
        cell) and one full flag: ``(10 n + 1) / 512``, i.e. 61/512 = 11.9%
        for ECP-6.
        """
        return (10 * self.pointers + 1) / 512.0

    def describe(self) -> str:
        return (
            f"ECP-{self.pointers} salvaging "
            f"(+{self.bonus_per_pointer * self.pointers:.1%} endurance, "
            f"{self.capacity_overhead:.1%} capacity overhead)"
        )
