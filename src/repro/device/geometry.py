"""Device geometry: capacity, line and region arithmetic.

The paper's evaluation device is a 1 GB NVM bank consisting of 2048
regions; main-memory NVM lines are 64 B (one cache line).  All address
arithmetic between the three granularities (byte, line, region) lives
here, including the bit widths that the mapping-table overhead formulas of
Section 4.4 depend on (``log2 N`` bits per line address, ``log2 R`` per
region address).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.errors import ConfigurationError
from repro.util.units import GIB, bits_required, is_power_of_two

#: The paper's evaluation bank capacity.
PAPER_CAPACITY_BYTES: int = 1 * GIB

#: The paper's evaluation region count.
PAPER_REGIONS: int = 2048

#: Main-memory NVM line size (one cache line).
DEFAULT_LINE_BYTES: int = 64


@dataclass(frozen=True)
class DeviceGeometry:
    """Shape of an NVM bank.

    Parameters
    ----------
    total_lines:
        Number of physical lines ``N``.
    regions:
        Number of equal-size regions ``R``; must divide ``total_lines``.
    line_bytes:
        Bytes per line (64 B for main-memory NVM).
    """

    total_lines: int
    regions: int
    line_bytes: int = DEFAULT_LINE_BYTES

    def __post_init__(self) -> None:
        if self.total_lines <= 0:
            raise ConfigurationError(f"total_lines must be > 0, got {self.total_lines}")
        if self.regions <= 0:
            raise ConfigurationError(f"regions must be > 0, got {self.regions}")
        if self.total_lines % self.regions != 0:
            raise ConfigurationError(
                f"regions ({self.regions}) must divide total_lines ({self.total_lines})"
            )
        if self.line_bytes <= 0:
            raise ConfigurationError(f"line_bytes must be > 0, got {self.line_bytes}")

    @classmethod
    def paper_bank(cls) -> "DeviceGeometry":
        """The paper's full-scale 1 GB / 2048-region / 64 B-line bank."""
        total_lines = PAPER_CAPACITY_BYTES // DEFAULT_LINE_BYTES
        return cls(total_lines=total_lines, regions=PAPER_REGIONS)

    @classmethod
    def scaled_bank(cls, lines_per_region: int, regions: int = PAPER_REGIONS) -> "DeviceGeometry":
        """A reduced-scale bank keeping the paper's region count.

        Normalized lifetime is scale-invariant in the number of lines per
        region (property-tested), so experiments default to a bank small
        enough to simulate full lifetimes in seconds.
        """
        return cls(total_lines=lines_per_region * regions, regions=regions)

    @property
    def lines_per_region(self) -> int:
        """Lines in each region."""
        return self.total_lines // self.regions

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.total_lines * self.line_bytes

    @property
    def line_address_bits(self) -> int:
        """Bits per physical line address (``log2 N`` of Section 4.4)."""
        return bits_required(self.total_lines)

    @property
    def region_address_bits(self) -> int:
        """Bits per region address (``log2 R`` of Section 4.4)."""
        return bits_required(self.regions)

    @property
    def intra_region_bits(self) -> int:
        """Bits addressing a line within its region."""
        return bits_required(self.lines_per_region)

    def region_of(self, line: int) -> int:
        """Region id owning physical line ``line``."""
        self.check_line(line)
        return line // self.lines_per_region

    def line_offset(self, line: int) -> int:
        """Offset of ``line`` within its region."""
        self.check_line(line)
        return line % self.lines_per_region

    def line_of(self, region: int, offset: int) -> int:
        """Physical line id for (region, intra-region offset)."""
        self.check_region(region)
        if not 0 <= offset < self.lines_per_region:
            raise_address = f"offset {offset} out of range [0, {self.lines_per_region})"
            from repro.device.errors import AddressError

            raise AddressError(raise_address)
        return region * self.lines_per_region + offset

    def region_slice(self, region: int) -> slice:
        """Slice of line ids owned by ``region``."""
        self.check_region(region)
        per = self.lines_per_region
        return slice(region * per, (region + 1) * per)

    def check_line(self, line: int) -> None:
        """Raise :class:`AddressError` unless ``line`` is a valid line id."""
        if not 0 <= line < self.total_lines:
            from repro.device.errors import AddressError

            raise AddressError(f"line {line} out of range [0, {self.total_lines})")

    def check_region(self, region: int) -> None:
        """Raise :class:`AddressError` unless ``region`` is a valid region id."""
        if not 0 <= region < self.regions:
            from repro.device.errors import AddressError

            raise AddressError(f"region {region} out of range [0, {self.regions})")

    @property
    def is_power_of_two_sized(self) -> bool:
        """Whether lines and regions are powers of two (hardware-friendly)."""
        return is_power_of_two(self.total_lines) and is_power_of_two(self.regions)
