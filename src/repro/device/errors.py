"""Exception hierarchy for the repro library.

All library-specific exceptions derive from :class:`ReproError` so callers
can catch the whole family; the device-lifetime exceptions additionally
carry the state needed to compute lifetimes at the failure point.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all repro-library errors."""


class AddressError(ReproError, IndexError):
    """An address (line, region, slot) was outside its valid range."""


class LineWornOutError(ReproError):
    """A write targeted a line whose endurance is exhausted.

    Raised by :class:`~repro.device.bank.NVMBank` in strict mode when a
    caller writes a dead line without a replacement path.
    """

    def __init__(self, line: int, wear: float, endurance: float) -> None:
        super().__init__(
            f"line {line} is worn out (wear {wear:.0f} >= endurance {endurance:.0f})"
        )
        self.line = line
        self.wear = wear
        self.endurance = endurance


class DeviceWornOutError(ReproError):
    """The device can no longer service writes (paper Section 4.2).

    Signalled when a wear-out failure cannot be repaired: the spare pool is
    exhausted, a dedicated SWR replacement has itself died, or (for
    no-protection devices) any line fails.
    """

    def __init__(self, reason: str, total_writes_served: float) -> None:
        super().__init__(
            f"device worn out after {total_writes_served:.0f} served writes: {reason}"
        )
        self.reason = reason
        self.total_writes_served = total_writes_served


class ConfigurationError(ReproError, ValueError):
    """An experiment configuration is inconsistent or out of range."""
