"""The NVM bank: vectorised per-line wear state and failure detection.

:class:`NVMBank` is the mutable heart of the device substrate.  It owns
the per-line cumulative wear array, answers remaining-budget queries, and
reports the *newly dead* lines after every wear application so that the
sparing layer can trigger the replacement procedure of Section 4.2.

Wear is measured in writes: one user write to a line adds 1 to its wear
(remap swaps add their extra writes explicitly, reproducing Figure 2's
accounting).
"""

from __future__ import annotations

import numpy as np

from repro.device.errors import AddressError, LineWornOutError
from repro.device.faults import FaultModel
from repro.device.geometry import DeviceGeometry
from repro.endurance.emap import EnduranceMap


class NVMBank:
    """Mutable wear state for a physical NVM bank.

    Parameters
    ----------
    emap:
        The per-line endurance map (also fixes the region structure).
    geometry:
        Optional explicit geometry; defaults to one derived from ``emap``
        with 64 B lines.
    fault_model:
        How nominal endurance translates to an effective wear budget
        (e.g. :class:`~repro.device.faults.ECPBudget`).
    """

    def __init__(
        self,
        emap: EnduranceMap,
        geometry: DeviceGeometry | None = None,
        fault_model: FaultModel | None = None,
    ) -> None:
        self._emap = emap
        if geometry is None:
            geometry = DeviceGeometry(total_lines=emap.lines, regions=emap.regions)
        if geometry.total_lines != emap.lines or geometry.regions != emap.regions:
            raise ValueError(
                f"geometry ({geometry.total_lines} lines / {geometry.regions} regions) "
                f"does not match endurance map ({emap.lines} lines / {emap.regions} regions)"
            )
        self._geometry = geometry
        self._fault_model = fault_model if fault_model is not None else FaultModel()
        self._endurance = self._fault_model.effective_endurance(emap.line_endurance)
        self._endurance.setflags(write=False)
        self._bonus = np.zeros(emap.lines, dtype=float)  # salvage extensions
        self._wear = np.zeros(emap.lines, dtype=float)
        self._alive = np.ones(emap.lines, dtype=bool)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def geometry(self) -> DeviceGeometry:
        """The bank's shape."""
        return self._geometry

    @property
    def endurance_map(self) -> EnduranceMap:
        """The (nominal) endurance map the bank was built from."""
        return self._emap

    @property
    def endurance(self) -> np.ndarray:
        """Effective per-line wear budgets (read-only, excludes salvage bonus)."""
        return self._endurance

    def budget(self, line: int) -> float:
        """Current total wear budget of a line, including salvage bonus."""
        self._geometry.check_line(line)
        return float(self._endurance[line] + self._bonus[line])

    @property
    def wear(self) -> np.ndarray:
        """Cumulative per-line wear; treat as read-only outside tests."""
        return self._wear

    @property
    def lines(self) -> int:
        """Total physical line count."""
        return self._emap.lines

    @property
    def total_endurance(self) -> float:
        """Sum of effective wear budgets (the normalized-lifetime denominator)."""
        return float(self._endurance.sum())

    @property
    def alive_count(self) -> int:
        """Number of lines still serviceable."""
        return int(self._alive.sum())

    @property
    def dead_count(self) -> int:
        """Number of worn-out lines."""
        return self.lines - self.alive_count

    def is_alive(self, line: int) -> bool:
        """Whether ``line`` can still absorb writes."""
        self._geometry.check_line(line)
        return bool(self._alive[line])

    def dead_lines(self) -> np.ndarray:
        """Ids of all worn-out lines."""
        return np.flatnonzero(~self._alive)

    def remaining(self, line: int | None = None) -> "float | np.ndarray":
        """Remaining wear budget for one line, or the whole array."""
        if line is None:
            return np.maximum(self._endurance + self._bonus - self._wear, 0.0)
        self._geometry.check_line(line)
        return float(max(self.budget(line) - self._wear[line], 0.0))

    def utilization(self) -> float:
        """Fraction of total endurance consumed so far.

        This is exactly the *normalized lifetime* metric at the moment the
        device fails, provided every counted write landed on a line.
        """
        return float(self._wear.sum() / self.total_endurance)

    # ------------------------------------------------------------------
    # Wear application
    # ------------------------------------------------------------------

    def write(self, line: int, count: int = 1) -> bool:
        """Apply ``count`` writes to one line; return ``True`` if it just died.

        Raises
        ------
        LineWornOutError
            If the line was already dead before this call -- the caller
            (memory controller / sparing scheme) must redirect writes to a
            replacement rather than hammer a failed line.
        """
        self._geometry.check_line(line)
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        if not self._alive[line]:
            raise LineWornOutError(line, float(self._wear[line]), self.budget(line))
        self._wear[line] += count
        if self._wear[line] >= self._endurance[line] + self._bonus[line]:
            self._alive[line] = False
            return True
        return False

    def apply_wear(self, lines: np.ndarray, amounts: "np.ndarray | float") -> np.ndarray:
        """Vectorised wear application; returns the ids of newly dead lines.

        ``lines`` may contain duplicates (their amounts accumulate).
        Writes to already-dead lines are rejected, matching :meth:`write`.
        """
        lines = np.asarray(lines, dtype=np.intp)
        if lines.size == 0:
            return np.empty(0, dtype=np.intp)
        if np.any(lines < 0) or np.any(lines >= self.lines):
            raise AddressError("apply_wear received out-of-range line ids")
        if np.any(~self._alive[lines]):
            first = int(lines[~self._alive[lines]][0])
            raise LineWornOutError(
                first, float(self._wear[first]), float(self._endurance[first])
            )
        amounts = np.broadcast_to(np.asarray(amounts, dtype=float), lines.shape)
        if np.any(amounts < 0):
            raise ValueError("wear amounts must be non-negative")
        was_alive = self._alive.copy()
        np.add.at(self._wear, lines, amounts)
        now_dead = self._wear >= self._endurance + self._bonus
        newly_dead = np.flatnonzero(was_alive & now_dead)
        self._alive[newly_dead] = False
        return newly_dead

    def salvage(self, line: int, extra_budget: float) -> None:
        """Repair a worn line in place, extending its budget (Section 2.2.2).

        Models error-correcting redundancy (ECP/PAYG) absorbing the line's
        first cell failures: the line returns to service with
        ``extra_budget`` additional wear headroom.
        """
        self._geometry.check_line(line)
        if extra_budget <= 0:
            raise ValueError(f"extra_budget must be positive, got {extra_budget}")
        self._bonus[line] += extra_budget
        if self._wear[line] < self._endurance[line] + self._bonus[line]:
            self._alive[line] = True

    def force_kill(self, line: int) -> None:
        """Mark a line dead regardless of wear (fault-injection hook)."""
        self._geometry.check_line(line)
        self._wear[line] = max(self._wear[line], self._endurance[line] + self._bonus[line])
        self._alive[line] = False

    def reset(self) -> None:
        """Return the bank to its pristine state."""
        self._wear[:] = 0.0
        self._bonus[:] = 0.0
        self._alive[:] = True
