"""Device wear inspection: histograms, per-region summaries, wear maps.

The questions an engineer asks a worn bank: where did the damage land,
how much of each region's budget is spent, which regions are on the edge.
:class:`BankInspector` answers them from an :class:`~repro.device.bank.NVMBank`
snapshot, and :func:`wear_heatmap` renders the per-region utilization as
an ASCII intensity map (used by the wear-map example to *show* the
difference between uniform-attack wear with and without Max-WE).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.device.bank import NVMBank
from repro.util.validation import require_positive_int

#: Intensity ramp for the heatmap, dark to bright.
HEAT_GLYPHS = " .:-=+*#%@"


@dataclass(frozen=True)
class RegionWearSummary:
    """Wear accounting for one region.

    Attributes
    ----------
    region:
        Region id.
    utilization:
        Consumed fraction of the region's total budget.
    dead_lines:
        Worn-out lines in the region.
    remaining:
        Total remaining wear budget.
    """

    region: int
    utilization: float
    dead_lines: int
    remaining: float


class BankInspector:
    """Read-only analytics over a bank's wear state."""

    def __init__(self, bank: NVMBank) -> None:
        self._bank = bank

    @property
    def bank(self) -> NVMBank:
        """The inspected bank."""
        return self._bank

    def wear_histogram(self, bins: int = 10) -> "tuple[np.ndarray, np.ndarray]":
        """Histogram of per-line utilization (wear / budget) in [0, 1].

        Returns ``(counts, edges)`` as :func:`numpy.histogram` does.
        """
        require_positive_int(bins, "bins")
        # budget = endurance + salvage bonus, recovered as wear + remaining.
        budgets = self._bank.wear + self._bank.remaining()
        utilization = np.divide(
            self._bank.wear,
            budgets,
            out=np.ones_like(budgets),
            where=budgets > 0,
        )
        return np.histogram(np.clip(utilization, 0.0, 1.0), bins=bins, range=(0.0, 1.0))

    def region_summaries(self) -> "list[RegionWearSummary]":
        """Per-region wear accounting, ascending region id."""
        emap = self._bank.endurance_map
        per = emap.lines_per_region
        wear = self._bank.wear.reshape(emap.regions, per)
        remaining = np.asarray(self._bank.remaining()).reshape(emap.regions, per)
        budgets = wear + remaining
        dead = (remaining <= 0.0).sum(axis=1)
        summaries = []
        for region in range(emap.regions):
            budget = float(budgets[region].sum())
            summaries.append(
                RegionWearSummary(
                    region=region,
                    utilization=float(wear[region].sum()) / budget if budget else 1.0,
                    dead_lines=int(dead[region]),
                    remaining=float(remaining[region].sum()),
                )
            )
        return summaries

    def region_utilization(self) -> np.ndarray:
        """Per-region consumed budget fraction as an array."""
        return np.array([s.utilization for s in self.region_summaries()])

    def stranded_endurance(self) -> float:
        """Unused wear budget at this snapshot (the lifetime left behind).

        For a failed device this is exactly what the scheme could not
        harvest: ``1 - normalized_lifetime`` of the total, up to the
        salvage bonuses.
        """
        return float(np.asarray(self._bank.remaining()).sum())


def wear_heatmap(
    bank: NVMBank,
    *,
    columns: int = 64,
    title: str | None = None,
) -> str:
    """Render per-region utilization as an ASCII intensity map.

    Regions are laid out row-major, ``columns`` per row; each cell's glyph
    encodes its consumed-budget fraction from ``' '`` (fresh) to ``'@'``
    (exhausted).
    """
    require_positive_int(columns, "columns")
    utilization = BankInspector(bank).region_utilization()
    glyph_count = len(HEAT_GLYPHS)
    indices = np.minimum(
        (utilization * glyph_count).astype(int), glyph_count - 1
    )
    lines = [title] if title else []
    for start in range(0, indices.size, columns):
        row = indices[start : start + columns]
        lines.append("".join(HEAT_GLYPHS[index] for index in row))
    legend = f"[{HEAT_GLYPHS}] = 0%..100% of region budget consumed"
    lines.append(legend)
    return "\n".join(lines)
