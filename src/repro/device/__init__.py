"""NVM device substrate.

Models the physical NVM bank the paper evaluates: a 1 GB bank of 64 B
lines grouped into 2048 equal-size regions, with per-line write endurance
from :mod:`repro.endurance`.  The bank tracks cumulative wear per line,
detects wear-out failures, and (optionally) models an ECP-style per-line
error-correction budget that absorbs a configurable number of cell
failures before a line is declared dead (Section 2.2.2's salvaging
discussion).
"""

from repro.device.bank import NVMBank
from repro.device.errors import (
    AddressError,
    DeviceWornOutError,
    LineWornOutError,
    ReproError,
)
from repro.device.faults import ECPBudget, FaultModel
from repro.device.geometry import DeviceGeometry

__all__ = [
    "NVMBank",
    "AddressError",
    "DeviceWornOutError",
    "LineWornOutError",
    "ReproError",
    "ECPBudget",
    "FaultModel",
    "DeviceGeometry",
]
