"""Data-pattern adversaries (paper Section 3.3.2).

Write-reduction techniques cut cell wear by exploiting data redundancy;
Section 3.3.2 shows an adversary controls the data and can always present
worst-case patterns:

* Flip-N-Write halves worst-case bit flips by optionally storing the
  complement -- but alternating ``0x0000...`` and ``0x5555...`` at one
  address forces the maximum surviving flip count every write;
* compression-based reduction is defeated by incompressible (random)
  payloads.

These attacks drive the :mod:`repro.writereduce` experiments (bench
``EXT-WR``), which measure the per-write cell-wear these techniques
actually deliver under attack versus under benign traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    AccessProfile,
    AttackModel,
    WriteRequest,
)
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import require_positive_int

#: The alternating patterns from the paper: 0x0000 and 0x5555 (64-bit wide).
PATTERN_ZERO: int = 0x0000_0000_0000_0000
PATTERN_5555: int = 0x5555_5555_5555_5555


@dataclass(frozen=True)
class FlipNWriteDefeatAttack(AttackModel):
    """Alternate ``0x0000`` / ``0x5555`` at one address (Section 3.3.2).

    Between these two patterns exactly half the bits differ, so
    Flip-N-Write's flip-or-complement choice saves nothing: either
    encoding flips half the word every write, its worst case.
    """

    target: int = 0

    name = "flip-n-write-defeat"

    def profile(self, user_lines: int) -> AccessProfile:
        require_positive_int(user_lines, "user_lines")
        return AccessProfile(kind=PROFILE_CONCENTRATED, hot_fraction=1.0)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        require_positive_int(user_lines, "user_lines")
        if self.target >= user_lines:
            raise ValueError(
                f"target {self.target} outside user space of {user_lines} lines"
            )
        toggle = False
        while True:
            yield WriteRequest(
                address=self.target, data=PATTERN_5555 if toggle else PATTERN_ZERO
            )
            toggle = not toggle

    def describe(self) -> str:
        return "Flip-N-Write defeat (alternating 0x0000/0x5555)"


@dataclass(frozen=True)
class IncompressibleDataAttack(AttackModel):
    """Uniform sweep carrying fresh random payloads every write.

    Defeats compression-based write reduction: random data has no
    exploitable redundancy, so the full line is written each time.  The
    address pattern is UAA's uniform sweep, making this a strictly
    stronger variant of the paper's headline attack against devices that
    combine wear-out delay with compression.
    """

    name = "incompressible"

    def profile(self, user_lines: int) -> AccessProfile:
        require_positive_int(user_lines, "user_lines")
        from repro.attacks.base import PROFILE_UNIFORM

        return AccessProfile(kind=PROFILE_UNIFORM)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        require_positive_int(user_lines, "user_lines")
        generator = ensure_rng(rng)
        address = 0
        while True:
            payload = int(generator.integers(0, 2**64, dtype=np.uint64))
            yield WriteRequest(address=address, data=payload)
            address = (address + 1) % user_lines

    def describe(self) -> str:
        return "incompressible-data uniform sweep"
