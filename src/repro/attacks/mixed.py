"""Mixed traffic: an attack embedded in benign background load.

A real attacker rarely owns the whole machine; their writes share the
memory channel with legitimate workload traffic.  :class:`MixedTraffic`
combines any two attack/workload models with an ``attack_share`` mixing
ratio:

* the exact stream interleaves the two streams Bernoulli(attack_share);
* the fluid profile mixes the two stationary descriptions -- the mixture
  of profiles is a skewed profile whose weights are the convex
  combination of the components' long-run rates.  (A concentrated
  component contributes its *time-averaged* uniform marginal to the
  rates; the concentration information survives through the
  ``hot_fraction`` so wear-levelers can still redistribute the moving
  hot spot.)

The EXT-MIX bench sweeps the share to answer the deployment question the
paper leaves open: how much attack bandwidth does UAA need before the
lifetime collapses from the benign baseline to the Section 5 numbers?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    PROFILE_SKEWED,
    PROFILE_UNIFORM,
    AccessProfile,
    AttackModel,
    WriteRequest,
)
from repro.util.rng import RandomState, derive_rng
from repro.util.validation import require_fraction


@dataclass(frozen=True)
class MixedTraffic(AttackModel):
    """A convex mixture of two write-pattern models.

    Parameters
    ----------
    attack:
        The malicious component.
    background:
        The benign component.
    attack_share:
        Fraction of writes belonging to the attack.
    """

    attack: AttackModel
    background: AttackModel
    attack_share: float = 0.5

    name = "mixed"

    def __post_init__(self) -> None:
        require_fraction(self.attack_share, "attack_share")

    def profile(self, user_lines: int) -> AccessProfile:
        """Convex combination of the two components' stationary rates."""
        share = self.attack_share
        if share == 0.0:
            return self.background.profile(user_lines)
        if share == 1.0:
            return self.attack.profile(user_lines)

        attack_profile = self.attack.profile(user_lines)
        background_profile = self.background.profile(user_lines)

        # Pure-uniform mixtures stay uniform; concentration is preserved
        # proportionally through hot_fraction.
        kinds = {attack_profile.kind, background_profile.kind}
        if kinds == {PROFILE_UNIFORM}:
            return AccessProfile(kind=PROFILE_UNIFORM)
        if PROFILE_CONCENTRATED in kinds and PROFILE_SKEWED not in kinds:
            hot = 0.0
            if attack_profile.kind == PROFILE_CONCENTRATED:
                hot += share * attack_profile.hot_fraction
            if background_profile.kind == PROFILE_CONCENTRATED:
                hot += (1.0 - share) * background_profile.hot_fraction
            return AccessProfile(kind=PROFILE_CONCENTRATED, hot_fraction=hot)

        rates = share * attack_profile.logical_rates(user_lines) + (
            1.0 - share
        ) * background_profile.logical_rates(user_lines)
        return AccessProfile(kind=PROFILE_SKEWED, weights=rates)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        """Bernoulli interleaving of the two exact streams."""
        mix_rng = derive_rng(rng, "mix")
        attack_stream = self.attack.stream(user_lines, derive_rng(rng, "attack"))
        background_stream = self.background.stream(
            user_lines, derive_rng(rng, "background")
        )
        while True:
            if mix_rng.random() < self.attack_share:
                yield next(attack_stream)
            else:
                yield next(background_stream)

    def describe(self) -> str:
        return (
            f"mixed traffic ({self.attack_share:.0%} {self.attack.describe()} + "
            f"{1.0 - self.attack_share:.0%} {self.background.describe()})"
        )
