"""The Birthday Paradox Attack (used in the paper's Section 5 evaluation).

BPA targets *randomized* wear-leveling (Seong et al., ISCA'10 discuss it
against Security Refresh): the attacker cannot observe the logical-to-
physical mapping, so instead of hammering one address forever (which a
randomizing scheme dissipates), it hammers a randomly chosen address for a
burst comparable to the scheme's remap interval, then jumps to a fresh
random address.  By the birthday bound, bursts repeatedly revisit physical
lines faster than uniform wear would, concentrating damage between remaps.

In the fluid simulator the long-run marginal of BPA is captured by the
``"concentrated"`` profile: at every instant essentially all writes target
one logical line, while the time-averaged rate is uniform.  How much
physical wear that concentration causes is then determined by the
wear-leveling scheme's stationary randomization (see
:mod:`repro.wearlevel`), which is exactly the effect Figure 7/8 measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    AccessProfile,
    AttackModel,
    WriteRequest,
)
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import require_fraction, require_positive_int


@dataclass(frozen=True)
class BirthdayParadoxAttack(AttackModel):
    """Bursts of writes on randomly chosen logical addresses.

    Parameters
    ----------
    burst_length:
        Writes delivered to an address before jumping to the next random
        one.  Tuned near the victim wear-leveler's remap interval; the
        exact-mode reference simulator shows lifetime is insensitive to
        this once it is within a small factor of the interval.
    hot_fraction:
        Fraction of writes in the bursts; the remainder is uniform
        background traffic used to evade hot-line detectors.
    """

    burst_length: int = 1024
    hot_fraction: float = 1.0

    name = "bpa"

    def __post_init__(self) -> None:
        require_positive_int(self.burst_length, "burst_length")
        require_fraction(self.hot_fraction, "hot_fraction")
        if self.hot_fraction <= 0.0:
            raise ValueError("hot_fraction must be positive for an attack")

    def profile(self, user_lines: int) -> AccessProfile:
        """Concentrated profile: hot bursts moving over the whole space."""
        require_positive_int(user_lines, "user_lines")
        return AccessProfile(kind=PROFILE_CONCENTRATED, hot_fraction=self.hot_fraction)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        """Exact-mode stream: random target, ``burst_length`` writes, repeat.

        Background (non-hot) writes are interleaved uniformly at random at
        rate ``1 - hot_fraction``.
        """
        require_positive_int(user_lines, "user_lines")
        generator = ensure_rng(rng)
        while True:
            target = int(generator.integers(0, user_lines))
            for _ in range(self.burst_length):
                if self.hot_fraction < 1.0 and generator.random() > self.hot_fraction:
                    background = int(generator.integers(0, user_lines))
                    yield WriteRequest(address=background)
                else:
                    yield WriteRequest(address=target)

    def describe(self) -> str:
        return (
            f"BPA (random-address bursts of {self.burst_length}, "
            f"{self.hot_fraction:.0%} hot)"
        )
