"""Attack-model interface shared by the fluid and exact simulators."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.util.rng import RandomState
from repro.util.validation import require_fraction, require_positive_int

#: Profile kinds understood by the wear-leveling fluid models.
PROFILE_UNIFORM = "uniform"
PROFILE_CONCENTRATED = "concentrated"
PROFILE_SKEWED = "skewed"


@dataclass(frozen=True)
class AccessProfile:
    """Stationary description of a write pattern over logical user lines.

    Attributes
    ----------
    kind:
        ``"uniform"`` -- every logical line is written at the same rate
        (UAA); ``"concentrated"`` -- at any instant (almost) all writes
        target a single logical line whose identity changes slowly relative
        to wear-leveling remap intervals (BPA, repeated-address);
        ``"skewed"`` -- a stable non-uniform distribution (Zipf etc.).
    weights:
        For ``"skewed"`` profiles, the relative per-logical-line write
        rates (any positive scale).  ``None`` for uniform/concentrated.
    hot_fraction:
        For concentrated profiles, the fraction of writes in the hot burst
        (the rest is uniform background noise an attacker may add to evade
        detection); 1.0 for a pure attack.
    """

    kind: str
    weights: Optional[np.ndarray] = None
    hot_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in (PROFILE_UNIFORM, PROFILE_CONCENTRATED, PROFILE_SKEWED):
            raise ValueError(f"unknown profile kind {self.kind!r}")
        require_fraction(self.hot_fraction, "hot_fraction")
        if self.kind == PROFILE_SKEWED:
            if self.weights is None:
                raise ValueError("skewed profiles require explicit weights")
            weights = np.asarray(self.weights, dtype=float)
            if weights.ndim != 1 or weights.size == 0:
                raise ValueError("weights must be a non-empty 1-D array")
            if np.any(weights < 0) or weights.sum() <= 0:
                raise ValueError("weights must be non-negative with positive sum")
            object.__setattr__(self, "weights", weights)
        elif self.weights is not None:
            raise ValueError(f"{self.kind} profiles must not carry weights")

    def logical_rates(self, user_lines: int) -> np.ndarray:
        """Normalized per-logical-line write rates (sums to 1).

        For concentrated profiles this is the *time-averaged* rate: the hot
        target moves over the whole space in the long run, so the average
        is uniform -- the concentration matters to wear-leveling dynamics,
        not to the long-run marginal.
        """
        require_positive_int(user_lines, "user_lines")
        if self.kind == PROFILE_SKEWED:
            weights = np.asarray(self.weights, dtype=float)
            if weights.size != user_lines:
                raise ValueError(
                    f"profile has {weights.size} weights but device has {user_lines} user lines"
                )
            return weights / weights.sum()
        return np.full(user_lines, 1.0 / user_lines)


@dataclass(frozen=True)
class WriteRequest:
    """One write in an exact-mode address stream.

    Attributes
    ----------
    address:
        Logical line address in ``[0, user_lines)``.
    data:
        Optional 64-bit payload pattern; only the write-reduction
        experiments inspect it.
    """

    address: int
    data: Optional[int] = None


class AttackModel(ABC):
    """A write-pattern generator with fluid and exact views."""

    #: Short machine-readable name used in result tables.
    name: str = "attack"

    @abstractmethod
    def profile(self, user_lines: int) -> AccessProfile:
        """Stationary access profile over ``user_lines`` logical lines."""

    @abstractmethod
    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        """Infinite per-write address stream (exact simulation mode)."""

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name
