"""The classic repeated-address attack.

The simplest malicious wear-out: hammer one logical address forever.
Start-Gap-style wear-leveling was designed against exactly this (Qureshi
et al., MICRO'09); the paper uses it as the motivating baseline that
existing defences *do* handle, in contrast to UAA which they do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    AccessProfile,
    AttackModel,
    WriteRequest,
)
from repro.util.rng import RandomState
from repro.util.validation import require_positive_int


@dataclass(frozen=True)
class RepeatedAddressAttack(AttackModel):
    """Write one fixed logical address forever.

    Parameters
    ----------
    target:
        The hammered logical line (must be inside the user space when the
        stream is instantiated).
    """

    target: int = 0

    name = "repeated"

    def __post_init__(self) -> None:
        if self.target < 0:
            raise ValueError(f"target must be non-negative, got {self.target}")

    def profile(self, user_lines: int) -> AccessProfile:
        """Concentrated: all writes on one (fixed) logical line.

        Without wear-leveling the hot line never moves, which the fluid
        simulator handles through the no-wear-leveling scheme pinning the
        concentrated profile to a single physical line.
        """
        require_positive_int(user_lines, "user_lines")
        if self.target >= user_lines:
            raise ValueError(
                f"target {self.target} outside user space of {user_lines} lines"
            )
        return AccessProfile(kind=PROFILE_CONCENTRATED, hot_fraction=1.0)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        """The degenerate stream: target, target, target, ..."""
        require_positive_int(user_lines, "user_lines")
        if self.target >= user_lines:
            raise ValueError(
                f"target {self.target} outside user space of {user_lines} lines"
            )
        while True:
            yield WriteRequest(address=self.target)

    def describe(self) -> str:
        return f"repeated-address attack on line {self.target}"
