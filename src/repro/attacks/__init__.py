"""Attack models and reference workloads (paper Section 3).

Every attack/workload is an :class:`~repro.attacks.base.AttackModel` that
can describe itself two ways:

* an :class:`~repro.attacks.base.AccessProfile` -- the stationary write
  distribution over logical user lines plus a concentration descriptor,
  consumed by the fluid (mean-field) lifetime simulator;
* a per-write address :meth:`~repro.attacks.base.AttackModel.stream`,
  consumed by the exact reference simulator and the write-reduction
  experiments.

Implemented models:

* :class:`~repro.attacks.uaa.UniformAddressAttack` -- the paper's UAA:
  one write to each line, sequentially, repeated forever (Section 3.1);
* :class:`~repro.attacks.bpa.BirthdayParadoxAttack` -- BPA (Section 5):
  bursts on randomly chosen addresses to defeat randomized wear-leveling;
* :class:`~repro.attacks.repeated.RepeatedAddressAttack` -- the classic
  single-address hammer that motivates wear-leveling in the first place;
* :class:`~repro.attacks.patterns.FlipNWriteDefeatAttack` and
  :class:`~repro.attacks.patterns.IncompressibleDataAttack` -- the
  data-pattern adversaries of Section 3.3.2;
* :class:`~repro.attacks.workloads.ZipfWorkload` and
  :class:`~repro.attacks.workloads.HotColdWorkload` -- benign cold/hot
  reference workloads against which wear-leveling *does* help.
"""

from repro.attacks.base import AccessProfile, AttackModel, WriteRequest
from repro.attacks.bpa import BirthdayParadoxAttack
from repro.attacks.mixed import MixedTraffic
from repro.attacks.patterns import FlipNWriteDefeatAttack, IncompressibleDataAttack
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.suite import WORKLOAD_NAMES, workload
from repro.attacks.targeted import TargetedWeakLineAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import HotColdWorkload, ZipfWorkload

__all__ = [
    "AccessProfile",
    "AttackModel",
    "WriteRequest",
    "BirthdayParadoxAttack",
    "MixedTraffic",
    "FlipNWriteDefeatAttack",
    "IncompressibleDataAttack",
    "RepeatedAddressAttack",
    "WORKLOAD_NAMES",
    "workload",
    "TargetedWeakLineAttack",
    "UniformAddressAttack",
    "HotColdWorkload",
    "ZipfWorkload",
]
