"""A named suite of synthetic reference workloads.

The paper's NVMsim "avoids reading memory requests from the workload
files" by generating traffic; this suite provides the generated
equivalents of the standard memory-workload archetypes so lifetime
studies have benign baselines with recognizable names.  Every entry is
built from the library's primitive generators with parameters chosen to
mimic the archetype's write-locality signature:

========================  ====================================================
name                      signature
========================  ====================================================
``streaming``             sequential full-space sweeps (media/ETL buffers)
``database``              strong hot/cold split: hot index pages, cold heap
``journaling``            extreme concentration on a small circular log
``scientific``            mild Zipf over a large working set (stencils)
``web-cache``             classic Zipf(1.0) object popularity
``virtual-machines``      mid-skew hot/cold from consolidated guests
========================  ====================================================

Use :func:`workload` to instantiate by name and :data:`WORKLOAD_NAMES`
to iterate the suite (the EXT-BENIGN bench does both).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.attacks.base import AttackModel
from repro.attacks.mixed import MixedTraffic
from repro.attacks.repeated import RepeatedAddressAttack
from repro.attacks.uaa import UniformAddressAttack
from repro.attacks.workloads import HotColdWorkload, ZipfWorkload


def _streaming() -> AttackModel:
    # Sequential sweeps are exactly UAA's pattern -- benign intent, same
    # wear signature.  (Streaming rarely rewrites, so real deployments
    # see far lower absolute rates; the *shape* is what matters here.)
    return UniformAddressAttack(random_data=False)


def _database() -> AttackModel:
    return HotColdWorkload(hot_fraction_of_lines=0.05, hot_fraction_of_writes=0.95)


def _journaling() -> AttackModel:
    # A circular log is a concentrated writer over a tiny region; the
    # single-address hammer is its limiting shape.
    return RepeatedAddressAttack(target=0)


def _scientific() -> AttackModel:
    return ZipfWorkload(exponent=0.6)


def _web_cache() -> AttackModel:
    return ZipfWorkload(exponent=1.0)


def _virtual_machines() -> AttackModel:
    return MixedTraffic(
        attack=HotColdWorkload(hot_fraction_of_lines=0.2, hot_fraction_of_writes=0.8),
        background=ZipfWorkload(exponent=0.8),
        attack_share=0.5,
    )


_FACTORIES: Dict[str, Callable[[], AttackModel]] = {
    "streaming": _streaming,
    "database": _database,
    "journaling": _journaling,
    "scientific": _scientific,
    "web-cache": _web_cache,
    "virtual-machines": _virtual_machines,
}

#: The suite's workload names, in documentation order.
WORKLOAD_NAMES = tuple(_FACTORIES)


def workload(name: str) -> AttackModel:
    """Instantiate a suite workload by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(_FACTORIES)}"
        ) from None
    return factory()
