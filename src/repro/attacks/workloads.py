"""Benign reference workloads with cold/hot locality.

The endurance-variation-aware wear-levelers the paper compares against
(Section 2.2.1) were designed for workloads where data access *has*
cold/hot structure -- the property UAA deliberately lacks.  These
generators provide that structure so tests and examples can demonstrate
the schemes working as designed before showing UAA defeating them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.attacks.base import (
    PROFILE_SKEWED,
    AccessProfile,
    AttackModel,
    WriteRequest,
)
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import require_fraction, require_positive, require_positive_int


@dataclass(frozen=True)
class ZipfWorkload(AttackModel):
    """Writes drawn from a Zipf distribution over logical lines.

    Parameters
    ----------
    exponent:
        Zipf skew ``s`` (rate of line ranked ``k`` is ``1 / k^s``);
        typical memory traffic sits near ``s ~ 1``.
    shuffle:
        Permute which logical lines are hot (default) rather than making
        low addresses hottest; controlled by the stream's rng.
    """

    exponent: float = 1.0
    shuffle: bool = True

    name = "zipf"

    def __post_init__(self) -> None:
        require_positive(self.exponent, "exponent")

    def _weights(self, user_lines: int, rng: RandomState = None) -> np.ndarray:
        ranks = np.arange(1, user_lines + 1, dtype=float)
        weights = ranks**-self.exponent
        if self.shuffle:
            generator = ensure_rng(rng)
            weights = generator.permutation(weights)
        return weights

    def profile(self, user_lines: int) -> AccessProfile:
        require_positive_int(user_lines, "user_lines")
        # The profile is rank-based; physical placement of hot lines is the
        # wear-leveler's concern, so an unshuffled weight vector is the
        # canonical representation.
        ranks = np.arange(1, user_lines + 1, dtype=float)
        return AccessProfile(kind=PROFILE_SKEWED, weights=ranks**-self.exponent)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        require_positive_int(user_lines, "user_lines")
        generator = ensure_rng(rng)
        weights = self._weights(user_lines, generator)
        probabilities = weights / weights.sum()
        while True:
            # Draw in batches for speed; yield individually.
            batch = generator.choice(user_lines, size=4096, p=probabilities)
            for address in batch:
                yield WriteRequest(address=int(address))

    def describe(self) -> str:
        return f"Zipf workload (s={self.exponent})"


@dataclass(frozen=True)
class HotColdWorkload(AttackModel):
    """A two-temperature workload: a hot set takes most writes.

    Parameters
    ----------
    hot_fraction_of_lines:
        Fraction of logical lines in the hot set.
    hot_fraction_of_writes:
        Fraction of writes landing on the hot set (e.g. the classic 90/10).
    """

    hot_fraction_of_lines: float = 0.1
    hot_fraction_of_writes: float = 0.9

    name = "hot-cold"

    def __post_init__(self) -> None:
        require_fraction(self.hot_fraction_of_lines, "hot_fraction_of_lines", inclusive=False)
        require_fraction(self.hot_fraction_of_writes, "hot_fraction_of_writes", inclusive=False)

    def profile(self, user_lines: int) -> AccessProfile:
        require_positive_int(user_lines, "user_lines")
        hot_lines = max(1, int(round(self.hot_fraction_of_lines * user_lines)))
        weights = np.full(
            user_lines,
            (1.0 - self.hot_fraction_of_writes) / max(user_lines - hot_lines, 1),
        )
        weights[:hot_lines] = self.hot_fraction_of_writes / hot_lines
        return AccessProfile(kind=PROFILE_SKEWED, weights=weights)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        require_positive_int(user_lines, "user_lines")
        generator = ensure_rng(rng)
        hot_lines = max(1, int(round(self.hot_fraction_of_lines * user_lines)))
        while True:
            if generator.random() < self.hot_fraction_of_writes:
                address = int(generator.integers(0, hot_lines))
            else:
                address = int(generator.integers(hot_lines, max(user_lines, hot_lines + 1)))
                address = min(address, user_lines - 1)
            yield WriteRequest(address=address)

    def describe(self) -> str:
        return (
            f"hot/cold workload ({self.hot_fraction_of_writes:.0%} of writes on "
            f"{self.hot_fraction_of_lines:.0%} of lines)"
        )
