"""The endurance-aware targeted attack: the knowledge upper bound.

Section 3.1 stresses that UAA needs *no* endurance information ("The
attacker is unaware of the endurance distribution").  The complementary
question -- what could an attacker do *with* the manufacture-time
endurance map (leaked, or profiled by timing attacks) -- bounds the value
of keeping that map secret.  :class:`TargetedWeakLineAttack` hammers the
``target_fraction`` weakest lines directly:

* against an unprotected, unleveled device it is devastating -- the
  weakest line dies after exactly ``EL`` writes, a lifetime of
  ``EL / (N * E_mean)`` (orders of magnitude below even UAA's
  ``EL / E_mean``);
* against randomized wear-leveling the knowledge evaporates: the attacker
  addresses *logical* lines, the mapping is secret and re-randomized, so
  the stationary wear collapses to the concentrated/BPA case -- which is
  exactly why the paper's threat model can afford to give the defender
  the endurance map but not the attacker the address map.

The EXT-KNOWLEDGE bench quantifies both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.attacks.base import (
    PROFILE_SKEWED,
    AccessProfile,
    AttackModel,
    WriteRequest,
)
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import require_fraction, require_positive_int


@dataclass(frozen=True)
class TargetedWeakLineAttack(AttackModel):
    """Concentrate writes on the known weakest logical lines.

    Parameters
    ----------
    weak_line_ids:
        Logical line ids the attacker believes are weakest (e.g. from a
        leaked characterization file), as a tuple for hashability.
    target_fraction:
        Alternative to explicit ids: hammer the weakest
        ``target_fraction`` of the logical space assuming logical order
        equals endurance rank (the no-wear-leveling worst case).
    """

    weak_line_ids: tuple = ()
    target_fraction: float = 0.01

    name = "targeted"

    def __post_init__(self) -> None:
        require_fraction(self.target_fraction, "target_fraction")
        if not self.weak_line_ids and self.target_fraction <= 0.0:
            raise ValueError("either weak_line_ids or target_fraction must select lines")
        if any(line < 0 for line in self.weak_line_ids):
            raise ValueError("weak_line_ids must be non-negative")

    def _targets(self, user_lines: int) -> np.ndarray:
        if self.weak_line_ids:
            targets = np.asarray(self.weak_line_ids, dtype=np.int64)
            if targets.max() >= user_lines:
                raise ValueError(
                    f"target line {targets.max()} outside user space of {user_lines}"
                )
            return targets
        count = max(1, int(round(self.target_fraction * user_lines)))
        return np.arange(count, dtype=np.int64)

    def profile(self, user_lines: int) -> AccessProfile:
        """Skewed profile: all mass on the targeted lines."""
        require_positive_int(user_lines, "user_lines")
        weights = np.zeros(user_lines)
        weights[self._targets(user_lines)] = 1.0
        return AccessProfile(kind=PROFILE_SKEWED, weights=weights)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        """Round-robin over the targeted lines."""
        require_positive_int(user_lines, "user_lines")
        generator = ensure_rng(rng)
        targets = self._targets(user_lines)
        index = int(generator.integers(0, targets.size))
        while True:
            yield WriteRequest(address=int(targets[index]))
            index = (index + 1) % targets.size

    @classmethod
    def from_endurance_map(cls, emap, target_fraction: float = 0.01):
        """Build the attack from a leaked endurance map.

        Assumes the identity logical-to-physical mapping (no wear
        leveling) -- the scenario where the leak is lethal.
        """
        count = max(1, int(round(target_fraction * emap.lines)))
        weakest = tuple(int(line) for line in emap.weakest_lines(count))
        return cls(weak_line_ids=weakest, target_fraction=target_fraction)

    def describe(self) -> str:
        if self.weak_line_ids:
            return f"targeted attack on {len(self.weak_line_ids)} known weak lines"
        return f"targeted attack on the weakest {self.target_fraction:.1%} of lines"
