"""The Uniform Address Attack (paper Section 3.1-3.2).

UAA performs one write to each line of the whole memory, one by one, and
repeats the loop until lines wear out.  The attacker needs *no* knowledge
of the endurance distribution: uniform writes are automatically "perfect
wear-leveling", which defeats every remapping defence while still killing
the weakest lines first (Equation 4: ``L_UAA = N * EL``).

``coverage`` models the OS-level implementation of Section 3.2: a
malicious process can ``malloc`` nearly all physical memory, but the
kernel's own footprint (~5% on the paper's 4 GB example) stays out of
reach.  ``coverage=1.0`` is the idealized attack the evaluation uses;
:mod:`repro.osmodel` computes realistic values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.attacks.base import (
    PROFILE_SKEWED,
    PROFILE_UNIFORM,
    AccessProfile,
    AttackModel,
    WriteRequest,
)
from repro.util.rng import RandomState, ensure_rng
from repro.util.validation import require_fraction

import numpy as np


@dataclass(frozen=True)
class UniformAddressAttack(AttackModel):
    """Sequential uniform writes over the attackable address space.

    Parameters
    ----------
    coverage:
        Fraction of the logical user space the attacker can reach
        (Section 3.2; 1.0 = whole space).
    random_data:
        Whether the exact-mode stream carries random payloads (the paper's
        attacker writes random data so write-reduction encodings can't
        help); payloads are only materialized when requested.
    """

    coverage: float = 1.0
    random_data: bool = True

    name = "uaa"

    def __post_init__(self) -> None:
        require_fraction(self.coverage, "coverage")
        if self.coverage <= 0.0:
            raise ValueError("coverage must be positive; a zero-coverage attack writes nothing")

    def attackable_lines(self, user_lines: int) -> int:
        """Number of logical lines the attacker can write."""
        return max(1, int(round(self.coverage * user_lines)))

    def profile(self, user_lines: int) -> AccessProfile:
        """Uniform over the attackable prefix of the logical space.

        With full coverage this is the pure uniform profile; partial
        coverage yields a skewed profile that is uniform on the reachable
        lines and zero elsewhere, which wear-leveling *can* exploit --
        quantifying how much the kernel's reserved memory buys back.
        """
        reachable = self.attackable_lines(user_lines)
        if reachable >= user_lines:
            return AccessProfile(kind=PROFILE_UNIFORM)
        weights = np.zeros(user_lines)
        weights[:reachable] = 1.0
        return AccessProfile(kind=PROFILE_SKEWED, weights=weights)

    def stream(self, user_lines: int, rng: RandomState = None) -> Iterator[WriteRequest]:
        """Address stream: 0, 1, 2, ..., reachable-1, 0, 1, ... forever."""
        reachable = self.attackable_lines(user_lines)
        generator = ensure_rng(rng) if self.random_data else None
        address = 0
        while True:
            data: Optional[int] = None
            if generator is not None:
                data = int(generator.integers(0, 2**64, dtype=np.uint64))
            yield WriteRequest(address=address, data=data)
            address += 1
            if address >= reachable:
                address = 0

    def writes_per_sweep(self, user_lines: int) -> int:
        """Writes in one full pass over the attackable space."""
        return self.attackable_lines(user_lines)

    def describe(self) -> str:
        if self.coverage >= 1.0:
            return "UAA (uniform sequential writes, full coverage)"
        return f"UAA (uniform sequential writes, {self.coverage:.1%} coverage)"
