"""repro: reproduction of "An Efficient Spare-Line Replacement Scheme to
Enhance NVM Security" (Xu et al., DAC 2019).

The library implements the paper's Uniform Address Attack (UAA) threat
model and its Max-WE spare-line replacement defence, together with every
substrate the evaluation depends on: the Zhang-Li endurance-variation
model, an NVM bank simulator, the baseline wear-leveling schemes (TLSR,
PCM-S, BWL, WAWL, Start-Gap, Toss-up), the baseline sparing schemes
(PCD, PS), the closed-form lifetime analysis, and a lifetime simulator
with fluid and exact engines.

Quickstart::

    from repro import (
        ExperimentConfig, MaxWE, NoSparing, UniformAddressAttack,
        simulate_lifetime,
    )

    emap = ExperimentConfig().make_emap()
    unprotected = simulate_lifetime(emap, UniformAddressAttack(), NoSparing())
    protected = simulate_lifetime(emap, UniformAddressAttack(), MaxWE(0.1))
    print(f"UAA kills an unprotected bank at "
          f"{unprotected.normalized_lifetime:.1%} of ideal lifetime;")
    print(f"Max-WE raises that to {protected.normalized_lifetime:.1%} "
          f"({protected.improvement_over(unprotected):.1f}X better).")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every figure and table.
"""

from repro.attacks import (
    BirthdayParadoxAttack,
    HotColdWorkload,
    RepeatedAddressAttack,
    UniformAddressAttack,
    ZipfWorkload,
)
from repro.core import (
    MappingOverheadReport,
    MaxWE,
    MaxWEController,
    mapping_overhead_report,
    plan_allocation,
)
from repro.device import DeviceGeometry, DeviceWornOutError, NVMBank
from repro.endurance import (
    EnduranceMap,
    LinearEnduranceModel,
    PowerLawEnduranceModel,
    ZhangLiModel,
    linear_endurance_map,
    zhang_li_endurance_map,
)
from repro.sim import (
    ExperimentConfig,
    LifetimeSimulator,
    ReferenceSimulator,
    SimulationResult,
    default_endurance_map,
    simulate_lifetime,
)
from repro.sparing import PCD, PS, NoSparing
from repro.salvage import ECP, FreeP, PayAsYouGo
from repro.trace import TraceAttack, WriteTrace, record_trace
from repro.detect import AttackClassifier, WriteRateMonitor
from repro.sim.montecarlo import MonteCarloResult, monte_carlo_lifetime
from repro.wearlevel import BWL, PCMS, TLSR, WAWL, NoWearLeveling, StartGap, make_scheme

__version__ = "1.0.0"

__all__ = [
    "BirthdayParadoxAttack",
    "HotColdWorkload",
    "RepeatedAddressAttack",
    "UniformAddressAttack",
    "ZipfWorkload",
    "MappingOverheadReport",
    "MaxWE",
    "MaxWEController",
    "mapping_overhead_report",
    "plan_allocation",
    "DeviceGeometry",
    "DeviceWornOutError",
    "NVMBank",
    "EnduranceMap",
    "LinearEnduranceModel",
    "PowerLawEnduranceModel",
    "ZhangLiModel",
    "linear_endurance_map",
    "zhang_li_endurance_map",
    "ExperimentConfig",
    "LifetimeSimulator",
    "ReferenceSimulator",
    "SimulationResult",
    "default_endurance_map",
    "simulate_lifetime",
    "PCD",
    "PS",
    "NoSparing",
    "ECP",
    "FreeP",
    "PayAsYouGo",
    "TraceAttack",
    "WriteTrace",
    "record_trace",
    "AttackClassifier",
    "WriteRateMonitor",
    "MonteCarloResult",
    "monte_carlo_lifetime",
    "BWL",
    "PCMS",
    "TLSR",
    "WAWL",
    "NoWearLeveling",
    "StartGap",
    "make_scheme",
    "__version__",
]
