"""Wall-clock lifetime: from write counts to seconds/days/years.

The paper's urgency is stated in time, not writes: "NVM device will fail
within seconds without protection" (Section 2.1).  This module converts
the simulators' write counts into wall-clock time for a device with a
given sustained write bandwidth, and back.

The sober arithmetic behind the quote: an attacker saturating a DDR-class
NVM channel delivers ~2e8 line writes per second.  *Hammering one
unprotected weak line* (endurance 1e4-1e8) therefore kills it in
milliseconds to seconds -- the paper's "fail within seconds" scenario.
Under UAA the writes spread over the whole bank, so the device-level
lifetime ``~ N * EL`` works out to days for a 1 GB bank at nominal 1e8
endurance; Max-WE's ~10x extension turns that into months of sustained
maximum-bandwidth attack.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.geometry import DeviceGeometry
from repro.util.validation import require_positive

#: Convenience time units in seconds.
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0
DAY: float = 86_400.0
YEAR: float = 365.25 * DAY


@dataclass(frozen=True)
class WriteBandwidth:
    """Sustained write bandwidth hitting an NVM bank.

    Parameters
    ----------
    bytes_per_second:
        Sustained write throughput (e.g. ``12.8e9`` for a DDR4-1600
        channel dedicated to writes).
    line_bytes:
        Line size the device wears at (64 B for main-memory NVM).
    """

    bytes_per_second: float
    line_bytes: int = 64

    def __post_init__(self) -> None:
        require_positive(self.bytes_per_second, "bytes_per_second")
        require_positive(self.line_bytes, "line_bytes")

    @classmethod
    def ddr4_channel(cls) -> "WriteBandwidth":
        """A DDR4-1600 channel's 12.8 GB/s, all writes."""
        return cls(bytes_per_second=12.8e9)

    @property
    def line_writes_per_second(self) -> float:
        """Line writes the bandwidth sustains per second."""
        return self.bytes_per_second / self.line_bytes

    def seconds_for_writes(self, writes: float) -> float:
        """Wall-clock seconds to deliver ``writes`` line writes."""
        if writes < 0:
            raise ValueError(f"writes must be non-negative, got {writes}")
        return writes / self.line_writes_per_second

    def writes_for_seconds(self, seconds: float) -> float:
        """Line writes delivered in ``seconds``."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        return seconds * self.line_writes_per_second


def format_duration(seconds: float) -> str:
    """Human-readable duration, e.g. ``"3.2 hours"`` or ``"11 years"``."""
    if seconds < 0:
        raise ValueError(f"seconds must be non-negative, got {seconds}")
    for unit, label in ((YEAR, "years"), (DAY, "days"), (HOUR, "hours"), (MINUTE, "minutes")):
        if seconds >= unit:
            return f"{seconds / unit:.1f} {label}"
    return f"{seconds:.1f} seconds"


def device_lifetime_seconds(
    geometry: DeviceGeometry,
    normalized_lifetime: float,
    mean_endurance: float,
    bandwidth: WriteBandwidth | None = None,
) -> float:
    """Wall-clock lifetime of a device under sustained attack.

    Parameters
    ----------
    geometry:
        Device shape (fixes the total line count).
    normalized_lifetime:
        The simulator metric: writes served over total endurance.
    mean_endurance:
        Mean per-line endurance (total endurance = ``N * mean``).
    bandwidth:
        Attack bandwidth; defaults to a dedicated DDR4 channel.
    """
    if not 0.0 <= normalized_lifetime <= 1.0:
        raise ValueError(
            f"normalized_lifetime must be in [0, 1], got {normalized_lifetime}"
        )
    require_positive(mean_endurance, "mean_endurance")
    bandwidth = bandwidth if bandwidth is not None else WriteBandwidth.ddr4_channel()
    total_writes = normalized_lifetime * geometry.total_lines * mean_endurance
    return bandwidth.seconds_for_writes(total_writes)
