"""The paper's closed-form lifetime equations (Eq. 3-8).

All formulas assume the Section 3.1 linear endurance model: ``N`` lines
whose endurances fall linearly from ``EH`` to ``EL`` when sorted.  Each
``*_normalized`` variant divides by the ideal lifetime (Eq. 3) and is
stated in terms of the paper's two sweep parameters ``p = S / N`` (spare
fraction) and ``q = EH / EL`` (variation degree), which is exactly how
Figure 5 plots them.

Spot values from Section 4.3 (reproduced in the tests): with ``p = 0.1``
and ``q = 50``, Max-WE / PCD-PS / PS-worst achieve 38.1% / 22.2% / 20.8%
of the ideal lifetime; Eq. 5 gives 3.9% for an unprotected device.
"""

from __future__ import annotations

from repro.endurance.linear import LinearEnduranceModel
from repro.util.validation import require_fraction, require_positive_int


def ideal_lifetime(model: LinearEnduranceModel, lines: int) -> float:
    """Eq. 3: ``N (EH - EL) / 2 + N EL`` -- the area under the diagonal."""
    return model.ideal_lifetime(lines)


def uaa_lifetime(model: LinearEnduranceModel, lines: int) -> float:
    """Eq. 4: ``N EL`` -- every line absorbs the weakest line's endurance."""
    return model.uaa_lifetime(lines)


def uaa_fraction(q: float) -> float:
    """Eq. 5: ``L_UAA / L_Ideal = 2 EL / (EH + EL) = 2 / (q + 1)``."""
    if q < 1.0:
        raise ValueError(f"q must be >= 1, got {q}")
    return 2.0 / (q + 1.0)


def maxwe_lifetime(model: LinearEnduranceModel, lines: int, spare_lines: int) -> float:
    """Eq. 6: ``(N - S) * (EL + 2 S (EH - EL) / N)``.

    The weakest ``S`` lines become spares and rescue the next-weakest
    ``S``; the binding constraint is then the ``(2S + 1)``-th weakest
    line's endurance, absorbed by each of the ``N - S`` working lines.
    """
    _check_spares(lines, spare_lines)
    return (lines - spare_lines) * (
        model.e_low
        + 2.0 * spare_lines * (model.e_high - model.e_low) / lines
    )


def pcd_ps_lifetime(model: LinearEnduranceModel, lines: int, spare_lines: int) -> float:
    """Eq. 7: ``S (N - S/2) (EH - EL) / N + N EL``.

    PCD spreads traffic over all ``N`` lines and tolerates ``S`` deaths;
    the paper uses it to approximate PS's average case as well (within 3%,
    citing Ferreira et al.).
    """
    _check_spares(lines, spare_lines)
    return (
        spare_lines
        * (lines - spare_lines / 2.0)
        * (model.e_high - model.e_low)
        / lines
        + lines * model.e_low
    )


def ps_worst_lifetime(model: LinearEnduranceModel, lines: int, spare_lines: int) -> float:
    """Eq. 8: ``(N - S) * (EL + S (EH - EL) / N)``.

    The worst PS allocation wastes strong lines as spares, so the
    ``(S + 1)``-th weakest line bounds the lifetime.
    """
    _check_spares(lines, spare_lines)
    return (lines - spare_lines) * (
        model.e_low + spare_lines * (model.e_high - model.e_low) / lines
    )


def maxwe_normalized(p: float, q: float) -> float:
    """Eq. 6 / Eq. 3 in terms of ``(p, q)`` -- one point of Figure 5."""
    _check_pq(p, q)
    return (1.0 - p) * (1.0 + 2.0 * p * (q - 1.0)) * 2.0 / (q + 1.0)


def pcd_ps_normalized(p: float, q: float) -> float:
    """Eq. 7 / Eq. 3 in terms of ``(p, q)``."""
    _check_pq(p, q)
    return (p * (1.0 - p / 2.0) * (q - 1.0) + 1.0) * 2.0 / (q + 1.0)


def ps_worst_normalized(p: float, q: float) -> float:
    """Eq. 8 / Eq. 3 in terms of ``(p, q)``."""
    _check_pq(p, q)
    return (1.0 - p) * (1.0 + p * (q - 1.0)) * 2.0 / (q + 1.0)


def _check_spares(lines: int, spare_lines: int) -> None:
    require_positive_int(lines, "lines")
    if not 0 <= spare_lines < lines:
        raise ValueError(
            f"spare_lines must be in [0, {lines}), got {spare_lines}"
        )


def _check_pq(p: float, q: float) -> None:
    require_fraction(p, "p")
    if p >= 1.0:
        raise ValueError("p must leave room for user space")
    if q < 1.0:
        raise ValueError(f"q must be >= 1, got {q}")
