"""Crossover and design-point solvers over the closed-form model.

The reproduction mandate cares about *where crossovers fall*; this module
makes them first-class quantities instead of by-products of sweeps:

* :func:`break_even_q` -- the variation degree below which reserving
  spares loses to no protection (from Eq. 8 vs Eq. 5: a scheme with
  ``p`` spares pays off only when ``(q - 1)(1 - p) >= 1``);
* :func:`spare_fraction_for_target` -- inverse of Eq. 6: the spare
  budget Max-WE needs to guarantee a target normalized lifetime at a
  given variation degree (how the paper's "10% for 38-43%" generalizes);
* :func:`maxwe_advantage_peak` -- the spare fraction maximizing Max-WE's
  *margin* over PCD/PS, locating the regime where the scheme's design
  matters most;
* :func:`q_where_variation_helps_maxwe` -- the ``p = 1/4`` threshold
  above which Eq. 6's normalized lifetime *increases* with variation
  (the derivative's sign is that of ``4p - 1``).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.lifetime import maxwe_normalized, pcd_ps_normalized
from repro.util.validation import require_fraction


def break_even_q(p: float) -> float:
    """Variation degree at which ``p`` spares stop being a net loss.

    Derived from PS-worst (Eq. 8) against no protection (Eq. 5):
    ``(1 - p)(1 + p(q - 1)) >= 1  <=>  (q - 1)(1 - p) >= 1``, i.e.
    ``q* = 1 + 1 / (1 - p)``.  Below ``q*`` the capacity surrendered to
    spares exceeds what weak-line rescue recovers.
    """
    require_fraction(p, "p", inclusive=False)
    return 1.0 + 1.0 / (1.0 - p)


def spare_fraction_for_target(target: float, q: float) -> float:
    """Smallest spare fraction giving Max-WE a target normalized lifetime.

    Inverts Eq. 6 normalized, ``L(p) = (1 - p)(1 + 2p(q - 1)) · 2/(q+1)``,
    by bisection on the increasing branch ``p ∈ [0, (2q - 3)/(4(q - 1))]``
    (the quadratic's vertex).  Raises if the target exceeds the vertex
    value -- no spare budget reaches it at this variation degree.
    """
    require_fraction(target, "target")
    if q <= 1.0:
        raise ValueError(f"q must be > 1 for a meaningful inversion, got {q}")
    vertex = (2.0 * q - 3.0) / (4.0 * (q - 1.0))
    vertex = min(max(vertex, 0.0), 0.99)
    best = maxwe_normalized(vertex, q)
    if target > best + 1e-12:
        raise ValueError(
            f"target {target:.1%} is unreachable at q = {q:g}; the Eq. 6 "
            f"maximum is {best:.1%} at p = {vertex:.1%}"
        )
    if target <= maxwe_normalized(0.0, q):
        # No protection already meets the target (low bar / low variation).
        return 0.0
    low, high = 0.0, vertex
    for _ in range(100):
        mid = 0.5 * (low + high)
        if maxwe_normalized(mid, q) < target:
            low = mid
        else:
            high = mid
    return high


def maxwe_advantage_peak(q: float, grid: int = 2000) -> tuple[float, float]:
    """Spare fraction maximizing Max-WE's margin over PCD/PS (Eq. 6 - Eq. 7).

    Returns ``(p_peak, margin)``.  The margin vanishes at ``p -> 0`` (no
    spares, nothing to allocate) and shrinks again at large ``p`` (any
    allocation has plenty of slack), peaking in between -- the regime the
    paper's 10% operating point sits near.
    """
    if q <= 1.0:
        raise ValueError(f"q must be > 1, got {q}")
    p_values = np.linspace(0.001, 0.5, grid)
    margins = np.array(
        [maxwe_normalized(p, q) - pcd_ps_normalized(p, q) for p in p_values]
    )
    index = int(np.argmax(margins))
    return float(p_values[index]), float(margins[index])


def q_where_variation_helps_maxwe() -> float:
    """The spare fraction above which more variation *helps* Max-WE.

    d/dq of Eq. 6 normalized has the sign of ``4p - 1``: above 25% spares
    the weak-strong rescue harvests the spread faster than the ideal
    baseline grows.  (A constant of the model, returned for discoverability
    and tested against numeric differentiation.)
    """
    return 0.25
