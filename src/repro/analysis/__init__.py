"""Closed-form lifetime analysis (paper Sections 3.1 and 4.3).

Every equation of the paper's analysis, stated over the tractable linear
endurance model: the ideal lifetime (Eq. 3), the lifetime under UAA
(Eq. 4) and their ratio (Eq. 5), the Max-WE / PCD-PS / PS-worst lifetimes
under UAA (Eq. 6-8), and the Figure 5 comparison surface over the spare
fraction ``p`` and the variation degree ``q``.
"""

from repro.analysis.crossovers import (
    break_even_q,
    maxwe_advantage_peak,
    spare_fraction_for_target,
)
from repro.analysis.lifetime import (
    ideal_lifetime,
    maxwe_lifetime,
    maxwe_normalized,
    pcd_ps_lifetime,
    pcd_ps_normalized,
    ps_worst_lifetime,
    ps_worst_normalized,
    uaa_fraction,
    uaa_lifetime,
)
from repro.analysis.oracle import (
    fractional_oracle_lifetime,
    greedy_oracle_lifetime,
)
from repro.analysis.surfaces import LifetimeSurface, lifetime_surface
from repro.analysis.walltime import (
    WriteBandwidth,
    device_lifetime_seconds,
    format_duration,
)

__all__ = [
    "break_even_q",
    "maxwe_advantage_peak",
    "spare_fraction_for_target",
    "ideal_lifetime",
    "maxwe_lifetime",
    "maxwe_normalized",
    "pcd_ps_lifetime",
    "pcd_ps_normalized",
    "ps_worst_lifetime",
    "ps_worst_normalized",
    "uaa_fraction",
    "uaa_lifetime",
    "fractional_oracle_lifetime",
    "greedy_oracle_lifetime",
    "LifetimeSurface",
    "lifetime_surface",
    "WriteBandwidth",
    "device_lifetime_seconds",
    "format_duration",
]
