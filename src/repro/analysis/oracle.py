"""Offline-optimal spare allocation: how good could any scheme be?

The paper compares Max-WE against deployed baselines; a reproduction can
also ask how far the scheme sits from the *offline optimum* -- a
clairvoyant allocator that knows every endurance value and the attack in
advance.  Under UAA every working slot absorbs the same wear ``w``, so a
device with ``S`` spares survives to ``w`` iff the slots can be
provisioned so each one's chain (its own line plus the spares assigned to
it over time) totals at least ``w``.  Two bounds bracket the optimum:

* :func:`fractional_oracle_lifetime` -- spares may be split arbitrarily
  across slots (an LP relaxation).  For a fixed ``w`` the best spare set
  is the ``S`` lines with the largest *excess* ``max(0, e - w)``: a
  working line can contribute at most ``w`` before the device-wide
  failure point, so endurance above ``w`` is stranded unless the line is
  harvested as a spare.  Feasibility is then a simple sum comparison,
  and the optimal ``w`` falls out of a binary search.
* :func:`greedy_oracle_lifetime` -- spares are integral (one spare serves
  one slot at a time, chains allowed), assigned by a largest-deficit /
  largest-spare greedy.  This is achievable by a real (if clairvoyant)
  controller, so it lower-bounds the optimum that the fractional bound
  upper-bounds.

A structural insight falls out (exercised in the ABL-ORACLE bench): the
*fractional* optimum harvests the **strongest** lines as spares, while
every realistic one-line-per-rescue scheme -- including Max-WE -- does
better reserving the **weakest** lines, because an integral rescue
consumes a whole spare regardless of the deficit it fills.  Max-WE's
weak-priority rule is the right answer under the integral constraint the
hardware actually has.
"""

from __future__ import annotations

import numpy as np

from repro.endurance.emap import EnduranceMap
from repro.util.validation import require_fraction

#: Relative precision of the binary searches.
_TOLERANCE = 1e-9


def _spares_and_lines(emap: EnduranceMap, spare_fraction: float) -> tuple[int, int]:
    require_fraction(spare_fraction, "spare_fraction")
    total = emap.lines
    spares = int(round(spare_fraction * total))
    if spares >= total:
        raise ValueError("spare_fraction must leave at least one working line")
    return spares, total


def fractional_oracle_lifetime(emap: EnduranceMap, spare_fraction: float) -> float:
    """Normalized-lifetime upper bound with infinitely divisible spares.

    Feasibility of wear level ``w``: every line contributes
    ``min(e, w)`` as a worker; electing it a spare adds its excess
    ``max(0, e - w)``.  With the ``S`` largest excesses harvested, the
    device survives iff total supply covers the ``(N - S) * w`` demand.
    """
    spares, total = _spares_and_lines(emap, spare_fraction)
    endurance = emap.line_endurance
    workers = total - spares

    def feasible(w: float) -> bool:
        base = np.minimum(endurance, w).sum()
        if spares > 0:
            excess = np.maximum(endurance - w, 0.0)
            bonus = np.sort(excess)[::-1][:spares].sum()
        else:
            bonus = 0.0
        return base + bonus >= workers * w - _TOLERANCE

    low, high = 0.0, float(endurance.sum()) / workers
    for _ in range(200):
        mid = 0.5 * (low + high)
        if feasible(mid):
            low = mid
        else:
            high = mid
    return workers * low / emap.total_endurance


def greedy_oracle_lifetime(
    emap: EnduranceMap,
    spare_fraction: float,
    *,
    spare_selection: str = "weakest",
) -> float:
    """Achievable clairvoyant lifetime with integral spare chaining.

    For a candidate wear level ``w``: working slots with ``e < w`` have a
    deficit; the greedy covers the largest deficit first, chaining the
    largest remaining spares onto it.  The binary search returns the
    largest feasible ``w``.

    Parameters
    ----------
    spare_selection:
        Which lines form the pool: ``"weakest"`` (Max-WE's weak-priority)
        or ``"strongest"`` (the fractional optimum's choice) -- exposing
        the integral-versus-fractional inversion described in the module
        docstring.
    """
    spares, total = _spares_and_lines(emap, spare_fraction)
    if spare_selection not in ("weakest", "strongest"):
        raise ValueError(
            f"spare_selection must be 'weakest' or 'strongest', got {spare_selection!r}"
        )
    endurance = np.sort(emap.line_endurance)
    if spares == 0:
        pool = np.empty(0)
        workers_endurance = endurance
    elif spare_selection == "weakest":
        pool = endurance[:spares]
        workers_endurance = endurance[spares:]
    else:
        pool = endurance[total - spares :]
        workers_endurance = endurance[: total - spares]
    workers = workers_endurance.size

    def feasible(w: float) -> bool:
        deficits = np.sort(np.maximum(w - workers_endurance, 0.0))[::-1]
        deficits = deficits[deficits > _TOLERANCE]
        supply = np.sort(pool)[::-1]
        index = 0
        for deficit in deficits:
            remaining = deficit
            while remaining > _TOLERANCE:
                if index >= supply.size:
                    return False
                remaining -= supply[index]
                index += 1
        return True

    low, high = 0.0, float(endurance.sum()) / workers
    for _ in range(200):
        mid = 0.5 * (low + high)
        if feasible(mid):
            low = mid
        else:
            high = mid
    return workers * low / emap.total_endurance
