"""The Figure 5 lifetime-comparison surface.

Figure 5 plots the normalized analytic lifetimes of Max-WE, PCD/PS and
PS-worst over the grid ``0.1 <= p <= 0.3``, ``10 <= q <= 100``, showing
Max-WE dominating everywhere.  :func:`lifetime_surface` evaluates the
three Eq. 6-8 surfaces on an arbitrary grid; the bench prints the series,
and :meth:`LifetimeSurface.maxwe_dominates` asserts the paper's headline
claim ("Max-WE always outperforms both PCD/PS and PS-worst").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.lifetime import (
    maxwe_normalized,
    pcd_ps_normalized,
    ps_worst_normalized,
)

#: The paper's Figure 5 parameter ranges.
FIG5_P_RANGE = (0.1, 0.3)
FIG5_Q_RANGE = (10.0, 100.0)


@dataclass(frozen=True)
class LifetimeSurface:
    """Normalized analytic lifetimes on a ``(p, q)`` grid.

    Attributes
    ----------
    p_values, q_values:
        Grid axes.
    maxwe, pcd_ps, ps_worst:
        2-D arrays indexed ``[p_index, q_index]``.
    """

    p_values: np.ndarray
    q_values: np.ndarray
    maxwe: np.ndarray
    pcd_ps: np.ndarray
    ps_worst: np.ndarray

    def maxwe_dominates(self) -> bool:
        """Whether Max-WE beats both baselines at every grid point."""
        return bool(
            np.all(self.maxwe >= self.pcd_ps) and np.all(self.maxwe >= self.ps_worst)
        )

    def at(self, p: float, q: float) -> dict[str, float]:
        """Spot values at an exact grid point."""
        p_matches = np.flatnonzero(np.isclose(self.p_values, p))
        q_matches = np.flatnonzero(np.isclose(self.q_values, q))
        if p_matches.size != 1 or q_matches.size != 1:
            raise KeyError(f"({p}, {q}) is not a grid point")
        i, j = int(p_matches[0]), int(q_matches[0])
        return {
            "max-we": float(self.maxwe[i, j]),
            "pcd-ps": float(self.pcd_ps[i, j]),
            "ps-worst": float(self.ps_worst[i, j]),
        }


def lifetime_surface(
    p_values: Sequence[float] | None = None,
    q_values: Sequence[float] | None = None,
) -> LifetimeSurface:
    """Evaluate the three Figure 5 surfaces on a grid.

    Defaults to the paper's ranges: ``p`` from 0.1 to 0.3 in steps of
    0.05, ``q`` from 10 to 100 in steps of 10.
    """
    if p_values is None:
        p_values = np.round(np.arange(0.10, 0.3001, 0.05), 4)
    if q_values is None:
        q_values = np.arange(10.0, 100.01, 10.0)
    p_array = np.asarray(p_values, dtype=float)
    q_array = np.asarray(q_values, dtype=float)
    if p_array.size == 0 or q_array.size == 0:
        raise ValueError("grid axes must be non-empty")

    shape = (p_array.size, q_array.size)
    maxwe = np.empty(shape)
    pcd = np.empty(shape)
    worst = np.empty(shape)
    for i, p in enumerate(p_array):
        for j, q in enumerate(q_array):
            maxwe[i, j] = maxwe_normalized(float(p), float(q))
            pcd[i, j] = pcd_ps_normalized(float(p), float(q))
            worst[i, j] = ps_worst_normalized(float(p), float(q))
    return LifetimeSurface(
        p_values=p_array,
        q_values=q_array,
        maxwe=maxwe,
        pcd_ps=pcd,
        ps_worst=worst,
    )
