"""Toss-up Wear Leveling (Zhang & Sun, DAC'17) -- related-work extension.

TWL bonds each weak block with a strong block and randomly "tosses" every
write between the two, with the coin weighted so that both members of a
bond consume their endurance at the same *fractional* rate.  Within a
bond the expected wear is therefore proportional to endurance (perfect
pairwise leveling); across bonds there is no redistribution at all, which
is the scheme's weakness under concentrated attack -- all the damage lands
inside one bond.

The paper lists TWL among the endurance-variation-aware schemes that UAA
invalidates (Section 1); it is implemented here as an extension baseline
for the ablation benches.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    PROFILE_SKEWED,
    PROFILE_UNIFORM,
    AccessProfile,
)
from repro.wearlevel.base import SwapOp, WearDistribution
from repro.wearlevel._regions import RegionMappedScheme


class TossUpWL(RegionMappedScheme):
    """Endurance-weighted random tossing between bonded region pairs.

    Regions are bonded strongest-with-weakest by the endurance metric at
    attach time.  Every write to a logical line lands on its own region or
    the bonded partner with probability proportional to the two regions'
    endurance -- Zhang & Sun's consistent-wear coin.
    """

    name = "toss-up"

    def __init__(self, lines_per_region: int = 1) -> None:
        super().__init__(lines_per_region)
        self._partner: np.ndarray | None = None  # physical region -> bonded partner
        self._strong_probability: np.ndarray | None = None

    def _on_attach(self) -> None:
        super()._on_attach()
        metric = self.region_endurance_metric()
        order = np.argsort(metric, kind="stable")
        count = self.region_count
        partner = np.arange(count, dtype=np.intp)
        for index in range(count // 2):
            weak = int(order[index])
            strong = int(order[count - 1 - index])
            partner[weak] = strong
            partner[strong] = weak
        self._partner = partner
        total = metric + metric[partner]
        self._strong_probability = metric / total

    def bonded_partner(self, physical_region: int) -> int:
        """The region bonded with ``physical_region`` (itself if unpaired)."""
        self._require_attached()
        assert self._partner is not None
        return int(self._partner[physical_region])

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Endurance-proportional wear within bonds; none across bonds."""
        self._require_attached()
        assert self._partner is not None
        endurance = self.slot_endurance
        count = self.slots
        lpr = self.lines_per_region
        # Per-slot endurance share within its bond.
        region_of_slot = np.arange(count) // lpr
        partner_slots = (
            self._partner[region_of_slot] * lpr + (np.arange(count) % lpr)
        )
        share = endurance / (endurance + endurance[partner_slots])

        if profile.kind == PROFILE_UNIFORM:
            logical_rates = np.full(count, 1.0 / count)
        elif profile.kind == PROFILE_SKEWED:
            logical_rates = profile.logical_rates(count)
        elif profile.kind == PROFILE_CONCENTRATED:
            assert self._rng is not None
            logical_rates = np.full(count, (1.0 - profile.hot_fraction) / count)
            hot = int(self._rng.integers(0, count))
            logical_rates[hot] += profile.hot_fraction
        else:  # pragma: no cover
            raise ValueError(f"unknown profile kind {profile.kind!r}")

        # A logical line's traffic splits between its slot and the bonded
        # slot according to the endurance-weighted coin.
        weights = logical_rates * share
        np.add.at(weights, partner_slots, logical_rates * (1.0 - share))
        return WearDistribution(weights=weights, useful_fraction=1.0)

    def translate(self, logical: int) -> int:
        """Expected-case translation: toss the coin for this access."""
        self._require_attached()
        assert self._partner is not None and self._strong_probability is not None
        assert self._rng is not None
        physical = super().translate(logical)
        region = physical // self.lines_per_region
        if self._rng.random() < float(self._strong_probability[region]):
            return physical
        partner_region = int(self._partner[region])
        return partner_region * self.lines_per_region + physical % self.lines_per_region

    def record_write(self, logical: int) -> List[SwapOp]:
        self._require_attached()
        return []
