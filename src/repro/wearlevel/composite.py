"""Composite wear-leveling: an intra-region scheme under an inter-region one.

Deployed wear-levelers are commonly hierarchical -- Security Refresh's
"two-level" design is the canonical example: a cheap algebraic scheme
(Start-Gap) rotates lines *within* each region while a randomizing scheme
shuffles whole regions.  :class:`CompositeWearLeveler` composes any two
library schemes that way, giving the test suite a vehicle for checking
that stationary models compose the way the mechanisms do.

Composition rules:

* translation chains: the outer scheme maps the logical region, the inner
  scheme (one instance per region) maps the line within it;
* remap side effects from both levels are merged, with inner-level slot
  ids lifted into the outer scheme's current region frame;
* the fluid stationary distribution multiplies: the outer scheme fixes
  the per-region wear shares, the inner scheme shapes wear within each
  region; useful fractions multiply (both levels' overheads apply).
"""

from __future__ import annotations

from typing import Callable, List

import numpy as np

from repro.attacks.base import AccessProfile
from repro.util.validation import require_positive_int
from repro.wearlevel.base import SwapOp, WearDistribution, WearLeveler
from repro.wearlevel._regions import RegionMappedScheme


class CompositeWearLeveler(WearLeveler):
    """An inner per-region scheme stacked under an outer region scheme.

    Parameters
    ----------
    outer:
        A region-granularity scheme (mapping whole regions).
    inner_factory:
        Zero-argument constructor for the per-region inner scheme; one
        instance is created per region at attach time.
    lines_per_region:
        Region size; must match ``outer``'s granularity.
    """

    name = "composite"

    def __init__(
        self,
        outer: RegionMappedScheme,
        inner_factory: Callable[[], WearLeveler],
        lines_per_region: int,
    ) -> None:
        super().__init__()
        require_positive_int(lines_per_region, "lines_per_region")
        if outer.lines_per_region != lines_per_region:
            raise ValueError(
                f"outer scheme maps {outer.lines_per_region}-line regions but "
                f"the composite declares {lines_per_region}"
            )
        self._outer = outer
        self._inner_factory = inner_factory
        self._lines_per_region = lines_per_region
        self._inner: List[WearLeveler] = []

    @property
    def outer(self) -> RegionMappedScheme:
        """The inter-region scheme."""
        return self._outer

    @property
    def inner(self) -> List[WearLeveler]:
        """Per-region inner scheme instances (after attach)."""
        self._require_attached()
        return self._inner

    @property
    def logical_lines(self) -> int:
        """Logical capacity: inner schemes may sacrifice slots (Start-Gap)."""
        self._require_attached()
        per_region = getattr(
            self._inner[0], "logical_lines", self._lines_per_region
        )
        return per_region * len(self._inner)

    def _on_attach(self) -> None:
        assert self._slot_endurance is not None and self._rng is not None
        if self.slots % self._lines_per_region != 0:
            raise ValueError(
                f"slot count {self.slots} is not a multiple of "
                f"lines_per_region {self._lines_per_region}"
            )
        self._outer.attach(self._slot_endurance, self._rng)
        regions = self.slots // self._lines_per_region
        self._inner = []
        for region in range(regions):
            scheme = self._inner_factory()
            start = region * self._lines_per_region
            scheme.attach(
                self._slot_endurance[start : start + self._lines_per_region],
                self._rng,
            )
            self._inner.append(scheme)

    # ------------------------------------------------------------------
    # Fluid view
    # ------------------------------------------------------------------

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Outer region shares shaped by the inner within-region pattern."""
        self._require_attached()
        outer_dist = self._outer.wear_weights(profile)
        per = self._lines_per_region
        regions = self.slots // per

        weights = np.empty(self.slots)
        useful = outer_dist.useful_fraction
        inner_useful_product = 1.0
        for region in range(regions):
            start = region * per
            region_share = float(outer_dist.weights[start : start + per].sum())
            inner_dist = self._inner[region].wear_weights(
                self._region_profile(profile, start, per)
            )
            inner_weights = inner_dist.weights / inner_dist.weights.sum()
            weights[start : start + per] = region_share * inner_weights
            inner_useful_product = min(
                inner_useful_product, inner_dist.useful_fraction
            )
        return WearDistribution(
            weights=weights, useful_fraction=useful * inner_useful_product
        )

    @staticmethod
    def _region_profile(profile: AccessProfile, start: int, per: int) -> AccessProfile:
        """Restrict a device-wide profile to one region's slots."""
        if profile.kind != "skewed":
            return profile
        assert profile.weights is not None
        region_weights = np.asarray(profile.weights, dtype=float)[start : start + per]
        if region_weights.sum() <= 0:
            # The region receives no traffic; any in-region shape works.
            return AccessProfile(kind="uniform")
        return AccessProfile(kind="skewed", weights=region_weights)

    # ------------------------------------------------------------------
    # Exact view
    # ------------------------------------------------------------------

    def translate(self, logical: int) -> int:
        self._require_attached()
        per_logical = getattr(
            self._inner[0], "logical_lines", self._lines_per_region
        )
        if not 0 <= logical < per_logical * len(self._inner):
            raise IndexError(
                f"logical address {logical} out of range "
                f"[0, {per_logical * len(self._inner)})"
            )
        region, offset = divmod(logical, per_logical)
        outer_line = self._outer.translate(region * self._lines_per_region)
        physical_region = outer_line // self._lines_per_region
        inner_offset = self._inner[region].translate(offset)
        return physical_region * self._lines_per_region + inner_offset

    def record_write(self, logical: int) -> List[SwapOp]:
        self._require_attached()
        per_logical = getattr(
            self._inner[0], "logical_lines", self._lines_per_region
        )
        region, offset = divmod(logical, per_logical)
        ops: List[SwapOp] = []
        # Outer side effects arrive in physical slot coordinates already.
        ops.extend(self._outer.record_write(region * self._lines_per_region))
        # Inner side effects are region-local; lift them into the region's
        # *current* physical frame.
        outer_line = self._outer.translate(region * self._lines_per_region)
        base = (outer_line // self._lines_per_region) * self._lines_per_region
        for slot, extra in self._inner[region].record_write(offset):
            ops.append((base + slot, extra))
        return ops

    def describe(self) -> str:
        inner_name = self._inner_factory().name
        return f"composite ({self._outer.name} over per-region {inner_name})"
