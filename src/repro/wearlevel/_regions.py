"""Shared region-permutation machinery for region-granularity schemes.

TLSR, PCM-S, BWL, WAWL and Toss-up WL all manage a permutation of
equal-size regions over the in-service slots.  This module centralizes the
mapping state, address translation, and the swap-cost accounting of
Figure 2: exchanging the contents of two regions writes every line of both
regions once (the triggering user write then lands on the new mapping and
is accounted separately, which yields the figure's ``1 + 2`` split for the
swapped pair).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.util.validation import require_positive_int
from repro.wearlevel.base import SwapOp, WearLeveler


class RegionMappedScheme(WearLeveler):
    """A wear-leveler holding a logical-to-physical region permutation.

    Parameters
    ----------
    lines_per_region:
        Granularity of the mapping; the in-service slot count must be a
        multiple of it.  1 gives line-granularity mapping.
    """

    def __init__(self, lines_per_region: int = 1) -> None:
        super().__init__()
        require_positive_int(lines_per_region, "lines_per_region")
        self._lines_per_region = lines_per_region
        self._perm: np.ndarray | None = None  # logical region -> physical region
        self._user_writes: int = 0

    # ------------------------------------------------------------------
    # Region structure
    # ------------------------------------------------------------------

    @property
    def lines_per_region(self) -> int:
        """Mapping granularity in lines."""
        return self._lines_per_region

    @property
    def region_count(self) -> int:
        """Number of mapped regions (available after attach)."""
        self._require_attached()
        return self.slots // self._lines_per_region

    def _on_attach(self) -> None:
        if self.slots % self._lines_per_region != 0:
            raise ValueError(
                f"slot count {self.slots} is not a multiple of "
                f"lines_per_region {self._lines_per_region}"
            )
        self._perm = np.arange(self.region_count, dtype=np.intp)
        self._user_writes = 0

    def region_endurance_metric(self) -> np.ndarray:
        """Per-physical-region endurance metric (min over member lines)."""
        self._require_attached()
        grid = self.slot_endurance.reshape(self.region_count, self._lines_per_region)
        return grid.min(axis=1)

    # ------------------------------------------------------------------
    # Translation and swaps
    # ------------------------------------------------------------------

    def translate(self, logical: int) -> int:
        self._require_attached()
        if not 0 <= logical < self.slots:
            raise IndexError(f"logical address {logical} out of range [0, {self.slots})")
        assert self._perm is not None
        region, offset = divmod(logical, self._lines_per_region)
        return int(self._perm[region]) * self._lines_per_region + offset

    def _swap_logical_regions(self, region_a: int, region_b: int) -> List[SwapOp]:
        """Exchange the physical hosts of two logical regions.

        Returns the data-movement wear: one write per line on both sides
        (Figure 2 accounting; the user write that triggered the swap is
        applied by the caller after translation).
        """
        self._require_attached()
        assert self._perm is not None
        if region_a == region_b:
            return []
        phys_a = int(self._perm[region_a])
        phys_b = int(self._perm[region_b])
        self._perm[region_a], self._perm[region_b] = phys_b, phys_a
        ops: List[SwapOp] = []
        base_a = phys_a * self._lines_per_region
        base_b = phys_b * self._lines_per_region
        for offset in range(self._lines_per_region):
            ops.append((base_a + offset, 1))
            ops.append((base_b + offset, 1))
        return ops

    def logical_region_of_physical(self, physical_region: int) -> int:
        """Inverse permutation lookup."""
        self._require_attached()
        assert self._perm is not None
        matches = np.flatnonzero(self._perm == physical_region)
        if matches.size != 1:
            raise ValueError(f"physical region {physical_region} not mapped exactly once")
        return int(matches[0])

    @property
    def permutation(self) -> np.ndarray:
        """Copy of the current logical-to-physical region permutation."""
        self._require_attached()
        assert self._perm is not None
        return self._perm.copy()
