"""Wear-leveling interface shared by the fluid and exact simulators.

A wear-leveler owns the logical-to-physical mapping of the lines *in
service* (the user-visible slots).  It exposes two complementary views:

**Fluid view** (:meth:`WearLeveler.wear_weights`): given an attack's
:class:`~repro.attacks.base.AccessProfile`, return the scheme's stationary
per-slot wear distribution -- how the traffic lands on physical slots once
the scheme's randomization mixes it -- plus the fraction of applied wear
that corresponds to served user writes (remap swaps cost extra writes;
Figure 2 of the paper shows a swap adds one write to the source and two to
the destination).  The lifetime engine consumes this directly.

**Exact view** (:meth:`WearLeveler.translate` /
:meth:`WearLeveler.record_write`): a concrete mapping plus per-write remap
side effects, consumed by the exact reference simulator that validates the
fluid model on small devices.

The stationary distributions follow one rule, derived scheme by scheme in
the submodules: wear-leveling is a time-varying *permutation*, so the
uniform part of the traffic stays uniform no matter the scheme (the
paper's observation that lifetime under UAA is uncorrelated with the
wear-leveling scheme), while the concentrated/skewed *excess* is spread
according to how the scheme picks remap targets -- uniformly for
endurance-oblivious randomizers, proportionally to ``endurance**beta`` for
endurance-aware ones.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    PROFILE_SKEWED,
    PROFILE_UNIFORM,
    AccessProfile,
)
from repro.util.rng import RandomState, derive_rng
from repro.util.validation import require_fraction


@dataclass(frozen=True)
class WearDistribution:
    """Stationary wear distribution over slots.

    Attributes
    ----------
    weights:
        Relative expected wear rate per slot (any positive scale; the
        engine renormalizes).  Includes remap-overhead wear.
    useful_fraction:
        Served user writes per unit of total applied wear, in ``(0, 1]``.
        ``1.0`` means no remap overhead.
    """

    weights: np.ndarray
    useful_fraction: float = 1.0

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights, dtype=float)
        if weights.ndim != 1 or weights.size == 0:
            raise ValueError("weights must be a non-empty 1-D array")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        if weights.sum() <= 0:
            raise ValueError("weights must have positive sum")
        object.__setattr__(self, "weights", weights)
        require_fraction(self.useful_fraction, "useful_fraction")
        if self.useful_fraction == 0:
            raise ValueError("useful_fraction must be positive")


#: A data-movement side effect of a remap: (physical_slot, extra_writes).
SwapOp = Tuple[int, int]


class WearLeveler(ABC):
    """Base class for all wear-leveling schemes."""

    #: Short machine-readable name used in result tables.
    name: str = "wear-leveler"

    def __init__(self) -> None:
        self._slot_endurance: np.ndarray | None = None
        self._rng: np.random.Generator | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def attach(self, slot_endurance: np.ndarray, rng: RandomState = None) -> None:
        """Bind the scheme to a device's in-service slots.

        Parameters
        ----------
        slot_endurance:
            Per-slot endurance of the lines initially backing the user
            space; endurance-aware schemes read their metric from it (the
            paper notes the distribution parameters are available from
            manufacture time).
        rng:
            Randomness for the scheme's own randomization.
        """
        endurance = np.asarray(slot_endurance, dtype=float)
        if endurance.ndim != 1 or endurance.size == 0:
            raise ValueError("slot_endurance must be a non-empty 1-D array")
        if np.any(endurance <= 0):
            raise ValueError("slot endurances must be strictly positive")
        self._slot_endurance = endurance
        self._rng = derive_rng(rng, f"wl-{self.name}")
        self._on_attach()

    def _on_attach(self) -> None:
        """Hook for subclasses to build their mapping state."""

    @property
    def slots(self) -> int:
        """Number of user-visible slots (available after :meth:`attach`)."""
        self._require_attached()
        assert self._slot_endurance is not None
        return int(self._slot_endurance.size)

    @property
    def slot_endurance(self) -> np.ndarray:
        """Per-slot endurances the scheme was attached with."""
        self._require_attached()
        assert self._slot_endurance is not None
        return self._slot_endurance

    def _require_attached(self) -> None:
        if self._slot_endurance is None:
            raise RuntimeError(f"{type(self).__name__} used before attach()")

    # ------------------------------------------------------------------
    # Fluid view
    # ------------------------------------------------------------------

    @abstractmethod
    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Stationary wear distribution for the given access profile."""

    # ------------------------------------------------------------------
    # Exact view
    # ------------------------------------------------------------------

    @abstractmethod
    def translate(self, logical: int) -> int:
        """Current physical slot backing logical address ``logical``."""

    @abstractmethod
    def record_write(self, logical: int) -> List[SwapOp]:
        """Account one user write to ``logical``; return remap side effects.

        The returned list holds ``(physical_slot, extra_writes)`` pairs for
        the data movement the write triggered.  A swap of lines A and B
        redirected to B reproduces Figure 2's accounting: 1 write to A and
        2 writes to B (A's old data moves to B, then the user write lands
        on B; B's old data lands on A).
        """

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return self.name

    # ------------------------------------------------------------------
    # Shared stationary-distribution helper
    # ------------------------------------------------------------------

    def _stationary_weights(
        self,
        profile: AccessProfile,
        bias_exponent: float,
        *,
        overhead_uniform: float = 0.0,
        overhead_nonuniform: float = 0.0,
    ) -> WearDistribution:
        """Compose the scheme-generic stationary distribution.

        The uniform component of the traffic is permutation-invariant and
        stays uniform; the non-uniform *excess* is redistributed according
        to the scheme's remap-target bias ``endurance**bias_exponent``.

        Parameters
        ----------
        bias_exponent:
            0 for endurance-oblivious randomizers; >0 for endurance-aware
            schemes that steer hot data toward strong lines.
        overhead_uniform / overhead_nonuniform:
            Extra wear per user write caused by remap data movement for
            uniform traffic (interval-triggered schemes keep remapping
            under UAA) and for concentrated traffic respectively.
        """
        self._require_attached()
        endurance = self.slot_endurance
        count = endurance.size
        uniform = np.full(count, 1.0 / count)
        bias = endurance**bias_exponent
        bias = bias / bias.sum()

        if profile.kind == PROFILE_UNIFORM:
            excess_mass = 0.0
            base = uniform
        elif profile.kind == PROFILE_CONCENTRATED:
            excess_mass = 1.0
            base = uniform  # unused when excess_mass == 1
        elif profile.kind == PROFILE_SKEWED:
            rates = profile.logical_rates(count)
            floor = float(rates.min()) * count  # mass in the uniform floor
            excess_mass = 1.0 - floor
            base = uniform
        else:  # pragma: no cover - AccessProfile validates kinds
            raise ValueError(f"unknown profile kind {profile.kind!r}")

        weights = (1.0 - excess_mass) * base + excess_mass * bias
        overhead = (
            (1.0 - excess_mass) * overhead_uniform + excess_mass * overhead_nonuniform
        )
        # Overhead wear lands where the remap traffic lands; spreading it
        # with the same mixture keeps the distribution self-consistent.
        useful = 1.0 / (1.0 + overhead)
        return WearDistribution(weights=weights, useful_fraction=useful)
