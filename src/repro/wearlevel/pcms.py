"""PCM-S: region-level randomized swapping (Seznec, 2009).

Seznec's secure PCM main-memory proposal partitions memory into regions
and periodically swaps the contents of two regions chosen (pseudo)randomly,
so that a malicious process cannot keep writes focused on any physical
region for long.  Like TLSR it is endurance-oblivious -- the swap targets
are uniform random -- so its stationary wear is uniform and the paper's
evaluation shows it tracking TLSR within 0.1% (Figure 7: 42.8% vs 42.7%).

Exact mechanism: every ``swap_interval`` user writes, two uniformly random
logical regions exchange physical hosts, writing every line of both
regions once.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AccessProfile
from repro.util.validation import require_positive_int
from repro.wearlevel.base import SwapOp, WearDistribution
from repro.wearlevel._regions import RegionMappedScheme

#: Default user writes between region swaps.
DEFAULT_SWAP_INTERVAL: int = 1024


class PCMS(RegionMappedScheme):
    """Random region swapping at a fixed write interval.

    Parameters
    ----------
    lines_per_region:
        Region size in lines.
    swap_interval:
        User writes between region swaps.
    """

    name = "pcm-s"

    def __init__(
        self,
        lines_per_region: int = 1,
        swap_interval: int = DEFAULT_SWAP_INTERVAL,
    ) -> None:
        super().__init__(lines_per_region)
        require_positive_int(swap_interval, "swap_interval")
        self._swap_interval = swap_interval
        self._writes_since_swap = 0

    @property
    def swap_interval(self) -> int:
        """User writes between region swaps."""
        return self._swap_interval

    def _on_attach(self) -> None:
        super()._on_attach()
        self._writes_since_swap = 0

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Uniform stationary wear; swaps cost ``2 * lines_per_region`` writes.

        The swap schedule is time-based, not hotness-based, so the
        overhead also applies under uniform traffic.
        """
        overhead = 2.0 * self.lines_per_region / self._swap_interval
        return self._stationary_weights(
            profile,
            bias_exponent=0.0,
            overhead_uniform=overhead,
            overhead_nonuniform=overhead,
        )

    def record_write(self, logical: int) -> List[SwapOp]:
        self._require_attached()
        assert self._rng is not None
        self._writes_since_swap += 1
        if self._writes_since_swap < self._swap_interval:
            return []
        self._writes_since_swap = 0
        if self.region_count < 2:
            return []
        region_a = int(self._rng.integers(0, self.region_count))
        region_b = int(self._rng.integers(0, self.region_count))
        return self._swap_logical_regions(region_a, region_b)
