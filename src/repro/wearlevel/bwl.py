"""BWL: endurance-variation-aware dynamic wear-leveling (Yun et al., TVLSI'15).

Yun et al.'s dynamic wear-leveling tracks per-region write counts and,
when the *wear rate* of a region (writes accumulated since its last remap,
normalized by the region's endurance metric) crosses a threshold, migrates
its data to the region with the most remaining life.  Unlike TLSR/PCM-S
the remap target selection consults endurance, so hot traffic drifts
toward strong regions -- but the *trigger* still keys off observed write
counts, which gives the scheme only partial leverage: a hot region must
first absorb a threshold's worth of writes before it moves, and the move
considers remaining life (a mix of endurance and past wear) rather than
steering proportionally to endurance.

Stationary model: the concentrated excess lands on regions roughly
proportionally to the *square root* of endurance.  Intuition: the time a
hot mapping stays on region ``r`` scales with the threshold (endurance-
normalized, so dwell ∝ e_r), while the probability of being *chosen* as a
target is inversely related to accumulated wear, which in steady state
grows with e_r, damping selection by ~1/sqrt(e_r); the product leaves
~e_r^0.5.  We encode this as ``bias_exponent = 0.5`` and validate against
the exact mechanism in the test suite; the paper's Figure 7 (BWL = 53.5%
vs 42.7% for oblivious schemes and 72.5% for WAWL) sits exactly in the
mid-range this exponent produces.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.base import AccessProfile
from repro.util.validation import require_positive, require_positive_int
from repro.wearlevel.base import SwapOp, WearDistribution
from repro.wearlevel._regions import RegionMappedScheme

#: Stationary endurance bias of the mechanism (see module docstring).
BWL_BIAS_EXPONENT: float = 0.5

#: Default wear-rate threshold triggering a migration, as a fraction of the
#: region's endurance metric.
DEFAULT_TRIGGER_FRACTION: float = 0.01


class BWL(RegionMappedScheme):
    """Threshold-triggered migration toward the most-remaining-life region.

    Parameters
    ----------
    lines_per_region:
        Region size in lines.
    trigger_fraction:
        A logical region migrates once it absorbs this fraction of its
        current host's endurance since its last migration.
    """

    name = "bwl"

    def __init__(
        self,
        lines_per_region: int = 1,
        trigger_fraction: float = DEFAULT_TRIGGER_FRACTION,
    ) -> None:
        super().__init__(lines_per_region)
        require_positive(trigger_fraction, "trigger_fraction")
        self._trigger_fraction = trigger_fraction
        self._since_migration: np.ndarray | None = None  # per logical region
        self._host_wear: np.ndarray | None = None  # per physical region

    @property
    def trigger_fraction(self) -> float:
        """Endurance fraction absorbed before a region migrates."""
        return self._trigger_fraction

    def _on_attach(self) -> None:
        super()._on_attach()
        self._since_migration = np.zeros(self.region_count)
        self._host_wear = np.zeros(self.region_count)

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Excess traffic biased by ``endurance**0.5``; triggered overhead only.

        Under uniform traffic no region crosses the wear-rate threshold
        ahead of the others, so the migration machinery stays quiet (the
        paper's Section 3.3.1 observation) and the overhead is zero.
        Under concentrated traffic the hot region migrates after absorbing
        ``trigger_fraction`` of its host's endurance; each migration moves
        two regions' contents.
        """
        require_positive_int(self.slots, "slots")
        metric = float(self.region_endurance_metric().mean())
        dwell_writes = self._trigger_fraction * metric * self.lines_per_region
        overhead = 2.0 * self.lines_per_region / max(dwell_writes, 1.0)
        return self._stationary_weights(
            profile,
            bias_exponent=BWL_BIAS_EXPONENT,
            overhead_uniform=0.0,
            overhead_nonuniform=min(overhead, 1.0),
        )

    def record_write(self, logical: int) -> List[SwapOp]:
        self._require_attached()
        assert self._since_migration is not None and self._host_wear is not None
        region = logical // self.lines_per_region
        host = int(self.permutation[region])
        self._since_migration[region] += 1
        self._host_wear[host] += 1

        metric = self.region_endurance_metric()
        threshold = self._trigger_fraction * metric[host] * self.lines_per_region
        if self._since_migration[region] < threshold:
            return []

        # Migrate to the physical region with the most remaining life.
        remaining = metric * self.lines_per_region - self._host_wear
        target_phys = int(np.argmax(remaining))
        if target_phys == host:
            self._since_migration[region] = 0
            return []
        target_logical = self.logical_region_of_physical(target_phys)
        ops = self._swap_logical_regions(region, target_logical)
        self._host_wear[host] += self.lines_per_region
        self._host_wear[target_phys] += self.lines_per_region
        self._since_migration[region] = 0
        self._since_migration[target_logical] = 0
        return ops
