"""Start-Gap wear-leveling (Qureshi et al., MICRO'09).

Start-Gap keeps one spare "gap" slot and two registers.  Every ``gap_interval``
user writes, the line adjacent to the gap is copied into it and the gap
moves one position; after the gap traverses the whole array the effective
mapping has rotated by one.  Translation is pure register arithmetic --
no mapping table -- which made it the canonical low-cost wear-leveler.

The paper cites Start-Gap as a scheme that fails under malicious wear-out
*without* endurance awareness (Section 2.2.1): its rotation spreads writes
evenly across lines, so under endurance variation the weakest line still
dies first, and under concentrated attack a physical line hosts the hot
address for ``(slots + 1) * gap_interval`` consecutive writes -- long
enough to kill weak lines outright.

Fluid-model caveat: the stationary distribution below assumes the per-line
burst ``(slots + 1) * gap_interval`` is small relative to line endurance;
the exact reference simulator exhibits the burst-kill effect that breaks
that assumption for large intervals.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AccessProfile
from repro.util.validation import require_positive_int
from repro.wearlevel.base import SwapOp, WearDistribution, WearLeveler

#: Qureshi et al.'s recommended gap-movement interval.
DEFAULT_GAP_INTERVAL: int = 100


class StartGap(WearLeveler):
    """Algebraic rotation wear-leveling with a single gap slot.

    The gap slot is modelled *inside* the attached slot array: the scheme
    serves ``slots - 1`` logical lines over ``slots`` physical slots.

    Parameters
    ----------
    gap_interval:
        User writes between gap movements (the paper's psi).
    """

    name = "start-gap"

    def __init__(self, gap_interval: int = DEFAULT_GAP_INTERVAL) -> None:
        super().__init__()
        require_positive_int(gap_interval, "gap_interval")
        self._gap_interval = gap_interval
        self._start = 0
        self._gap = 0
        self._writes_since_move = 0

    @property
    def gap_interval(self) -> int:
        """User writes between gap movements."""
        return self._gap_interval

    @property
    def logical_lines(self) -> int:
        """Logical capacity: one slot is sacrificed to the gap."""
        return self.slots - 1

    def _on_attach(self) -> None:
        if self.slots < 2:
            raise ValueError("Start-Gap needs at least 2 slots (1 line + the gap)")
        self._start = 0
        self._gap = self.slots - 1
        self._writes_since_move = 0

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Uniform stationary wear; gap copies add ``1/gap_interval`` overhead.

        Rotation visits every physical slot equally for every logical line,
        and the movement schedule is independent of traffic content, so the
        overhead applies to uniform traffic too.
        """
        overhead = 1.0 / self._gap_interval
        return self._stationary_weights(
            profile,
            bias_exponent=0.0,
            overhead_uniform=overhead,
            overhead_nonuniform=overhead,
        )

    def translate(self, logical: int) -> int:
        self._require_attached()
        if not 0 <= logical < self.logical_lines:
            raise IndexError(
                f"logical address {logical} out of range [0, {self.logical_lines})"
            )
        physical = (logical + self._start) % self.logical_lines
        if physical >= self._gap:
            physical += 1
        return physical

    def record_write(self, logical: int) -> List[SwapOp]:
        """Advance the gap clock; moving the gap copies one line (1 write)."""
        self._require_attached()
        self._writes_since_move += 1
        if self._writes_since_move < self._gap_interval:
            return []
        self._writes_since_move = 0
        # The line just "below" the gap moves into the gap slot.
        source = (self._gap - 1) % self.slots
        destination = self._gap
        self._gap = source
        if self._gap == self.slots - 1:
            # Gap wrapped: the whole array has rotated one position.
            self._start = (self._start + 1) % self.logical_lines
        return [(destination, 1)]
