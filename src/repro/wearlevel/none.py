"""The identity (no wear-leveling) scheme.

The unprotected baseline: logical addresses map straight to physical
slots, forever.  Under UAA this is irrelevant (uniform is uniform); under
a repeated-address attack it is catastrophic -- the hot line takes every
write, which is why wear-leveling exists at all.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.base import (
    PROFILE_CONCENTRATED,
    PROFILE_SKEWED,
    PROFILE_UNIFORM,
    AccessProfile,
)
from repro.wearlevel.base import SwapOp, WearDistribution, WearLeveler


class NoWearLeveling(WearLeveler):
    """Static identity mapping; no remaps, no overhead.

    For concentrated profiles the fluid view places all wear on one slot.
    The slot is drawn uniformly at attach time (the attacker picks an
    arbitrary address; with no leveling, the expected lifetime is over a
    random victim), so seeded runs remain reproducible.
    """

    name = "none"

    def __init__(self) -> None:
        super().__init__()
        self._hot_slot: int | None = None

    def _on_attach(self) -> None:
        assert self._rng is not None
        self._hot_slot = int(self._rng.integers(0, self.slots))

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        self._require_attached()
        count = self.slots
        if profile.kind == PROFILE_UNIFORM:
            return WearDistribution(np.full(count, 1.0 / count))
        if profile.kind == PROFILE_SKEWED:
            return WearDistribution(profile.logical_rates(count))
        if profile.kind == PROFILE_CONCENTRATED:
            weights = np.full(count, (1.0 - profile.hot_fraction) / count)
            assert self._hot_slot is not None
            weights[self._hot_slot] += profile.hot_fraction
            return WearDistribution(weights)
        raise ValueError(f"unknown profile kind {profile.kind!r}")  # pragma: no cover

    def translate(self, logical: int) -> int:
        self._require_attached()
        if not 0 <= logical < self.slots:
            raise IndexError(f"logical address {logical} out of range [0, {self.slots})")
        return logical

    def record_write(self, logical: int) -> List[SwapOp]:
        self._require_attached()
        return []
