"""TLSR: Two-Level Security Refresh (Seong et al., ISCA'10).

Security Refresh defends against malicious wear-out by *dynamically
randomized address mapping*: each refresh round re-maps lines using a new
random key, swapping pairs of lines incrementally (one swap every
``refresh_interval`` demand writes) so the remap cost is bounded.  The
two-level variant nests an inner refresh inside each sub-region under an
outer refresh across sub-regions, which is the configuration the paper
benchmarks as "TLSR".

The scheme is *endurance-oblivious*: remap targets are chosen by a random
key, not by endurance, so its stationary wear distribution is uniform.
That is exactly why UAA defeats it (uniform wear kills the weakest lines
first, Equation 4) and why its Figure 7/8 lifetime matches PCM-S's almost
exactly.

Exact mechanism implemented here: an inner/outer pair of incremental
random-transposition sweeps.  Every ``refresh_interval`` user writes, the
sweep cursor's line is swapped with a key-derived partner (two line
writes); a completed sweep draws a fresh key.  The inner level permutes
lines within each sub-region; the outer level permutes whole sub-regions.
This preserves the published scheme's three essential properties --
incremental cost, bounded remap rate and keyed uniform randomization --
without modelling the exact XOR-gap datapath.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.base import AccessProfile
from repro.util.validation import require_positive_int
from repro.wearlevel.base import SwapOp, WearDistribution
from repro.wearlevel._regions import RegionMappedScheme

#: Default demand writes between single remap steps.
DEFAULT_REFRESH_INTERVAL: int = 64


class TLSR(RegionMappedScheme):
    """Two-level security refresh with incremental keyed randomization.

    Parameters
    ----------
    lines_per_region:
        Sub-region size (the outer level's permutation unit).
    refresh_interval:
        User writes between individual remap steps (inner and outer steps
        alternate); smaller is safer but costs more write bandwidth.
    """

    name = "tlsr"

    def __init__(
        self,
        lines_per_region: int = 1,
        refresh_interval: int = DEFAULT_REFRESH_INTERVAL,
    ) -> None:
        super().__init__(lines_per_region)
        require_positive_int(refresh_interval, "refresh_interval")
        self._refresh_interval = refresh_interval
        self._line_perm: np.ndarray | None = None  # intra-slot permutation
        self._cursor = 0
        self._writes_since_step = 0

    @property
    def refresh_interval(self) -> int:
        """User writes between remap steps."""
        return self._refresh_interval

    def _on_attach(self) -> None:
        super()._on_attach()
        self._line_perm = np.arange(self.slots, dtype=np.intp)
        self._cursor = 0
        self._writes_since_step = 0

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Uniform stationary wear (endurance-oblivious randomization).

        Refresh keeps stepping regardless of traffic content, so the remap
        overhead (two line writes per step) applies under uniform traffic
        too -- the paper's Figure 2 point that remapping *accelerates*
        wear under UAA.
        """
        overhead = 2.0 / self._refresh_interval
        return self._stationary_weights(
            profile,
            bias_exponent=0.0,
            overhead_uniform=overhead,
            overhead_nonuniform=overhead,
        )

    def translate(self, logical: int) -> int:
        self._require_attached()
        assert self._line_perm is not None
        region_mapped = super().translate(logical)
        return int(self._line_perm[region_mapped])

    def record_write(self, logical: int) -> List[SwapOp]:
        """Advance the refresh clock; a step swaps one keyed line pair."""
        self._require_attached()
        assert self._line_perm is not None and self._rng is not None
        self._writes_since_step += 1
        if self._writes_since_step < self._refresh_interval:
            return []
        self._writes_since_step = 0

        ops: List[SwapOp] = []
        if self._cursor % 2 == 0 or self.region_count < 2:
            # Inner level: swap the cursor line with a keyed partner inside
            # its sub-region.
            line = self._cursor % self.slots
            region = line // self.lines_per_region
            base = region * self.lines_per_region
            partner = base + int(self._rng.integers(0, self.lines_per_region))
            if partner != line:
                a, b = int(self._line_perm[line]), int(self._line_perm[partner])
                self._line_perm[line], self._line_perm[partner] = b, a
                ops.extend([(a, 1), (b, 1)])
        else:
            # Outer level: swap the cursor sub-region with a keyed partner.
            region = (self._cursor // 2) % self.region_count
            partner = int(self._rng.integers(0, self.region_count))
            ops.extend(self._swap_logical_regions(region, partner))
        self._cursor += 1
        return ops
