"""Wear-leveling schemes (paper Section 2.2.1 and the Section 5 baselines).

The paper evaluates Max-WE on top of four wear-leveling schemes -- two
traditional secure schemes (TLSR, PCM-S) and two endurance-variation-aware
schemes (BWL, WAWL) -- and discusses Start-Gap and Toss-up WL in related
work.  All six are implemented here from their published descriptions, at
the paper's region granularity, with remap write-cost accounting that
reproduces Figure 2 (a swap adds one write to the source line and two to
the destination line).

Each scheme provides the fluid stationary-distribution view used by the
lifetime engine and an exact mechanism used by the reference simulator;
see :mod:`repro.wearlevel.base` for the derivation rules.
"""

from repro.wearlevel.base import SwapOp, WearDistribution, WearLeveler
from repro.wearlevel.bwl import BWL
from repro.wearlevel.composite import CompositeWearLeveler
from repro.wearlevel.none import NoWearLeveling
from repro.wearlevel.pcms import PCMS
from repro.wearlevel.security_refresh import TLSR
from repro.wearlevel.startgap import StartGap
from repro.wearlevel.tossup import TossUpWL
from repro.wearlevel.wawl import WAWL

#: The paper's Figure 7/8 wear-leveling baseline set, in paper order.
PAPER_SCHEMES = ("tlsr", "pcm-s", "bwl", "wawl")


def make_scheme(name: str, **kwargs) -> WearLeveler:
    """Factory for wear-leveling schemes by table name.

    Accepted names: ``none``, ``start-gap``, ``tlsr``, ``pcm-s``, ``bwl``,
    ``wawl``, ``toss-up``.
    """
    registry = {
        "none": NoWearLeveling,
        "start-gap": StartGap,
        "tlsr": TLSR,
        "pcm-s": PCMS,
        "bwl": BWL,
        "wawl": WAWL,
        "toss-up": TossUpWL,
    }
    try:
        cls = registry[name]
    except KeyError:
        raise ValueError(
            f"unknown wear-leveling scheme {name!r}; choose from {sorted(registry)}"
        ) from None
    if name in ("none", "start-gap"):
        # Line-granularity schemes take no region parameter; tolerate the
        # uniform factory call signature.
        kwargs.pop("lines_per_region", None)
    return cls(**kwargs)


__all__ = [
    "SwapOp",
    "WearDistribution",
    "WearLeveler",
    "BWL",
    "CompositeWearLeveler",
    "NoWearLeveling",
    "PCMS",
    "TLSR",
    "StartGap",
    "TossUpWL",
    "WAWL",
    "PAPER_SCHEMES",
    "make_scheme",
]
