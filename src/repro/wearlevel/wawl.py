"""WAWL: endurance-weighted randomized wear-leveling (Zhou et al., ICPADS'16).

WAWL ("Increasing Lifetime and Security of Phase-Change Memory with
Endurance Variation") couples *both* of its randomization knobs to the
endurance metric of each region:

* the probability that a region is chosen as the new host of remapped
  data is proportional to its endurance, and
* the swapping interval -- how long data dwells on a host before being
  remapped -- is also proportional to the host's endurance.

Under concentrated attack traffic the expected wear a physical region
absorbs is therefore (selection probability) x (dwell length), i.e.
proportional to ``endurance**2``.  Strong regions soak up quadratically
more of the attack, which is why WAWL posts the best wear-leveling-only
lifetime in the paper's Figure 7 (72.5% of ideal under BPA, vs 42.7% for
endurance-oblivious randomization); our fluid model with
``bias_exponent = 2.0`` lands within ~1.5% of that value on the same
endurance distribution.

Exact mechanism: each logical region carries a dwell budget drawn as
``interval_scale * e_host / e_mean``; once its writes exceed the budget it
remaps to a host sampled with probability proportional to endurance.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.attacks.base import AccessProfile
from repro.util.validation import require_positive_int
from repro.wearlevel.base import SwapOp, WearDistribution
from repro.wearlevel._regions import RegionMappedScheme

#: Stationary endurance bias: selection (∝e) times dwell (∝e).
WAWL_BIAS_EXPONENT: float = 2.0

#: Default mean dwell (user writes on a region before it remaps).
DEFAULT_INTERVAL_SCALE: int = 1024


class WAWL(RegionMappedScheme):
    """Endurance-proportional selection and dwell randomized remapping.

    Parameters
    ----------
    lines_per_region:
        Region size in lines.
    interval_scale:
        Mean dwell length in user writes; per-host dwell scales with the
        host's endurance relative to the mean.
    """

    name = "wawl"

    def __init__(
        self,
        lines_per_region: int = 1,
        interval_scale: int = DEFAULT_INTERVAL_SCALE,
    ) -> None:
        super().__init__(lines_per_region)
        require_positive_int(interval_scale, "interval_scale")
        self._interval_scale = interval_scale
        self._dwell: np.ndarray | None = None  # writes since remap, per logical region
        self._budget: np.ndarray | None = None  # dwell budget, per logical region

    @property
    def interval_scale(self) -> int:
        """Mean dwell length in user writes."""
        return self._interval_scale

    def _on_attach(self) -> None:
        super()._on_attach()
        self._dwell = np.zeros(self.region_count)
        metric = self.region_endurance_metric()
        self._budget = self._interval_scale * metric / metric.mean()

    def wear_weights(self, profile: AccessProfile) -> WearDistribution:
        """Excess traffic biased by ``endurance**2``; remaps only when written.

        Dwell budgets are consumed by writes, so uniform traffic advances
        every budget in lockstep and triggers remaps only after every
        region absorbed its budget -- a vanishing overhead the paper also
        treats as nil; concentrated traffic remaps every
        ``~interval_scale`` writes, moving two regions' contents.
        """
        overhead = 2.0 * self.lines_per_region / self._interval_scale
        return self._stationary_weights(
            profile,
            bias_exponent=WAWL_BIAS_EXPONENT,
            overhead_uniform=0.0,
            overhead_nonuniform=min(overhead, 1.0),
        )

    def _choose_host(self) -> int:
        """Sample a physical region with probability proportional to endurance."""
        assert self._rng is not None
        metric = self.region_endurance_metric()
        probabilities = metric / metric.sum()
        return int(self._rng.choice(self.region_count, p=probabilities))

    def record_write(self, logical: int) -> List[SwapOp]:
        self._require_attached()
        assert self._dwell is not None and self._budget is not None
        region = logical // self.lines_per_region
        self._dwell[region] += 1
        if self._dwell[region] < self._budget[region]:
            return []

        target_phys = self._choose_host()
        host = int(self.permutation[region])
        self._dwell[region] = 0
        if target_phys == host:
            return []
        target_logical = self.logical_region_of_physical(target_phys)
        ops = self._swap_logical_regions(region, target_logical)
        self._dwell[target_logical] = 0
        # Fresh dwell budgets keyed to the new hosts' endurance.
        metric = self.region_endurance_metric()
        mean_metric = metric.mean()
        self._budget[region] = self._interval_scale * metric[target_phys] / mean_metric
        self._budget[target_logical] = self._interval_scale * metric[host] / mean_metric
        return ops
