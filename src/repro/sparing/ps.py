"""PS: Physical Sparing (Ferreira et al., DATE'11).

``S`` lines are held out of service as an excess-capacity pool; a failed
in-service line is replaced by a pool line.  How the pool is *selected*
and in what order it is *allocated* spans the paper's PS variants:

* **PS (average case)** -- ``selection="random"``: the pool is a uniform
  random sample; the paper approximates its lifetime by PCD's (within
  3%, citing Ferreira et al.).
* **PS-worst** -- ``selection="strongest"``: the pool wastes the
  strongest lines as spares while the weakest lines keep serving users
  (Equation 8: the ``(S+1)``-th weakest line bounds the lifetime).
* ``selection="weakest"`` -- the weak-priority half of Max-WE *without*
  the region pairing and hybrid mapping; used by the allocation ablation
  (bench ABL-MATCH) to isolate how much each Max-WE ingredient buys.

Allocation order (``allocation``): ``"strongest-first"`` (Max-WE's
policy), ``"random"``, or ``"weakest-first"``.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.sparing.base import FailDevice, Replacement, ReplaceWith, SpareScheme
from repro.util.validation import require_fraction

#: Valid pool-selection policies.
SELECTIONS = ("random", "weakest", "strongest")

#: Valid pool-allocation orders.
ALLOCATIONS = ("strongest-first", "random", "weakest-first")


class PS(SpareScheme):
    """Physical sparing with configurable pool selection and allocation.

    Parameters
    ----------
    spare_fraction:
        Pool fraction ``p = S / N``.
    selection:
        Which lines form the pool: ``"random"`` (PS average case),
        ``"strongest"`` (PS-worst), or ``"weakest"`` (weak-priority).
    allocation:
        Order in which pool lines are handed out on failures.
    """

    name = "ps"

    def __init__(
        self,
        spare_fraction: float = 0.1,
        selection: str = "random",
        allocation: str = "strongest-first",
    ) -> None:
        require_fraction(spare_fraction, "spare_fraction")
        if selection not in SELECTIONS:
            raise ValueError(f"selection must be one of {SELECTIONS}, got {selection!r}")
        if allocation not in ALLOCATIONS:
            raise ValueError(f"allocation must be one of {ALLOCATIONS}, got {allocation!r}")
        super().__init__(spare_fraction=spare_fraction)
        self._selection = selection
        self._allocation = allocation
        self._pool: List[int] = []

    @classmethod
    def average_case(cls, spare_fraction: float = 0.1) -> "PS":
        """The paper's PS (average case): random pool selection."""
        return cls(spare_fraction, selection="random", allocation="random")

    @classmethod
    def worst_case(cls, spare_fraction: float = 0.1) -> "PS":
        """The paper's PS-worst: the strongest lines wasted as spares."""
        return cls(spare_fraction, selection="strongest", allocation="random")

    @property
    def selection(self) -> str:
        """Pool-selection policy."""
        return self._selection

    @property
    def allocation(self) -> str:
        """Pool-allocation order."""
        return self._allocation

    @property
    def pool_remaining(self) -> int:
        """Spare lines not yet handed out."""
        self._require_initialized()
        return len(self._pool)

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None and self._rng is not None
        total = self._emap.lines
        spares = self.spare_lines(total)
        endurance = self._emap.line_endurance
        order = np.lexsort((np.arange(total), endurance))  # ascending endurance
        if self._selection == "weakest":
            pool = order[:spares]
        elif self._selection == "strongest":
            pool = order[total - spares :]
        else:
            pool = self._rng.choice(total, size=spares, replace=False)

        pool_set = set(int(line) for line in pool)
        backing = np.array(
            [line for line in range(total) if line not in pool_set], dtype=np.intp
        )
        self._pool = self._ordered_pool(list(pool_set))
        return backing

    def _ordered_pool(self, pool: List[int]) -> List[int]:
        """Order the pool so allocation pops from the front."""
        assert self._emap is not None and self._rng is not None
        endurance = self._emap.line_endurance
        if self._allocation == "strongest-first":
            return sorted(pool, key=lambda line: -endurance[line])
        if self._allocation == "weakest-first":
            return sorted(pool, key=lambda line: endurance[line])
        shuffled = list(pool)
        self._rng.shuffle(shuffled)
        return shuffled

    def replace(self, slot: int, dead_line: int) -> Replacement:
        """Hand out the next pool line; fail when the pool is dry."""
        self._require_initialized()
        if not self._pool:
            return FailDevice(
                reason=f"line {dead_line} worn out with the spare pool exhausted"
            )
        return ReplaceWith(line=self._pool.pop(0))

    def describe(self) -> str:
        return (
            f"PS (p={self.spare_fraction:.0%}, pool={self._selection}, "
            f"alloc={self._allocation})"
        )
