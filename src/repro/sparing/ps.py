"""PS: Physical Sparing (Ferreira et al., DATE'11).

``S`` lines are held out of service as an excess-capacity pool; a failed
in-service line is replaced by a pool line.  How the pool is *selected*
and in what order it is *allocated* spans the paper's PS variants:

* **PS (average case)** -- ``selection="random"``: the pool is a uniform
  random sample; the paper approximates its lifetime by PCD's (within
  3%, citing Ferreira et al.).
* **PS-worst** -- ``selection="strongest"``: the pool wastes the
  strongest lines as spares while the weakest lines keep serving users
  (Equation 8: the ``(S+1)``-th weakest line bounds the lifetime).
* ``selection="weakest"`` -- the weak-priority half of Max-WE *without*
  the region pairing and hybrid mapping; used by the allocation ablation
  (bench ABL-MATCH) to isolate how much each Max-WE ingredient buys.

Allocation order (``allocation``): ``"strongest-first"`` (Max-WE's
policy), ``"random"``, or ``"weakest-first"``.
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from repro.sparing.base import (
    BatchOutcome,
    FailDevice,
    Replacement,
    ReplaceWith,
    SpareScheme,
)
from repro.util.validation import require_fraction

#: Valid pool-selection policies.
SELECTIONS = ("random", "weakest", "strongest")

#: Valid pool-allocation orders.
ALLOCATIONS = ("strongest-first", "random", "weakest-first")


class PS(SpareScheme):
    """Physical sparing with configurable pool selection and allocation.

    Parameters
    ----------
    spare_fraction:
        Pool fraction ``p = S / N``.
    selection:
        Which lines form the pool: ``"random"`` (PS average case),
        ``"strongest"`` (PS-worst), or ``"weakest"`` (weak-priority).
    allocation:
        Order in which pool lines are handed out on failures.
    """

    name = "ps"

    #: PS only replaces or fails; it never degrades capacity.
    ensemble_never_removes = True

    def __init__(
        self,
        spare_fraction: float = 0.1,
        selection: str = "random",
        allocation: str = "strongest-first",
    ) -> None:
        require_fraction(spare_fraction, "spare_fraction")
        if selection not in SELECTIONS:
            raise ValueError(f"selection must be one of {SELECTIONS}, got {selection!r}")
        if allocation not in ALLOCATIONS:
            raise ValueError(f"allocation must be one of {ALLOCATIONS}, got {allocation!r}")
        super().__init__(spare_fraction=spare_fraction)
        self._selection = selection
        self._allocation = allocation
        # Allocation-ordered pool, consumed front-to-back via a cursor so
        # batch handouts are O(1) slices; ``_pool_floor`` holds the
        # minimum endurance over each suffix (the batching safety bound).
        self._pool_lines: np.ndarray = np.empty(0, dtype=np.intp)
        self._pool_floor: np.ndarray = np.empty(0, dtype=float)
        self._pool_pos: int = 0

    @classmethod
    def average_case(cls, spare_fraction: float = 0.1) -> "PS":
        """The paper's PS (average case): random pool selection."""
        return cls(spare_fraction, selection="random", allocation="random")

    @classmethod
    def worst_case(cls, spare_fraction: float = 0.1) -> "PS":
        """The paper's PS-worst: the strongest lines wasted as spares."""
        return cls(spare_fraction, selection="strongest", allocation="random")

    @property
    def selection(self) -> str:
        """Pool-selection policy."""
        return self._selection

    @property
    def allocation(self) -> str:
        """Pool-allocation order."""
        return self._allocation

    @property
    def pool_remaining(self) -> int:
        """Spare lines not yet handed out."""
        self._require_initialized()
        return int(self._pool_lines.size - self._pool_pos)

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None and self._rng is not None
        total = self._emap.lines
        spares = self.spare_lines(total)
        endurance = self._emap.line_endurance
        order = np.lexsort((np.arange(total), endurance))  # ascending endurance
        if self._selection == "weakest":
            pool = order[:spares]
        elif self._selection == "strongest":
            pool = order[total - spares :]
        else:
            pool = self._rng.choice(total, size=spares, replace=False)

        pool_set = set(int(line) for line in pool)
        pool_array = np.sort(np.asarray(pool, dtype=np.intp))
        backing = np.setdiff1d(
            np.arange(total, dtype=np.intp), pool_array, assume_unique=True
        )
        self._pool_lines = np.asarray(
            self._ordered_pool(list(pool_set)), dtype=np.intp
        )
        if self._pool_lines.size:
            self._pool_floor = np.minimum.accumulate(
                endurance[self._pool_lines][::-1]
            )[::-1]
        else:
            self._pool_floor = np.empty(0, dtype=float)
        self._pool_pos = 0
        return backing

    def _ordered_pool(self, pool: List[int]) -> np.ndarray:
        """Order the pool so allocation pops from the front.

        The sorted orders use a *stable* argsort over the incoming pool
        order, matching what a stable Python ``sorted`` would produce on
        the same list; the random order shuffles the Python list itself
        so the RNG stream is untouched.
        """
        assert self._emap is not None and self._rng is not None
        endurance = self._emap.line_endurance
        arr = np.asarray(pool, dtype=np.intp)
        if self._allocation == "strongest-first":
            return arr[np.argsort(-endurance[arr], kind="stable")]
        if self._allocation == "weakest-first":
            return arr[np.argsort(endurance[arr], kind="stable")]
        shuffled = list(pool)
        self._rng.shuffle(shuffled)
        return np.asarray(shuffled, dtype=np.intp)

    def replace(self, slot: int, dead_line: int) -> Replacement:
        """Hand out the next pool line; fail when the pool is dry."""
        self._require_initialized()
        if self._pool_pos >= self._pool_lines.size:
            return FailDevice(
                reason=f"line {dead_line} worn out with the spare pool exhausted"
            )
        line = int(self._pool_lines[self._pool_pos])
        self._pool_pos += 1
        return ReplaceWith(line=line)

    def replace_batch(
        self, slots: Sequence[int], dead_lines: Sequence[int]
    ) -> BatchOutcome:
        """Hand out the next ``len(slots)`` pool lines in allocation order."""
        self._require_initialized()
        count = len(slots)
        available = self._pool_lines.size - self._pool_pos
        granted = min(count, available)
        handed = self._pool_lines[self._pool_pos : self._pool_pos + granted]
        self._pool_pos += granted
        if granted < count:
            return BatchOutcome.replaced_then_fail(
                handed,
                reason=(
                    f"line {int(dead_lines[granted])} worn out with the spare "
                    "pool exhausted"
                ),
            )
        return BatchOutcome.all_replaced(handed)

    def replacement_extra_floor(self) -> float:
        """Minimum endurance over the not-yet-allocated pool suffix."""
        self._require_initialized()
        if self._pool_pos >= self._pool_lines.size:
            return math.inf  # next death fails the device; no replacement left
        return float(self._pool_floor[self._pool_pos])

    def ensemble_replacement_capacity(self) -> int:
        """PS can replace at most once per remaining pool line."""
        return self.pool_remaining

    def describe(self) -> str:
        return (
            f"PS (p={self.spare_fraction:.0%}, pool={self._selection}, "
            f"alloc={self._allocation})"
        )
