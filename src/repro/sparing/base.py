"""Sparing-scheme interface shared by the fluid and exact simulators.

The lifetime engine drives a sparing scheme through three phases:

1. :meth:`SpareScheme.initialize` with the device's endurance map --
   the scheme partitions lines into the in-service set (slots) and its
   spare pool;
2. the engine applies wear to the lines backing each slot;
3. on a backing line's death the engine calls :meth:`SpareScheme.replace`
   and acts on the returned :class:`Replacement`:
   :class:`ReplaceWith` (redirect the slot to a spare line),
   :class:`RemoveSlot` (capacity degradation), or
   :class:`FailDevice` (the write cannot be completed -- Section 4.2's
   failure criterion).

Device failure is also declared by the engine when the number of live
slots drops below :attr:`SpareScheme.min_user_slots`.

**Batched sparing.**  The vectorized (``fluid-batched``) engine delivers
deaths in chronological groups through :meth:`SpareScheme.replace_batch`,
which returns a :class:`BatchOutcome` -- the array form of a list of
:class:`Replacement` verbs.  The base implementation simply loops the
scalar :meth:`SpareScheme.replace`, so third-party schemes keep working
unmodified (correct, just not vectorized); the built-in schemes override
it with numpy implementations.  A scheme that can replace (or extend)
should also override :meth:`SpareScheme.replacement_extra_floor` with a
lower bound on the wear budget any single future replacement adds: the
engine uses it to size chronologically-safe death batches (see
``sim/lifetime.py``).  Returning ``None`` (the default) makes the engine
fall back to one-death-at-a-time delivery.

**Ensemble stacking.**  The trial-stacked (``fluid-ensemble``) engine
advances many independent trials at once and talks to sparing through
:class:`BatchedSchemeState`: per-trial state stacked into arrays, with a
:class:`FallbackSchemeState` wrapping real per-trial instances for any
scheme without a stacked implementation (see ``sim/ensemble.py``).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.endurance.emap import EnduranceMap
from repro.util.rng import RandomState, derive_rng
from repro.util.validation import require_fraction


class SchemeIntegrityError(RuntimeError):
    """A scheme's internal tables failed an integrity check.

    Raised by :meth:`SpareScheme.check_integrity` and converted by the
    verification layer into a structured
    :class:`~repro.verify.invariants.InvariantViolation`.
    """


@dataclass(frozen=True)
class ReplaceWith:
    """Redirect the slot to spare line ``line``."""

    line: int


@dataclass(frozen=True)
class RemoveSlot:
    """Retire the slot; remaining traffic spreads over surviving slots."""


@dataclass(frozen=True)
class ExtendBudget:
    """Repair the line in place, extending its wear budget by ``wear``.

    This is the salvaging verb (Section 2.2.2): error-correcting
    redundancy absorbs the first cell failures so the same line keeps
    serving, with a little extra life.
    """

    wear: float

    def __post_init__(self) -> None:
        if self.wear <= 0:
            raise ValueError(f"budget extension must be positive, got {self.wear}")


@dataclass(frozen=True)
class FailDevice:
    """The replacement procedure failed; the device is worn out."""

    reason: str


Replacement = ReplaceWith | RemoveSlot | ExtendBudget | FailDevice

#: Action codes of :class:`BatchOutcome` (array form of the verbs above).
BATCH_REPLACE: int = 0
BATCH_EXTEND: int = 1
BATCH_REMOVE: int = 2
BATCH_FAIL: int = 3


@dataclass(frozen=True)
class BatchOutcome:
    """Vectorized replacement verdicts for one chronological death batch.

    Position ``k`` of every array answers death ``k`` of the batch passed
    to :meth:`SpareScheme.replace_batch`.  A scheme that fails the device
    mid-batch truncates its answer: the arrays cover only the deaths it
    processed, the last action is :data:`BATCH_FAIL`, and the engine never
    looks at the unprocessed tail.

    Attributes
    ----------
    actions:
        ``int8`` action code per death (:data:`BATCH_REPLACE`,
        :data:`BATCH_EXTEND`, :data:`BATCH_REMOVE`, :data:`BATCH_FAIL`).
    lines:
        Replacement line per :data:`BATCH_REPLACE` death (-1 elsewhere).
    wear:
        Budget extension per :data:`BATCH_EXTEND` death (0 elsewhere).
    fail_reason:
        Failure reason iff the last action is :data:`BATCH_FAIL`.
    """

    actions: np.ndarray
    lines: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.intp))
    wear: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=float))
    fail_reason: Optional[str] = None

    def __post_init__(self) -> None:
        actions = np.asarray(self.actions, dtype=np.int8)
        object.__setattr__(self, "actions", actions)
        lines = np.asarray(self.lines, dtype=np.intp)
        if lines.size == 0 and actions.size:
            lines = np.full(actions.size, -1, dtype=np.intp)
        object.__setattr__(self, "lines", lines)
        wear = np.asarray(self.wear, dtype=float)
        if wear.size == 0 and actions.size:
            wear = np.zeros(actions.size, dtype=float)
        object.__setattr__(self, "wear", wear)
        if actions.size == 0:
            raise ValueError("a batch outcome must cover at least one death")
        if lines.size != actions.size or wear.size != actions.size:
            raise ValueError("batch outcome arrays must be index-aligned")
        fails = np.flatnonzero(actions == BATCH_FAIL)
        if fails.size > 1 or (fails.size == 1 and fails[0] != actions.size - 1):
            raise ValueError("BATCH_FAIL may only appear once, as the last action")
        if (fails.size == 1) != (self.fail_reason is not None):
            raise ValueError("fail_reason must accompany exactly a trailing BATCH_FAIL")

    @property
    def size(self) -> int:
        """Number of deaths this outcome covers."""
        return int(self.actions.size)

    @property
    def failed(self) -> bool:
        """Whether the batch ended in device failure."""
        return self.fail_reason is not None

    # ------------------------------------------------------------------
    # Constructors for the common uniform batches
    # ------------------------------------------------------------------

    @classmethod
    def all_replaced(cls, lines: np.ndarray) -> "BatchOutcome":
        """Every death rescued by the index-aligned ``lines``."""
        lines = np.asarray(lines, dtype=np.intp)
        return cls(actions=np.full(lines.size, BATCH_REPLACE, dtype=np.int8), lines=lines)

    @classmethod
    def all_removed(cls, count: int) -> "BatchOutcome":
        """Every death retired (capacity degradation)."""
        return cls(actions=np.full(count, BATCH_REMOVE, dtype=np.int8))

    @classmethod
    def replaced_then_fail(cls, lines: np.ndarray, reason: str) -> "BatchOutcome":
        """``lines.size`` rescues followed by device failure."""
        lines = np.asarray(lines, dtype=np.intp)
        actions = np.full(lines.size + 1, BATCH_REPLACE, dtype=np.int8)
        actions[-1] = BATCH_FAIL
        return cls(
            actions=actions,
            lines=np.append(lines, np.intp(-1)),
            fail_reason=reason,
        )

    @classmethod
    def fail(cls, reason: str) -> "BatchOutcome":
        """The first death of the batch already kills the device."""
        return cls(actions=np.array([BATCH_FAIL], dtype=np.int8), fail_reason=reason)


class SpareScheme(ABC):
    """Base class for spare-line replacement schemes.

    Parameters
    ----------
    spare_fraction:
        Fraction ``p = S / N`` of total lines held as spares (0 for
        schemes without excess capacity).
    """

    #: Short machine-readable name used in result tables.
    name: str = "sparing"

    #: Ensemble-engine hint: ``True`` promises :meth:`replace_batch` never
    #: returns :data:`BATCH_REMOVE` (the scheme replaces or fails, it does
    #: not degrade capacity).  The stacked kernel uses the promise to skip
    #: per-epoch capacity bookkeeping; a scheme that removes slots must
    #: leave this ``False``.
    ensemble_never_removes: bool = False

    def __init__(self, spare_fraction: float = 0.0) -> None:
        require_fraction(spare_fraction, "spare_fraction")
        if spare_fraction >= 1.0:
            raise ValueError("spare_fraction must leave room for user space")
        self._spare_fraction = spare_fraction
        self._emap: EnduranceMap | None = None
        self._rng: np.random.Generator | None = None
        self._backing: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def spare_fraction(self) -> float:
        """Configured spare fraction ``p``."""
        return self._spare_fraction

    def spare_lines(self, total_lines: int) -> int:
        """Spare line count ``S`` for a device of ``total_lines``."""
        return int(round(self._spare_fraction * total_lines))

    def initialize(self, emap: EnduranceMap, rng: RandomState = None) -> None:
        """Partition the device and build the scheme's internal state."""
        self._emap = emap
        self._rng = derive_rng(rng, f"sparing-{self.name}")
        self._backing = self._build_backing()
        if self._backing.ndim != 1 or self._backing.size == 0:
            raise ValueError("scheme produced an empty backing array")

    @abstractmethod
    def _build_backing(self) -> np.ndarray:
        """Initial slot -> physical-line assignment (in-service lines)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def emap(self) -> EnduranceMap:
        """The endurance map the scheme was initialized with."""
        self._require_initialized()
        assert self._emap is not None
        return self._emap

    @property
    def initial_backing(self) -> np.ndarray:
        """Copy of the initial slot-to-line assignment."""
        self._require_initialized()
        assert self._backing is not None
        return self._backing.copy()

    @property
    def slots(self) -> int:
        """Number of slots initially in service."""
        self._require_initialized()
        assert self._backing is not None
        return int(self._backing.size)

    @property
    def min_user_slots(self) -> int:
        """Live slots required for the device to stay serviceable.

        Defaults to the user capacity ``N - S``; schemes whose slots never
        shrink fail through :class:`FailDevice` instead.
        """
        self._require_initialized()
        assert self._emap is not None
        return self._emap.lines - self.spare_lines(self._emap.lines)

    def _require_initialized(self) -> None:
        if self._emap is None:
            raise RuntimeError(f"{type(self).__name__} used before initialize()")

    # ------------------------------------------------------------------
    # Integrity introspection (the verification layer's view)
    # ------------------------------------------------------------------

    def pool_accounting(self) -> Optional[Mapping[str, int]]:
        """O(1)-ish spare-pool counters for the accounting invariant.

        Schemes with an explicit spare pool return a mapping with at
        least ``size`` / ``free`` / ``allocated`` (``free + allocated ==
        size`` must hold); pool-backed mapping tables may add
        ``lmt_entries`` / ``lmt_capacity`` / ``rescued_slots``.  The
        default ``None`` skips the invariant for pool-less schemes.
        """
        return None

    def check_integrity(
        self,
        backing: Optional[np.ndarray] = None,
        dead_lines: Optional[np.ndarray] = None,
    ) -> None:
        """Verify the scheme's internal tables; raise on inconsistency.

        Called by the verification layer's ``mapping-consistency``
        invariant.  ``backing`` is the engine's live slot-to-line
        assignment and ``dead_lines`` a boolean per-line death mask;
        either may be ``None`` when unavailable.  Implementations must
        raise :class:`SchemeIntegrityError` (never mutate state) on the
        first inconsistency.  The base implementation checks only the
        generic slot-count contract.
        """
        self._require_initialized()
        assert self._backing is not None
        if backing is not None and backing.size != self._backing.size:
            raise SchemeIntegrityError(
                f"engine tracks {backing.size} slots but the scheme was "
                f"initialized with {self._backing.size}"
            )

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------

    @abstractmethod
    def replace(self, slot: int, dead_line: int) -> Replacement:
        """React to the death of ``dead_line`` backing ``slot``."""

    def replace_batch(
        self, slots: Sequence[int], dead_lines: Sequence[int]
    ) -> BatchOutcome:
        """React to a chronologically ordered batch of deaths at once.

        The engine guarantees the batch is sorted in event order (virtual
        death time, ties by slot id) and that no slot appears twice.  This
        base implementation loops the scalar :meth:`replace`, truncating at
        the first :class:`FailDevice`, so any scheme works unmodified;
        built-in schemes override it with vectorized versions.
        """
        count = len(slots)
        actions = np.empty(count, dtype=np.int8)
        lines = np.full(count, -1, dtype=np.intp)
        wear = np.zeros(count, dtype=float)
        for index, (slot, dead_line) in enumerate(zip(slots, dead_lines)):
            outcome = self.replace(int(slot), int(dead_line))
            if isinstance(outcome, ReplaceWith):
                actions[index] = BATCH_REPLACE
                lines[index] = outcome.line
            elif isinstance(outcome, ExtendBudget):
                actions[index] = BATCH_EXTEND
                wear[index] = outcome.wear
            elif isinstance(outcome, RemoveSlot):
                actions[index] = BATCH_REMOVE
            else:
                assert isinstance(outcome, FailDevice)
                actions[index] = BATCH_FAIL
                end = index + 1
                return BatchOutcome(
                    actions=actions[:end],
                    lines=lines[:end],
                    wear=wear[:end],
                    fail_reason=outcome.reason,
                )
        return BatchOutcome(actions=actions, lines=lines, wear=wear)

    def replacement_extra_floor(self) -> Optional[float]:
        """Lower bound on the wear budget any one future replacement adds.

        The batched engine may only group deaths whose times span less
        than ``floor / max_weight``: within such a window no replacement
        (:class:`ReplaceWith` endurance or :class:`ExtendBudget` wear) can
        push a slot's next death back inside the window, so processing the
        group in one :meth:`replace_batch` call preserves exact event
        order.  ``math.inf`` is correct for schemes that never replace;
        ``None`` (the default) means unknown, and the engine delivers
        deaths one at a time.

        The engine may *tighten* ``max_weight`` to the largest weight
        among slots that can still die (slots retired by removal
        verdicts leave the prone set for good), so the window this
        floor buys lengthens as heavy slots retire.  The floor must
        therefore bound the budget of replacements on *any still-prone
        slot*, which every fixed lower bound already satisfies.
        """
        return None

    def ensemble_replacement_capacity(self) -> Optional[int]:
        """Upper bound on future :data:`BATCH_REPLACE`/:data:`BATCH_EXTEND`
        verdicts this scheme can still hand out.

        With :attr:`ensemble_never_removes` schemes, only slots whose
        death times fall among the ``capacity + BATCH_LIMIT`` smallest can
        ever be selected before the device fails, so the ensemble kernel
        uses this bound to restrict its per-epoch scans to that candidate
        set (see ``sim/ensemble.py``).  Must be an over-estimate, never an
        under-estimate; ``None`` (the default) disables the prefilter.
        """
        return None

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return f"{self.name} (p={self._spare_fraction:.0%})"

    # ------------------------------------------------------------------
    # Ensemble stacking
    # ------------------------------------------------------------------

    @classmethod
    def make_batched_state(
        cls,
        schemes: Sequence["SpareScheme"],
        emaps: Sequence[EnduranceMap],
    ) -> Optional["BatchedSchemeState"]:
        """Build a cross-trial stacked state for the ensemble engine.

        ``schemes[t]`` is the (uninitialized) scheme of trial ``t`` and
        ``emaps[t]`` its endurance map.  A scheme family whose
        initialization and replacement bookkeeping vectorize across
        trials overrides this to return a :class:`BatchedSchemeState`
        holding ``(trials, ...)`` tensors; returning ``None`` (the
        default) makes the engine fall back to per-trial scheme
        instances wrapped in :class:`FallbackSchemeState` -- correct for
        every scheme, just without the stacked-init speedup.
        """
        return None


#: The raw per-trial verdict tuple a :class:`BatchedSchemeState` returns:
#: ``(actions, lines, wear, fail_reason)`` with the exact semantics of the
#: matching :class:`BatchOutcome` fields.  Stacked states return the plain
#: tuple so the hot loop skips dataclass construction and validation.
RawBatchOutcome = Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[str]]


class BatchedSchemeState(ABC):
    """Per-trial sparing state stacked across an ensemble of trials.

    The ``fluid-ensemble`` engine (``sim/ensemble.py``) advances ``T``
    independent trials through one epoch kernel.  This protocol is the
    scheme-side contract: every method takes a ``trial`` index and must
    behave *bit-identically* to a fresh scheme instance initialized for
    that trial alone -- same backing permutation, same replacement
    decisions, same failure strings -- so ensemble results split back
    into per-trial results indistinguishable from solo runs.
    """

    @property
    @abstractmethod
    def trials(self) -> int:
        """Number of stacked trials ``T``."""

    @property
    @abstractmethod
    def never_removes(self) -> bool:
        """True iff no trial's scheme can return :data:`BATCH_REMOVE`."""

    @abstractmethod
    def backing(self, trial: int) -> np.ndarray:
        """Fresh copy of trial ``trial``'s initial slot-to-line map."""

    @abstractmethod
    def slots(self, trial: int) -> int:
        """Slot count of trial ``trial``."""

    @abstractmethod
    def min_user_slots(self, trial: int) -> int:
        """Minimum serviceable slot count of trial ``trial``."""

    @abstractmethod
    def replace_batch(
        self, trial: int, slots: np.ndarray, dead_lines: np.ndarray
    ) -> RawBatchOutcome:
        """Trial-``trial`` equivalent of :meth:`SpareScheme.replace_batch`."""

    @abstractmethod
    def replacement_extra_floor(self, trial: int) -> Optional[float]:
        """Trial equivalent of :meth:`SpareScheme.replacement_extra_floor`."""

    @abstractmethod
    def describe(self, trial: int) -> str:
        """Trial equivalent of :meth:`SpareScheme.describe`."""

    def replacement_capacity(self, trial: int) -> Optional[int]:
        """Trial equivalent of :meth:`SpareScheme.ensemble_replacement_capacity`."""
        return None

    def scheme(self, trial: int) -> Optional[SpareScheme]:
        """The real initialized scheme instance behind ``trial``, if any.

        The fallback state exposes its wrapped instances so the paranoia
        guards can run ``pool_accounting``/``check_integrity`` against
        genuine scheme tables; stacked states return ``None`` (they are
        only eligible when guards are off).
        """
        return None


class FallbackSchemeState(BatchedSchemeState):
    """Ensemble scheme state backed by real per-trial scheme instances.

    The universal path: each trial keeps its own initialized
    :class:`SpareScheme`, so any scheme -- including third-party scalar
    ones -- runs under the ensemble engine with exactly its solo
    semantics.  ``schemes[t]`` must already be initialized with trial
    ``t``'s endurance map and rng stream.
    """

    def __init__(self, schemes: Sequence[SpareScheme]) -> None:
        if not schemes:
            raise ValueError("an ensemble needs at least one trial")
        self._schemes = list(schemes)
        self._never_removes = all(
            type(scheme).ensemble_never_removes for scheme in self._schemes
        )

    @property
    def trials(self) -> int:
        return len(self._schemes)

    @property
    def never_removes(self) -> bool:
        return self._never_removes

    def backing(self, trial: int) -> np.ndarray:
        return self._schemes[trial].initial_backing

    def slots(self, trial: int) -> int:
        return self._schemes[trial].slots

    def min_user_slots(self, trial: int) -> int:
        return self._schemes[trial].min_user_slots

    def replace_batch(
        self, trial: int, slots: np.ndarray, dead_lines: np.ndarray
    ) -> RawBatchOutcome:
        outcome = self._schemes[trial].replace_batch(slots, dead_lines)
        return outcome.actions, outcome.lines, outcome.wear, outcome.fail_reason

    def replacement_extra_floor(self, trial: int) -> Optional[float]:
        return self._schemes[trial].replacement_extra_floor()

    def replacement_capacity(self, trial: int) -> Optional[int]:
        return self._schemes[trial].ensemble_replacement_capacity()

    def describe(self, trial: int) -> str:
        return self._schemes[trial].describe()

    def scheme(self, trial: int) -> Optional[SpareScheme]:
        return self._schemes[trial]
