"""Sparing-scheme interface shared by the fluid and exact simulators.

The lifetime engine drives a sparing scheme through three phases:

1. :meth:`SpareScheme.initialize` with the device's endurance map --
   the scheme partitions lines into the in-service set (slots) and its
   spare pool;
2. the engine applies wear to the lines backing each slot;
3. on a backing line's death the engine calls :meth:`SpareScheme.replace`
   and acts on the returned :class:`Replacement`:
   :class:`ReplaceWith` (redirect the slot to a spare line),
   :class:`RemoveSlot` (capacity degradation), or
   :class:`FailDevice` (the write cannot be completed -- Section 4.2's
   failure criterion).

Device failure is also declared by the engine when the number of live
slots drops below :attr:`SpareScheme.min_user_slots`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.endurance.emap import EnduranceMap
from repro.util.rng import RandomState, derive_rng
from repro.util.validation import require_fraction


@dataclass(frozen=True)
class ReplaceWith:
    """Redirect the slot to spare line ``line``."""

    line: int


@dataclass(frozen=True)
class RemoveSlot:
    """Retire the slot; remaining traffic spreads over surviving slots."""


@dataclass(frozen=True)
class ExtendBudget:
    """Repair the line in place, extending its wear budget by ``wear``.

    This is the salvaging verb (Section 2.2.2): error-correcting
    redundancy absorbs the first cell failures so the same line keeps
    serving, with a little extra life.
    """

    wear: float

    def __post_init__(self) -> None:
        if self.wear <= 0:
            raise ValueError(f"budget extension must be positive, got {self.wear}")


@dataclass(frozen=True)
class FailDevice:
    """The replacement procedure failed; the device is worn out."""

    reason: str


Replacement = ReplaceWith | RemoveSlot | ExtendBudget | FailDevice


class SpareScheme(ABC):
    """Base class for spare-line replacement schemes.

    Parameters
    ----------
    spare_fraction:
        Fraction ``p = S / N`` of total lines held as spares (0 for
        schemes without excess capacity).
    """

    #: Short machine-readable name used in result tables.
    name: str = "sparing"

    def __init__(self, spare_fraction: float = 0.0) -> None:
        require_fraction(spare_fraction, "spare_fraction")
        if spare_fraction >= 1.0:
            raise ValueError("spare_fraction must leave room for user space")
        self._spare_fraction = spare_fraction
        self._emap: EnduranceMap | None = None
        self._rng: np.random.Generator | None = None
        self._backing: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def spare_fraction(self) -> float:
        """Configured spare fraction ``p``."""
        return self._spare_fraction

    def spare_lines(self, total_lines: int) -> int:
        """Spare line count ``S`` for a device of ``total_lines``."""
        return int(round(self._spare_fraction * total_lines))

    def initialize(self, emap: EnduranceMap, rng: RandomState = None) -> None:
        """Partition the device and build the scheme's internal state."""
        self._emap = emap
        self._rng = derive_rng(rng, f"sparing-{self.name}")
        self._backing = self._build_backing()
        if self._backing.ndim != 1 or self._backing.size == 0:
            raise ValueError("scheme produced an empty backing array")

    @abstractmethod
    def _build_backing(self) -> np.ndarray:
        """Initial slot -> physical-line assignment (in-service lines)."""

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def emap(self) -> EnduranceMap:
        """The endurance map the scheme was initialized with."""
        self._require_initialized()
        assert self._emap is not None
        return self._emap

    @property
    def initial_backing(self) -> np.ndarray:
        """Copy of the initial slot-to-line assignment."""
        self._require_initialized()
        assert self._backing is not None
        return self._backing.copy()

    @property
    def slots(self) -> int:
        """Number of slots initially in service."""
        self._require_initialized()
        assert self._backing is not None
        return int(self._backing.size)

    @property
    def min_user_slots(self) -> int:
        """Live slots required for the device to stay serviceable.

        Defaults to the user capacity ``N - S``; schemes whose slots never
        shrink fail through :class:`FailDevice` instead.
        """
        self._require_initialized()
        assert self._emap is not None
        return self._emap.lines - self.spare_lines(self._emap.lines)

    def _require_initialized(self) -> None:
        if self._emap is None:
            raise RuntimeError(f"{type(self).__name__} used before initialize()")

    # ------------------------------------------------------------------
    # Replacement
    # ------------------------------------------------------------------

    @abstractmethod
    def replace(self, slot: int, dead_line: int) -> Replacement:
        """React to the death of ``dead_line`` backing ``slot``."""

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return f"{self.name} (p={self._spare_fraction:.0%})"
