"""PCD: Physical Capacity Degradation (Ferreira et al., DATE'11).

All physical lines start in service and the memory shrinks as lines die;
the device fails once capacity drops below the guaranteed user capacity
``N - S``.  Because every line (including the "slack") absorbs traffic
from day one, the weak lines are diluted across the whole space -- under
UAA the slack buys exactly the endurance of the ``S`` weakest lines plus
the extra headroom of the ``(S+1)``-th (Equation 7's area).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.sparing.base import BatchOutcome, RemoveSlot, Replacement, SpareScheme
from repro.util.validation import require_fraction


class PCD(SpareScheme):
    """Capacity degradation with ``S`` lines of slack.

    Parameters
    ----------
    spare_fraction:
        Slack fraction ``p = S / N``; the device fails when more than
        ``S`` lines have died.
    """

    name = "pcd"

    #: PCD is exactly capacity degradation: every death removes a slot,
    #: so the ensemble engine's removal-free fast path must stay off.
    ensemble_never_removes = False

    def __init__(self, spare_fraction: float = 0.1) -> None:
        require_fraction(spare_fraction, "spare_fraction")
        super().__init__(spare_fraction=spare_fraction)

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None
        return np.arange(self._emap.lines, dtype=np.intp)

    def replace(self, slot: int, dead_line: int) -> Replacement:
        """Dead lines are simply retired; the engine tracks capacity."""
        return RemoveSlot()

    def replace_batch(
        self, slots: Sequence[int], dead_lines: Sequence[int]
    ) -> BatchOutcome:
        """Retire every death; the engine enforces the capacity floor."""
        return BatchOutcome.all_removed(len(slots))

    def replacement_extra_floor(self) -> float:
        """Never replaces, so any death window is chronologically safe."""
        return math.inf

    def describe(self) -> str:
        return f"PCD (capacity degradation, {self.spare_fraction:.0%} slack)"
