"""Spare-line replacement schemes (paper Section 2.2.3 baselines).

A sparing scheme decides (1) which physical lines are held back as spares,
(2) which lines serve the user space, and (3) what happens when an
in-service line wears out: replace it from the spare pool, degrade
capacity, or declare the device dead.

Implemented baselines:

* :class:`~repro.sparing.none.NoSparing` -- unprotected device, fails at
  the first wear-out;
* :class:`~repro.sparing.pcd.PCD` -- Physical Capacity Degradation: all
  lines start in service and capacity shrinks as lines die;
* :class:`~repro.sparing.ps.PS` -- Physical Sparing: failed lines are
  replaced from an excess-capacity pool, with selectable pool-selection
  (random / weakest / strongest) and allocation-order policies covering
  the paper's PS-average and PS-worst cases.

The paper's contribution, Max-WE, implements the same interface in
:mod:`repro.core`.
"""

from repro.sparing.base import (
    FailDevice,
    RemoveSlot,
    Replacement,
    ReplaceWith,
    SpareScheme,
)
from repro.sparing.none import NoSparing
from repro.sparing.pcd import PCD
from repro.sparing.ps import PS

__all__ = [
    "FailDevice",
    "RemoveSlot",
    "Replacement",
    "ReplaceWith",
    "SpareScheme",
    "NoSparing",
    "PCD",
    "PS",
]
