"""The unprotected baseline: no spare lines at all.

Every physical line serves the user; the first wear-out failure is fatal.
Under UAA this realizes Equation 4, ``L_UAA = N * EL`` -- the paper's
4.1%-of-ideal headline.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.sparing.base import BatchOutcome, FailDevice, Replacement, SpareScheme


class NoSparing(SpareScheme):
    """All lines in service, zero spares, fail on first death."""

    name = "no-protection"

    #: Fails on the first death; never removes a slot.
    ensemble_never_removes = True

    def __init__(self) -> None:
        super().__init__(spare_fraction=0.0)

    def _build_backing(self) -> np.ndarray:
        assert self._emap is not None
        return np.arange(self._emap.lines, dtype=np.intp)

    def replace(self, slot: int, dead_line: int) -> Replacement:
        return FailDevice(reason=f"line {dead_line} worn out and no spares exist")

    def replace_batch(
        self, slots: Sequence[int], dead_lines: Sequence[int]
    ) -> BatchOutcome:
        """The earliest death of any batch is already fatal."""
        return BatchOutcome.fail(
            f"line {int(dead_lines[0])} worn out and no spares exist"
        )

    def replacement_extra_floor(self) -> float:
        """Never replaces, so any death window is chronologically safe."""
        return math.inf

    def ensemble_replacement_capacity(self) -> int:
        """No spares: the device never survives a single replacement."""
        return 0

    def describe(self) -> str:
        return "no protection (fails at first wear-out)"
