"""Argument-checking helpers.

Small, uniform validators used across configuration dataclasses so that
invalid experiment parameters fail fast with actionable messages instead of
producing silently wrong lifetimes.
"""

from __future__ import annotations

from typing import Union

Number = Union[int, float]


def require_positive(value: Number, name: str) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_positive_int(value: int, name: str) -> None:
    """Raise unless ``value`` is a strictly positive integer.

    ``bool`` is rejected explicitly because it subclasses ``int`` and a
    ``True`` region count is always a caller bug.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be > 0, got {value}")


def require_fraction(value: Number, name: str, *, inclusive: bool = True) -> None:
    """Raise unless ``value`` lies in ``[0, 1]`` (or ``(0, 1)`` if exclusive)."""
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")


def require_in_range(value: Number, name: str, low: Number, high: Number) -> None:
    """Raise unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")


# ----------------------------------------------------------------------
# argparse ``type=`` converters
# ----------------------------------------------------------------------
#
# These raise argparse.ArgumentTypeError so a bad value fails at parse
# time with the exact constraint in the usage error, instead of deep in
# a sweep with a traceback.


def fraction_arg(text: str) -> float:
    """argparse type: a float in ``[0, 1]`` (spare/SWR fractions)."""
    import argparse

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    try:
        require_fraction(value, "value")
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"must be a fraction in [0, 1], got {text!r}"
        ) from None
    return value


def positive_int_arg(text: str) -> int:
    """argparse type: a strictly positive integer (counts, sizes)."""
    import argparse

    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def positive_float_arg(text: str) -> float:
    """argparse type: a strictly positive number (q, timeouts)."""
    import argparse

    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text!r}")
    return value


def nonnegative_int_arg(text: str) -> int:
    """argparse type: an integer ``>= 0`` (retry counts, job counts)."""
    import argparse

    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text!r}")
    return value
