"""Lightweight counters and event logging for simulations.

Simulators record notable events (line wear-out, replacement, remap, device
failure) so tests and examples can assert on *why* a lifetime ended, not
just on the final number.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Iterator, List, Mapping


@dataclass(frozen=True)
class SimEvent:
    """A single notable simulation event.

    Attributes
    ----------
    kind:
        Short machine-readable tag, e.g. ``"line-worn-out"``,
        ``"replacement"``, ``"remap"``, ``"device-failure"``.
    round_index:
        Simulation round in which the event occurred.
    detail:
        Free-form payload (addresses, region ids, ...).
    """

    kind: str
    round_index: int
    detail: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable view of the event."""
        return {
            "kind": self.kind,
            "round_index": self.round_index,
            "detail": dict(self.detail),
        }


class EventLog:
    """Append-only log of :class:`SimEvent` with per-kind counting.

    The log can be bounded (``max_events``) so multi-million-event
    simulations keep only counts plus the most recent events.  Bounded
    retention uses ``deque(maxlen=...)``, whose eviction-on-append is
    O(1); the previous ``del list[0]`` was O(n) per append once the
    bound was reached, i.e. quadratic over a long run.
    """

    def __init__(self, max_events: int | None = 10_000) -> None:
        if max_events is not None and max_events <= 0:
            raise ValueError(f"max_events must be positive or None, got {max_events}")
        self._events: Deque[SimEvent] = deque(maxlen=max_events)
        self._counts: Counter[str] = Counter()
        self._max_events = max_events

    def record(self, kind: str, round_index: int, **detail: object) -> SimEvent:
        """Append an event and return it."""
        event = SimEvent(kind=kind, round_index=round_index, detail=dict(detail))
        self._counts[kind] += 1
        self._events.append(event)
        return event

    def count(self, kind: str) -> int:
        """Total number of events of ``kind`` ever recorded."""
        return self._counts[kind]

    @property
    def counts(self) -> Mapping[str, int]:
        """Read-only view of all per-kind counts."""
        return dict(self._counts)

    def events(self, kind: str | None = None) -> List[SimEvent]:
        """Retained events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def to_dicts(self, kind: str | None = None) -> List[dict]:
        """Retained events as JSON-serializable dicts (for reports/logs)."""
        return [event.to_dict() for event in self.events(kind)]

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    def __len__(self) -> int:
        return len(self._events)


class CounterSet:
    """A named bundle of integer counters with explicit increment semantics."""

    def __init__(self) -> None:
        self._counters: Counter[str] = Counter()

    def add(self, name: str, amount: int = 1) -> None:
        """Increment ``name`` by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"amount must be non-negative, got {amount}")
        self._counters[name] += amount

    def get(self, name: str) -> int:
        """Current value of ``name`` (0 if never incremented)."""
        return self._counters[name]

    def as_dict(self) -> Mapping[str, int]:
        """Snapshot of all counters."""
        return dict(self._counters)
