"""Exact-but-cheap sorting helpers for the hot simulation kernels."""

from __future__ import annotations

import numpy as np


def stable_value_argsort(values: np.ndarray) -> np.ndarray:
    """``np.argsort(values, kind="stable")`` at introsort cost.

    An unstable argsort permutes equal values arbitrarily but agrees with
    the stable one everywhere else, so sort unstably first and pay the
    ~3x slower mergesort only when the sorted result actually contains a
    tie -- which continuous endurance draws and the death times derived
    from them essentially never do.  Callers must pass NaN-free values:
    ``NaN != NaN`` hides NaN runs from the tie scan.
    """
    order = np.argsort(values)
    if values.size > 1:
        sorted_values = values[order]
        if bool((sorted_values[1:] == sorted_values[:-1]).any()):
            return np.argsort(values, kind="stable")
    return order
