"""Plain-text table rendering.

The benchmark harness prints every reproduced figure/table as an aligned
text table with the paper's reference values alongside the measured ones.
These helpers keep that output consistent across all benches without
pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_row(cells: Iterable[object], widths: Sequence[int]) -> str:
    """Format one row with per-column widths, right-aligning numbers."""
    parts = []
    for cell, width in zip(cells, widths):
        text = f"{cell:.4g}" if isinstance(cell, float) else str(cell)
        if isinstance(cell, (int, float)) and not isinstance(cell, bool):
            parts.append(text.rjust(width))
        else:
            parts.append(text.ljust(width))
    return "  ".join(parts).rstrip()


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned text table.

    Every row must have exactly ``len(headers)`` cells; ``float`` cells are
    shown with 4 significant digits.
    """
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers: {row!r}"
            )

    def cell_text(cell: object) -> str:
        return f"{cell:.4g}" if isinstance(cell, float) else str(cell)

    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell_text(cell)))

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(headers, widths))
    lines.append("  ".join("-" * width for width in widths))
    for row in rows:
        lines.append(format_row(row, widths))
    return "\n".join(lines)
