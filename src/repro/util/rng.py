"""Deterministic random-number-generator plumbing.

Every stochastic component in the library (endurance-map generation, the
Birthday Paradox Attack, randomized wear-leveling schemes, ...) accepts a
``rng`` argument that may be ``None``, an integer seed, or an existing
:class:`numpy.random.Generator`.  :func:`ensure_rng` normalizes all three
forms, and :func:`derive_rng` deterministically forks child generators so
that independent components never share a stream.

The goal is full experiment reproducibility: a simulation configured with
seed ``S`` produces bit-identical results on every run, while components
seeded from different labels remain statistically independent.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

#: Accepted forms of randomness specification throughout the library.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(rng: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted ``rng`` form.

    Parameters
    ----------
    rng:
        ``None`` (fresh nondeterministic generator), an ``int`` seed, or an
        existing generator (returned unchanged).

    Raises
    ------
    TypeError
        If ``rng`` is not one of the accepted forms.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ValueError(f"seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise TypeError(
        f"rng must be None, an int seed, or numpy.random.Generator; got {type(rng).__name__}"
    )


def derive_rng(rng: RandomState, label: str) -> np.random.Generator:
    """Deterministically fork a child generator identified by ``label``.

    Two calls with the same parent seed and label yield identical child
    streams; different labels yield independent streams.  When ``rng`` is an
    existing generator the child is spawned from it (consuming parent state),
    which is still deterministic given the parent's history.

    Parameters
    ----------
    rng:
        Parent randomness specification.
    label:
        A stable, human-readable component name, e.g. ``"endurance-map"``.
    """
    if isinstance(rng, (int, np.integer)):
        digest = hashlib.sha256(f"{int(rng)}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:8], "little")
        return np.random.default_rng(child_seed)
    parent = ensure_rng(rng)
    return parent.spawn(1)[0]


def sample_seed(rng: RandomState = None) -> int:
    """Draw a fresh 63-bit seed usable to configure a child experiment."""
    generator = ensure_rng(rng)
    return int(generator.integers(0, 2**63 - 1))


def fork_seeds(
    seed: Optional[int],
    count: int,
    label: str = "fork",
    *,
    distinct_mod: Optional[int] = None,
) -> list[int]:
    """Derive ``count`` independent integer seeds from ``seed`` and ``label``.

    Useful for sweep drivers that run one simulation per parameter point and
    want each point to be independently seeded yet reproducible.

    Parameters
    ----------
    distinct_mod:
        When set, the returned seeds are guaranteed pairwise distinct
        *after folding by this modulus*.  Downstream consumers sometimes
        fold seeds into a narrower space (e.g. Monte-Carlo replica seeds
        are folded ``% 2**31`` before configuring an endurance map), and
        two 63-bit seeds that collide after folding would silently run
        the same replica twice.  Colliding draws are deterministically
        redrawn from ``{label}/retry{k}`` streams, so the output is still
        a pure function of ``(seed, count, label, distinct_mod)``.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if distinct_mod is not None and distinct_mod <= 0:
        raise ValueError(f"distinct_mod must be positive, got {distinct_mod}")
    base = derive_rng(seed, label)
    seeds = [int(s) for s in base.integers(0, 2**63 - 1, size=count)]
    if distinct_mod is None:
        return seeds
    if count > distinct_mod:
        raise ValueError(
            f"cannot draw {count} seeds pairwise distinct modulo {distinct_mod}"
        )
    seen = {}
    retry = 0
    for index, value in enumerate(seeds):
        folded = value % distinct_mod
        while folded in seen:
            retry += 1
            redraw = derive_rng(seed, f"{label}/retry{retry}")
            value = int(redraw.integers(0, 2**63 - 1))
            folded = value % distinct_mod
            seeds[index] = value
        seen[folded] = index
    return seeds
