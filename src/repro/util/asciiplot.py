"""Terminal-friendly ASCII charts.

The paper's figures are line/bar charts; with no plotting dependency in
the environment, these renderers draw them as text so `pytest -s
benchmarks/` and the examples can show the *curves*, not just tables.

Two renderers:

* :func:`bar_chart` -- horizontal bars with value labels (Figures 6-8);
* :func:`line_plot` -- a character-grid multi-series plot (Figure 5
  cross-sections, sweep curves).
"""

from __future__ import annotations

from typing import Mapping, Sequence

#: Glyphs assigned to successive series in a line plot.
SERIES_GLYPHS = "ox+*#@%&"


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    max_value: float | None = None,
    fmt: str = ".1%",
    title: str | None = None,
) -> str:
    """Render labeled values as horizontal ASCII bars.

    Parameters
    ----------
    values:
        Label -> value (values must be non-negative).
    width:
        Bar width in characters for the largest value.
    max_value:
        Scale ceiling; defaults to the largest value.
    fmt:
        Format spec for the value labels.
    """
    if not values:
        raise ValueError("bar_chart needs at least one value")
    if any(value < 0 for value in values.values()):
        raise ValueError("bar_chart values must be non-negative")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    ceiling = max_value if max_value is not None else max(values.values())
    if ceiling <= 0:
        ceiling = 1.0
    label_width = max(len(label) for label in values)

    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(int(round(value / ceiling * width)), 1 if value > 0 else 0)
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:{fmt}}")
    return "\n".join(lines)


def line_plot(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    height: int = 12,
    width: int = 60,
    title: str | None = None,
    y_fmt: str = ".0%",
) -> str:
    """Render one or more series on a character grid.

    Points are plotted at their nearest grid cell with a per-series glyph;
    the legend maps glyphs to series names.  X positions are scaled by
    value (not index), so uneven sweeps render proportionally.
    """
    if not series:
        raise ValueError("line_plot needs at least one series")
    if len(x_values) < 2:
        raise ValueError("line_plot needs at least two x positions")
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points but there are "
                f"{len(x_values)} x positions"
            )
    if height < 2 or width < 2:
        raise ValueError("plot area must be at least 2x2")

    x_low, x_high = min(x_values), max(x_values)
    y_low = min(min(values) for values in series.values())
    y_high = max(max(values) for values in series.values())
    if x_high == x_low:
        raise ValueError("x range is degenerate")
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = SERIES_GLYPHS[index % len(SERIES_GLYPHS)]
        for x, y in zip(x_values, values):
            column = int(round((x - x_low) / (x_high - x_low) * (width - 1)))
            row = int(round((y - y_low) / (y_high - y_low) * (height - 1)))
            grid[height - 1 - row][column] = glyph

    y_labels = [f"{y_high:{y_fmt}}", f"{y_low:{y_fmt}}"]
    margin = max(len(label) for label in y_labels) + 1

    lines = [title] if title else []
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_labels[0].rjust(margin)
        elif row_index == height - 1:
            prefix = y_labels[1].rjust(margin)
        else:
            prefix = " " * margin
        lines.append(f"{prefix}|{''.join(row)}")
    lines.append(" " * margin + "+" + "-" * width)
    lines.append(
        " " * margin
        + f" {x_low:g}".ljust(width // 2)
        + f"{x_high:g}".rjust(width // 2)
    )
    legend = "  ".join(
        f"{SERIES_GLYPHS[index % len(SERIES_GLYPHS)]}={name}"
        for index, name in enumerate(series)
    )
    lines.append(" " * margin + " " + legend)
    return "\n".join(lines)
