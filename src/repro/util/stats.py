"""Small statistics helpers.

The paper summarizes Figure 8 with a geometric mean across wear-leveling
schemes ("Gmean"); :func:`geometric_mean` reproduces that reduction.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises
    ------
    ValueError
        If the input is empty or contains non-positive values (the
        geometric mean is undefined there, and a zero lifetime reaching this
        reduction indicates an upstream failure worth surfacing).
    """
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("geometric_mean of an empty sequence is undefined")
    if np.any(array <= 0.0):
        raise ValueError(f"geometric_mean requires positive values, got {array!r}")
    return float(np.exp(np.mean(np.log(array))))


def normalized(value: float, reference: float) -> float:
    """Return ``value / reference`` guarding against a zero reference."""
    if reference == 0:
        raise ZeroDivisionError("normalization reference is zero")
    return value / reference


def summarize(samples: Sequence[float]) -> Mapping[str, float]:
    """Return min/mean/max/std of a sample sequence as a plain dict."""
    array = np.asarray(samples, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return {
        "n": int(array.size),
        "min": float(array.min()),
        "mean": float(array.mean()),
        "max": float(array.max()),
        "std": float(array.std()),
    }


def relative_error(measured: float, expected: float) -> float:
    """Unsigned relative error ``|measured - expected| / |expected|``."""
    if expected == 0:
        raise ZeroDivisionError("expected value is zero; relative error undefined")
    return abs(measured - expected) / abs(expected)
