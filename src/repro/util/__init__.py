"""Shared utilities for the repro library.

This package holds the small, dependency-free building blocks that every
other subsystem uses:

* :mod:`repro.util.rng` -- deterministic random-number-generator plumbing,
* :mod:`repro.util.units` -- bit/byte and power-of-two arithmetic,
* :mod:`repro.util.validation` -- argument-checking helpers,
* :mod:`repro.util.stats` -- small statistics helpers (geometric mean, ...),
* :mod:`repro.util.tables` -- plain-text table rendering for benchmarks,
* :mod:`repro.util.events` -- lightweight counters and event logging.
"""

from repro.util.events import CounterSet, EventLog, SimEvent
from repro.util.rng import RandomState, derive_rng, ensure_rng
from repro.util.stats import geometric_mean, normalized, summarize
from repro.util.tables import format_row, render_table
from repro.util.units import (
    KIB,
    MIB,
    GIB,
    bits_to_bytes,
    bits_to_mib,
    bits_required,
    bytes_to_human,
    is_power_of_two,
    log2_int,
)
from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_positive,
    require_positive_int,
)

__all__ = [
    "CounterSet",
    "EventLog",
    "SimEvent",
    "RandomState",
    "derive_rng",
    "ensure_rng",
    "geometric_mean",
    "normalized",
    "summarize",
    "format_row",
    "render_table",
    "KIB",
    "MIB",
    "GIB",
    "bits_to_bytes",
    "bits_to_mib",
    "bits_required",
    "bytes_to_human",
    "is_power_of_two",
    "log2_int",
    "require_fraction",
    "require_in_range",
    "require_positive",
    "require_positive_int",
]
