"""Bit/byte and power-of-two arithmetic.

The paper reports mapping-table overheads in bits and megabytes and sizes
devices in powers of two (1 GB bank, 2048 regions, 64 B lines).  These
helpers keep that arithmetic explicit and bit-accurate so the overhead
numbers in Section 5.3.2 can be reproduced exactly.
"""

from __future__ import annotations

KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB


def is_power_of_two(value: int) -> bool:
    """Return ``True`` when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def log2_int(value: int) -> int:
    """Exact integer log2 of a power of two.

    Raises
    ------
    ValueError
        If ``value`` is not a positive power of two.
    """
    if not is_power_of_two(value):
        raise ValueError(f"expected a positive power of two, got {value}")
    return value.bit_length() - 1


def bits_required(count: int) -> int:
    """Number of bits needed to address ``count`` distinct items.

    This is ``ceil(log2(count))`` with the convention that a single item
    needs 0 bits.  Used for mapping-table entry widths (``log2 N`` in the
    paper's overhead formulas).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    return (count - 1).bit_length()


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count to bytes (may be fractional)."""
    return bits / 8.0


def bits_to_mib(bits: float) -> float:
    """Convert a bit count to mebibytes (the paper's "MB")."""
    return bits / 8.0 / MIB


def bytes_to_human(num_bytes: float) -> str:
    """Render a byte count as a short human-readable string, e.g. ``"1.10MB"``."""
    magnitude = float(num_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if magnitude < 1024.0 or unit == "TB":
            if unit == "B":
                return f"{magnitude:.0f}{unit}"
            return f"{magnitude:.2f}{unit}"
        magnitude /= 1024.0
    raise AssertionError("unreachable")
